"""Rule packs — importing this package registers every shipped rule.

Per-file families: determinism (``D1xx``), protocol (``P2xx``), model
hygiene (``M3xx``), observability (``O4xx``), resilience (``R5xx``),
async hygiene (``S6xx``), workload registry (``W8xx``).  Whole-program
families built on the project index: interprocedural determinism
(``D2xx``), protocol graph (``P3xx``), await safety (``S7xx``).
"""

from __future__ import annotations

from . import async_hygiene as _async_hygiene  # noqa: F401
from . import await_safety as _await_safety  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import hygiene as _hygiene  # noqa: F401
from . import interproc as _interproc  # noqa: F401
from . import observability as _observability  # noqa: F401
from . import protocol as _protocol  # noqa: F401
from . import protocol_graph as _protocol_graph  # noqa: F401
from . import resilience as _resilience  # noqa: F401
from . import workloads as _workloads  # noqa: F401
