"""Protocol rules (codes ``P2xx``).

The middleware stack (PVM messages under Sciddle RPC, Section 2.1 of the
paper) only measures correctly when the communication protocol is
air-tight: a request naming a procedure no server exports, a message tag
with no matching receive, or an unbalanced phase bracket all either
deadlock the run or—worse—silently misattribute time between the
communication/computation/synchronization categories the whole
methodology separates (Section 3.3).  These rules check the protocol
statically:

* ``P201`` — every RPC procedure referenced by a client stub, server
  binding or spec lookup is declared in a :class:`SciddleInterface`
  registry or a textual IDL block;
* ``P202`` — every PVM tag constant sent is also received (and vice
  versa) somewhere in the project;
* ``P203`` — phase accounting (``.begin``/``.end``) and phase barriers
  (``*_start@`` / ``*_end@``) are balanced within each function;
* ``P204`` — blocking mailbox receives only appear driven by
  ``yield``/``yield from`` inside a :mod:`repro.netsim.process`
  coroutine.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import (
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    parent_of,
    receiver_is_tracerish,
)
from ..registry import rule

#: Procedure declarations inside a textual IDL block (see stubgen).
_IDL_PROC_RE = re.compile(r"(\w+)\s*\([^)]*\)\s*;", re.DOTALL)

#: Names that look like PVM tag constants (module convention).
_TAG_NAME_RE = re.compile(r"^_?TAG")


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    """The value of a string constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_arg(
    node: ast.Call, index: int, keyword: Optional[str] = None
) -> Optional[ast.AST]:
    """Positional argument ``index`` or keyword ``keyword`` of a call."""
    if keyword is not None:
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
    if len(node.args) > index:
        return node.args[index]
    return None


@rule
class UnknownProcedureRule(ProjectRule):
    """P201: RPC procedure references must resolve in the IDL registry."""

    code = "P201"
    name = "unknown-rpc-procedure"
    summary = (
        "client stub / server binding references a procedure that no "
        "SciddleInterface or IDL block declares"
    )
    packages = None

    def __init__(self) -> None:
        self._declared: Set[str] = set()
        self._references: List[Tuple[SourceModule, ast.Call, str]] = []

    def collect(self, module: SourceModule) -> None:
        """Gather declared procedure names and literal references."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                # textual IDL blocks by convention live in *_IDL constants
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                source = _const_str(node.value)
                if source is not None and any(t.endswith("_IDL") for t in targets):
                    self._declared.update(_IDL_PROC_RE.findall(source))
                continue
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr == "procedure":
                name = _const_str(_call_arg(node, 0, "name"))
                if name is not None:
                    self._declared.add(name)
            elif attr in ("bind", "spec"):
                name = _const_str(_call_arg(node, 0, "name"))
                if name is not None and not name.startswith("__"):
                    self._references.append((module, node, name))
            elif attr == "call_async":
                name = _const_str(_call_arg(node, 1, "proc"))
                if name is not None and not name.startswith("__"):
                    self._references.append((module, node, name))
            elif attr == "call_all":
                name = _const_str(_call_arg(node, 0, "proc"))
                if name is not None and not name.startswith("__"):
                    self._references.append((module, node, name))

    def finalize(self) -> Iterator[Finding]:
        """Report references whose name no registry declares."""
        for module, node, name in self._references:
            if name not in self._declared:
                declared = ", ".join(sorted(self._declared)) or "<none>"
                yield module.finding(
                    node,
                    self.code,
                    f"RPC procedure {name!r} is not declared in any "
                    f"SciddleInterface/IDL registry (declared: {declared}); "
                    "the server dispatcher would reject this call at runtime",
                )


@rule
class TagMismatchRule(ProjectRule):
    """P202: every sent PVM tag constant has a matching receive."""

    code = "P202"
    name = "unmatched-message-tag"
    summary = (
        "a TAG_* constant is used only on the send (or only on the recv) "
        "side; the partner would block forever"
    )
    packages = None

    def __init__(self) -> None:
        #: tag constant name -> first (module, node) send site
        self._sends: Dict[str, Tuple[SourceModule, ast.AST]] = {}
        self._recvs: Dict[str, Tuple[SourceModule, ast.AST]] = {}

    @staticmethod
    def _tag_names(expr: Optional[ast.AST]) -> Set[str]:
        if expr is None:
            return set()
        return {
            n.id
            for n in ast.walk(expr)
            if isinstance(n, ast.Name) and _TAG_NAME_RE.match(n.id)
        }

    def collect(self, module: SourceModule) -> None:
        """Record tag constants appearing at send and receive sites."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            tag_expr: Optional[ast.AST] = None
            direction: Optional[str] = None
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in ("send", "mcast"):
                    tag_expr = _call_arg(node, 1, "tag")
                    direction = "send"
                elif func.attr == "recv":
                    tag_expr = _call_arg(node, 1, "tag")
                    direction = "recv"
            elif isinstance(func, ast.Name):
                if func.id == "Send":
                    tag_expr = _call_arg(node, 2, "tag")
                    direction = "send"
                elif func.id == "Recv":
                    tag_expr = _call_arg(node, 1, "tag")
                    direction = "recv"
            if direction is None:
                continue
            sites = self._sends if direction == "send" else self._recvs
            for name in self._tag_names(tag_expr):
                sites.setdefault(name, (module, node))

    def finalize(self) -> Iterator[Finding]:
        """Report tag constants seen on only one side of the protocol."""
        for name in sorted(set(self._sends) - set(self._recvs)):
            module, node = self._sends[name]
            yield module.finding(
                node,
                self.code,
                f"tag constant {name} is sent but never received anywhere; "
                "the receiver side of this protocol is missing",
            )
        for name in sorted(set(self._recvs) - set(self._sends)):
            module, node = self._recvs[name]
            yield module.finding(
                node,
                self.code,
                f"tag constant {name} is received but never sent anywhere; "
                "this Recv would block forever",
            )


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _phase_label(node: ast.Call) -> Optional[str]:
    """Leading constant text of a phase_barrier label argument."""
    label = _call_arg(node, 1, "phase")
    if label is None:
        return None
    if isinstance(label, ast.JoinedStr) and label.values:
        label = label.values[0]
    return _const_str(label)


@rule
class UnbalancedPhaseRule(Rule):
    """P203: phase brackets balance within every function."""

    code = "P203"
    name = "unbalanced-phase-bracket"
    summary = (
        "accountant .begin()/.end() counts or *_start@/*_end@ phase "
        "barriers do not balance inside a function"
    )
    packages = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Check begin/end counts and start/end barrier labels per function."""
        for func in _functions(module.tree):
            begins: Dict[str, int] = {}
            ends: Dict[str, int] = {}
            labels: List[str] = []
            for node in _own_nodes(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                if node.func.attr in ("begin", "end") and receiver_is_tracerish(
                    node.func.value
                ):
                    # span brackets belong to the observability rule O401
                    continue
                receiver = ast.dump(node.func.value)
                if node.func.attr == "begin":
                    begins[receiver] = begins.get(receiver, 0) + 1
                elif node.func.attr == "end":
                    ends[receiver] = ends.get(receiver, 0) + 1
                elif node.func.attr == "phase_barrier":
                    text = _phase_label(node)
                    if text is not None:
                        labels.append(text)
            for receiver in sorted(set(begins) | set(ends)):
                b, e = begins.get(receiver, 0), ends.get(receiver, 0)
                if b != e:
                    yield module.finding(
                        func,
                        self.code,
                        f"function {func.name!r} opens {b} accounting "
                        f"phase(s) with .begin() but closes {e} with .end(); "
                        "unbalanced brackets misattribute measured time",
                    )
            for text in labels:
                if "_start" in text:
                    base = text.split("_start")[0]
                    if not any("_end" in t and t.split("_end")[0] == base for t in labels):
                        yield module.finding(
                            func,
                            self.code,
                            f"function {func.name!r} enters phase barrier "
                            f"{text!r} but never reaches the matching "
                            f"{base}_end barrier",
                        )
                elif "_end" in text:
                    base = text.split("_end")[0]
                    if not any(
                        "_start" in t and t.split("_start")[0] == base for t in labels
                    ):
                        yield module.finding(
                            func,
                            self.code,
                            f"function {func.name!r} exits phase barrier "
                            f"{text!r} without the matching {base}_start "
                            "barrier",
                        )


@rule
class RecvOutsideCoroutineRule(Rule):
    """P204: blocking receives only inside driven simulation coroutines."""

    code = "P204"
    name = "recv-outside-coroutine"
    summary = (
        "a blocking mailbox recv that is not driven by yield/yield from "
        "inside a netsim.process coroutine never actually runs"
    )
    packages = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag undriven task.recv(...) calls and bare Recv() requests."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "recv":
                if not isinstance(parent_of(node), ast.YieldFrom):
                    yield module.finding(
                        node,
                        self.code,
                        "task.recv(...) returns a generator: it must be "
                        "driven with `yield from` inside a netsim.process "
                        "coroutine, or the receive never executes",
                    )
            elif isinstance(func, ast.Name) and func.id == "Recv":
                if not isinstance(parent_of(node), (ast.Yield, ast.YieldFrom)):
                    yield module.finding(
                        node,
                        self.code,
                        "a Recv request object does nothing unless yielded "
                        "to the engine from a simulation coroutine",
                    )
