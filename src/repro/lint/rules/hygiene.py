"""Model-hygiene rules (codes ``M3xx``).

The analytical model (Section 2.2, equations (2)-(10)) has a closed
vocabulary of platform coefficients — ``a1`` (communication rate), ``b1``
(per-message overhead), ``a2``-``a4`` (compute coefficients), ``b5``
(synchronization cost) — registered in
:data:`repro.core.model.EQUATION_PLATFORM_PARAMETERS`.  A typo'd or
invented coefficient silently decouples code from the equations the
paper validates.  Likewise the paper's tables mix us/ms/MByte/s/MFlop/s
(Section 4.1); every conversion must go through :mod:`repro.units` so a
magnitude is defined exactly once.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Tuple

from ..core import Finding, Rule, SourceModule
from ..registry import rule

#: Subpackages holding the analytical model and platform data.
MODEL_PACKAGES: Tuple[str, ...] = ("core", "platforms")

#: Identifier shape of a model coefficient (a1, b5, ...).
_PARAM_RE = re.compile(r"^[ab]\d+$")

#: Literal magnitudes that duplicate a units constant.
_UNIT_LITERALS = {
    1e-6: "units.MICROSECOND (or units.usec)",
    1e-3: "units.MILLISECOND (or units.msec)",
    1e3: "division by units.MILLISECOND",
    1e6: "units.MBYTE / units.MFLOP (or the units helpers)",
}


def _registered_parameters() -> Tuple[str, ...]:
    """The equation (2)-(10) coefficient registry from core.model."""
    from ...core.model import EQUATION_PLATFORM_PARAMETERS

    return EQUATION_PLATFORM_PARAMETERS


@rule
class UnknownModelParameterRule(Rule):
    """M301: platform coefficients come from the equation registry."""

    code = "M301"
    name = "unknown-model-parameter"
    summary = (
        "an identifier shaped like a model coefficient (a7, b2, ...) is "
        "not in core.model.EQUATION_PLATFORM_PARAMETERS"
    )
    packages = MODEL_PACKAGES

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag coefficient-shaped names outside the registry."""
        registry = set(_registered_parameters())

        def bad(name: str) -> bool:
            return bool(_PARAM_RE.match(name)) and name not in registry

        def msg(name: str) -> str:
            return (
                f"{name!r} is not a platform parameter of equations "
                f"(2)-(10); registered: {', '.join(sorted(registry))} "
                "(see core.model.EQUATION_PLATFORM_PARAMETERS)"
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and bad(node.attr):
                yield module.finding(node, self.code, msg(node.attr))
            elif isinstance(node, ast.Name) and bad(node.id):
                yield module.finding(node, self.code, msg(node.id))
            elif isinstance(node, ast.keyword) and node.arg and bad(node.arg):
                yield module.finding(node.value, self.code, msg(node.arg))
            elif isinstance(node, ast.arg) and bad(node.arg):
                yield module.finding(node, self.code, msg(node.arg))


@rule
class MagicUnitLiteralRule(Rule):
    """M302: unit conversions go through repro.units, not literals."""

    code = "M302"
    name = "magic-unit-literal"
    summary = (
        "a bare 1e-6/1e-3/1e3/1e6 in arithmetic duplicates a units "
        "constant; convert through repro.units"
    )
    packages = MODEL_PACKAGES

    def _flag(
        self, module: SourceModule, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            value = float(node.value)
            if not isinstance(node.value, bool) and value in _UNIT_LITERALS:
                yield module.finding(
                    node,
                    self.code,
                    f"magic unit literal {node.value!r}: use "
                    f"{_UNIT_LITERALS[value]} so the paper's mixed units "
                    "(Section 4.1 tables) are converted in exactly one place",
                )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag unit-magnitude constants in arithmetic or comparisons."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                yield from self._flag(module, node.left)
                yield from self._flag(module, node.right)
            elif isinstance(node, ast.Compare):
                for operand in (node.left, *node.comparators):
                    yield from self._flag(module, operand)
