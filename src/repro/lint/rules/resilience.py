"""Resilience rules (codes ``R5xx``).

The chaos campaigns (:mod:`repro.netsim.faults`) assume the middleware
and the application client can always make progress: a receive with no
deadline turns one lost peer into a wedged run, which the resilient
Sciddle stack (:mod:`repro.sciddle.resilient`) exists to prevent.

* ``R501`` — ``yield from ...recv(...)`` in the Sciddle middleware or
  the Opal application layer must pass a ``timeout=`` deadline (the
  ``pvm_trecv`` discipline).  Service loops that block indefinitely *by
  design* — a server waits for work or shutdown forever — carry an
  inline ``# simlint: disable=R501`` stating that intent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Rule, SourceModule, parent_of
from ..registry import rule


@rule
class UnboundedRecvRule(Rule):
    """R501: middleware/application receives carry a deadline."""

    code = "R501"
    name = "unbounded-middleware-recv"
    summary = (
        "a yield-from mailbox recv in the Sciddle/Opal layers has no "
        "timeout= deadline; one lost message or dead peer wedges the run"
    )
    packages = ("sciddle", "opal")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag driven ``recv`` calls without a real ``timeout=``."""
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "recv"
            ):
                continue
            # undriven receives are P204's problem, not a deadline issue
            if not isinstance(parent_of(node), ast.YieldFrom):
                continue
            timeout = next(
                (kw.value for kw in node.keywords if kw.arg == "timeout"), None
            )
            explicit_none = isinstance(timeout, ast.Constant) and (
                timeout.value is None
            )
            if timeout is not None and not explicit_none:
                continue
            yield module.finding(
                node,
                self.code,
                "this recv can wait forever: pass timeout= (the pvm_trecv "
                "discipline) so a dropped message or dead peer cannot wedge "
                "the run, or mark a deliberately-unbounded service loop "
                "with `# simlint: disable=R501`",
            )
