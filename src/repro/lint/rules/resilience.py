"""Resilience rules (codes ``R5xx``).

The chaos campaigns (:mod:`repro.netsim.faults`) assume the middleware
and the application client can always make progress: a receive with no
deadline turns one lost peer into a wedged run, which the resilient
Sciddle stack (:mod:`repro.sciddle.resilient`) exists to prevent.

* ``R501`` — ``yield from ...recv(...)`` in the Sciddle middleware or
  the Opal application layer must pass a ``timeout=`` deadline (the
  ``pvm_trecv`` discipline).  Service loops that block indefinitely *by
  design* — a server waits for work or shutdown forever — carry an
  inline ``# simlint: disable=R501`` stating that intent.
* ``R502`` — the same discipline lifted to the serve fleet: an awaited
  RPC in the router/fleet modules (forwarding a request, pinging a
  worker, opening or reading a worker link) must be bounded — wrapped
  in ``asyncio.wait_for(...)`` or carrying a ``timeout=`` argument —
  because one wedged worker must cost the router a timeout, not the
  whole front door.  Deliberately-unbounded reader loops carry inline
  ``# simlint: disable=R502`` waivers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Rule, SourceModule, parent_of
from ..registry import rule


@rule
class UnboundedRecvRule(Rule):
    """R501: middleware/application receives carry a deadline."""

    code = "R501"
    name = "unbounded-middleware-recv"
    summary = (
        "a yield-from mailbox recv in the Sciddle/Opal layers has no "
        "timeout= deadline; one lost message or dead peer wedges the run"
    )
    packages = ("sciddle", "opal")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag driven ``recv`` calls without a real ``timeout=``."""
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "recv"
            ):
                continue
            # undriven receives are P204's problem, not a deadline issue
            if not isinstance(parent_of(node), ast.YieldFrom):
                continue
            timeout = next(
                (kw.value for kw in node.keywords if kw.arg == "timeout"), None
            )
            explicit_none = isinstance(timeout, ast.Constant) and (
                timeout.value is None
            )
            if timeout is not None and not explicit_none:
                continue
            yield module.finding(
                node,
                self.code,
                "this recv can wait forever: pass timeout= (the pvm_trecv "
                "discipline) so a dropped message or dead peer cannot wedge "
                "the run, or mark a deliberately-unbounded service loop "
                "with `# simlint: disable=R501`",
            )


#: Call names that cross a process boundary from the fleet router.
_FLEET_RPC_METHODS = frozenset(
    {
        "request",
        "ping",
        "open_connection",
        "readline",
        "readexactly",
        "readuntil",
    }
)

#: Module stems R502 patrols (the fleet front-door layer).
_FLEET_MODULE_STEMS = frozenset({"fleet", "router"})


@rule
class UnboundedFleetRpcRule(Rule):
    """R502: router/fleet RPC awaits carry a timeout bound."""

    code = "R502"
    name = "unbounded-fleet-rpc"
    summary = (
        "an awaited worker RPC in the fleet router layer is not bounded "
        "by asyncio.wait_for or a timeout=; one wedged worker stalls "
        "the whole front door"
    )
    packages = ("serve",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag bare ``await x.rpc(...)`` in the fleet/router modules."""
        if module.path.stem not in _FLEET_MODULE_STEMS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Await):
                continue
            call = node.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _FLEET_RPC_METHODS
            ):
                continue
            if any(kw.arg == "timeout" for kw in call.keywords):
                continue
            yield module.finding(
                call,
                self.code,
                f"this awaited {call.func.attr}() crosses to a worker "
                "with no bound: wrap it in asyncio.wait_for(...) (or "
                "pass timeout=) so a wedged worker costs the router a "
                "timeout and a retry, not the whole front door; a "
                "deliberately-unbounded reader loop carries an inline "
                "`# simlint: disable=R502` waiver",
            )
