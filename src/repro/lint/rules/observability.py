"""Observability rules (codes ``O4xx``).

The :mod:`repro.obs` span tracer brackets simulated time with
``begin()``/``end()`` pairs (or the ``scope()`` context manager).  A
``begin()`` that never reaches its ``end()`` leaks an open span: the
interval silently vanishes from every exported trace and from the
per-category totals the model join consumes — the observability
counterpart of the unbalanced accounting brackets ``P203`` guards
against.

* ``O401`` — span ``begin()``/``end()`` calls on tracer-like receivers
  balance within each function; prefer ``with tracer.scope(...)`` when
  the bracket spans one block.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from ..core import Finding, Rule, SourceModule, receiver_is_tracerish
from .protocol import _functions, _own_nodes
from ..registry import rule

#: Delegation wrappers: a method literally named like the bracket it
#: forwards (PhaseAccountant.begin -> tracer.begin) is legitimately
#: one-sided — its partner lives in the sibling method.
_WRAPPER_NAMES = frozenset(
    {"begin", "end", "scope", "__enter__", "__exit__", "record"}
)


@rule
class SpanLeakRule(Rule):
    """O401: span brackets balance within every function."""

    code = "O401"
    name = "leaked-span-bracket"
    summary = (
        "a span tracer .begin() without a matching .end() in the same "
        "function leaks an open span; use end() or `with tracer.scope(...)`"
    )
    packages = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Count begin/end per tracer-ish receiver in each function."""
        for func in _functions(module.tree):
            if func.name in _WRAPPER_NAMES:
                continue
            begins: Dict[str, List[ast.AST]] = {}
            ends: Dict[str, int] = {}
            for node in _own_nodes(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                if node.func.attr not in ("begin", "end"):
                    continue
                if not receiver_is_tracerish(node.func.value):
                    continue
                receiver = ast.unparse(node.func.value)
                if node.func.attr == "begin":
                    begins.setdefault(receiver, []).append(node)
                else:
                    ends[receiver] = ends.get(receiver, 0) + 1
            for receiver in sorted(set(begins) | set(ends)):
                b = len(begins.get(receiver, ()))
                e = ends.get(receiver, 0)
                if b == e:
                    continue
                anchor = begins[receiver][0] if begins.get(receiver) else func
                if b > e:
                    message = (
                        f"function {func.name!r} opens {b} span(s) with "
                        f"{receiver}.begin() but closes {e} with .end(); the "
                        "leaked span never reaches any exported trace — close "
                        f"it or bracket with `with {receiver}.scope(...):`"
                    )
                else:
                    message = (
                        f"function {func.name!r} calls {receiver}.end() "
                        f"{e} time(s) but .begin() only {b}; closing a span "
                        "that is not open raises at runtime"
                    )
                yield module.finding(anchor, self.code, message)
