"""Observability rules (codes ``O4xx``).

The :mod:`repro.obs` span tracer brackets simulated time with
``begin()``/``end()`` pairs (or the ``scope()`` context manager).  A
``begin()`` that never reaches its ``end()`` leaks an open span: the
interval silently vanishes from every exported trace and from the
per-category totals the model join consumes — the observability
counterpart of the unbalanced accounting brackets ``P203`` guards
against.

* ``O401`` — span ``begin()``/``end()`` calls on tracer-like receivers
  balance within each function; prefer ``with tracer.scope(...)`` when
  the bracket spans one block.
* ``O402`` — metric instruments come from the registry
  (``registry.counter("name")``), never from ad-hoc
  ``Counter()``/``Gauge()``/``Histogram()`` construction: a
  hand-constructed instrument is invisible to every export, merge and
  report path, so its numbers silently vanish from the telemetry the
  model join and the serve SLOs consume.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from ..core import Finding, Rule, SourceModule, receiver_is_tracerish
from .protocol import _functions, _own_nodes
from ..registry import rule

#: Delegation wrappers: a method literally named like the bracket it
#: forwards (PhaseAccountant.begin -> tracer.begin) is legitimately
#: one-sided — its partner lives in the sibling method.
_WRAPPER_NAMES = frozenset(
    {"begin", "end", "scope", "__enter__", "__exit__", "record"}
)


@rule
class SpanLeakRule(Rule):
    """O401: span brackets balance within every function."""

    code = "O401"
    name = "leaked-span-bracket"
    summary = (
        "a span tracer .begin() without a matching .end() in the same "
        "function leaks an open span; use end() or `with tracer.scope(...)`"
    )
    packages = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Count begin/end per tracer-ish receiver in each function."""
        for func in _functions(module.tree):
            if func.name in _WRAPPER_NAMES:
                continue
            begins: Dict[str, List[ast.AST]] = {}
            ends: Dict[str, int] = {}
            for node in _own_nodes(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                if node.func.attr not in ("begin", "end"):
                    continue
                if not receiver_is_tracerish(node.func.value):
                    continue
                receiver = ast.unparse(node.func.value)
                if node.func.attr == "begin":
                    begins.setdefault(receiver, []).append(node)
                else:
                    ends[receiver] = ends.get(receiver, 0) + 1
            for receiver in sorted(set(begins) | set(ends)):
                b = len(begins.get(receiver, ()))
                e = ends.get(receiver, 0)
                if b == e:
                    continue
                anchor = begins[receiver][0] if begins.get(receiver) else func
                if b > e:
                    message = (
                        f"function {func.name!r} opens {b} span(s) with "
                        f"{receiver}.begin() but closes {e} with .end(); the "
                        "leaked span never reaches any exported trace — close "
                        f"it or bracket with `with {receiver}.scope(...):`"
                    )
                else:
                    message = (
                        f"function {func.name!r} calls {receiver}.end() "
                        f"{e} time(s) but .begin() only {b}; closing a span "
                        "that is not open raises at runtime"
                    )
                yield module.finding(anchor, self.code, message)


#: The instrument classes only the registry may construct.
_METRIC_CLASSES = frozenset({"Counter", "Gauge", "Histogram"})

#: Modules the instrument classes legitimately come from (the defining
#: module and the package re-export).
_METRIC_MODULES = frozenset({"repro.obs.metrics", "repro.obs"})


def _metric_aliases(module: SourceModule) -> Dict[str, str]:
    """Local names bound to metric instrument classes, alias -> class.

    Covers absolute imports via the alias map and relative imports
    (``from ..obs.metrics import Counter``), which the alias map does
    not record; a ``Counter`` imported from anywhere else (e.g.
    ``collections``) is deliberately NOT a metric alias.
    """
    aliases: Dict[str, str] = {}
    for alias, target in module.imports.items():
        mod, _, attr = target.rpartition(".")
        if attr in _METRIC_CLASSES and mod in _METRIC_MODULES:
            aliases[alias] = attr
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ImportFrom) and node.level > 0 and node.module):
            continue
        if not (
            node.module in ("metrics", "obs", "obs.metrics")
            or node.module.endswith(".obs.metrics")
            or node.module.endswith(".obs")
        ):
            continue
        for name in node.names:
            if name.name in _METRIC_CLASSES:
                aliases[name.asname or name.name] = name.name
    return aliases


@rule
class AdHocMetricRule(Rule):
    """O402: metric instruments are obtained from the registry."""

    code = "O402"
    name = "ad-hoc-metric-construction"
    summary = (
        "metric instruments must come from the MetricsRegistry "
        "(registry.counter/gauge/histogram); a hand-built Counter()/"
        "Gauge()/Histogram() is invisible to exports and merges"
    )
    packages = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag Counter/Gauge/Histogram construction outside metrics.py."""
        if module.package == ("obs", "metrics"):
            return  # the defining module: the registry builds them here
        aliases = _metric_aliases(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            cls = None
            if isinstance(node.func, ast.Name):
                cls = aliases.get(node.func.id)
            else:
                resolved = module.resolve_call(node.func)
                if resolved is not None:
                    mod, _, attr = resolved.rpartition(".")
                    if attr in _METRIC_CLASSES and mod in _METRIC_MODULES:
                        cls = attr
            if cls is None:
                continue
            accessor = cls.lower()
            yield module.finding(
                node,
                self.code,
                f"ad-hoc {cls}() construction bypasses the metrics "
                f"registry; use registry.{accessor}(name) so the "
                "instrument participates in export, merge and reports",
            )
