"""Determinism rules (codes ``D1xx``).

The paper's factorial methodology (Sections 3-4) assumes every design
cell is exactly reproducible: re-running a configuration must give the
same virtual-time measurement, or effects and interactions computed by
the ANOVA are biased by hidden variability.  These rules ban the source
constructs that smuggle nondeterminism into simulated runs:

* wall-clock reads and global RNG state inside the simulation packages;
* OS-entropy seeding (argless ``np.random.default_rng()``);
* iteration orders that depend on hashing or object identity in
  scheduling code paths.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..core import Finding, Rule, SourceModule
from ..registry import rule

#: Subpackages whose code runs inside (or drives) simulations.
SIMULATION_PACKAGES: Tuple[str, ...] = ("netsim", "pvm", "sciddle", "experiments")

#: Wall-clock callables banned from simulation code (virtual time only).
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy legacy global-state RNG entry points (module-level state).
_NUMPY_GLOBAL_RNG = frozenset(
    {
        "numpy.random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.randint",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.standard_normal",
    }
)


@rule
class WallClockRule(Rule):
    """D101: no wall-clock reads inside simulation code."""

    code = "D101"
    name = "wall-clock-read"
    summary = (
        "time.time()/datetime.now() etc. in simulation packages; "
        "use the engine's virtual clock (Engine.now)"
    )
    packages = SIMULATION_PACKAGES

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag calls resolving to wall-clock functions."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = module.resolve_call(node.func)
                if dotted in _WALLCLOCK_CALLS:
                    yield module.finding(
                        node,
                        self.code,
                        f"wall-clock call {dotted}(): simulated measurements "
                        "must use virtual time (Engine.now) to stay exactly "
                        "reproducible",
                    )


@rule
class GlobalRngRule(Rule):
    """D102: no module-level RNG state inside simulation code."""

    code = "D102"
    name = "global-rng"
    summary = (
        "stdlib `random` module or numpy legacy global RNG in simulation "
        "packages; draw from a named netsim.rng.RngRegistry stream"
    )
    packages = SIMULATION_PACKAGES

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag `random` imports and numpy global-state RNG calls."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield module.finding(
                            node,
                            self.code,
                            "stdlib `random` uses hidden global state; use a "
                            "named stream from netsim.rng.RngRegistry",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield module.finding(
                        node,
                        self.code,
                        "stdlib `random` uses hidden global state; use a "
                        "named stream from netsim.rng.RngRegistry",
                    )
            elif isinstance(node, ast.Call):
                dotted = module.resolve_call(node.func)
                if dotted in _NUMPY_GLOBAL_RNG:
                    yield module.finding(
                        node,
                        self.code,
                        f"{dotted}() draws from numpy's global RNG state; "
                        "use a Generator from netsim.rng.RngRegistry",
                    )


@rule
class ArglessDefaultRngRule(Rule):
    """D103: every Generator must be seeded deterministically."""

    code = "D103"
    name = "argless-default-rng"
    summary = (
        "np.random.default_rng() with no seed draws OS entropy; derive "
        "seeds through netsim.rng (RngRegistry / spawn_generator)"
    )
    packages = None  # applies to the whole package

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag `default_rng()` calls without an explicit seed."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and not node.args
                and not node.keywords
                and module.resolve_call(node.func) == "numpy.random.default_rng"
            ):
                yield module.finding(
                    node,
                    self.code,
                    "np.random.default_rng() without a seed is seeded from "
                    "OS entropy; derive the seed via netsim.rng.RngRegistry "
                    "so runs are reproducible",
                )


@rule
class HardcodedSeedRule(Rule):
    """D106: no hard-coded seed literals in simulated stochastic paths."""

    code = "D106"
    name = "hardcoded-seed"
    summary = (
        "np.random.default_rng/SeedSequence called with an integer "
        "literal; per-entity seeds must derive from the run seed via "
        "netsim.rng.RngRegistry"
    )
    packages = SIMULATION_PACKAGES + ("opal",)

    _SEEDED_CALLS = frozenset(
        {"numpy.random.default_rng", "numpy.random.SeedSequence"}
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag integer literals inside Generator/SeedSequence seeds."""
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and module.resolve_call(node.func) in self._SEEDED_CALLS
            ):
                continue
            for arg in node.args:
                if any(
                    isinstance(sub, ast.Constant)
                    and isinstance(sub.value, int)
                    and not isinstance(sub.value, bool)
                    for sub in ast.walk(arg)
                ):
                    yield module.finding(
                        node,
                        self.code,
                        "hard-coded seed literal: streams seeded this way "
                        "ignore the run seed and correlate across entities "
                        "(PR 1's per-cell seed bug); derive the stream from "
                        "netsim.rng.RngRegistry instead",
                    )
                    break


def _is_unordered_iterable(node: ast.AST) -> bool:
    """Whether an iteration target has hash-dependent order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@rule
class UnorderedIterationRule(Rule):
    """D104: no hash-ordered iteration in scheduling paths."""

    code = "D104"
    name = "unordered-iteration"
    summary = (
        "iteration over a set (or dict.popitem) in scheduling code; "
        "event order must not depend on hash seeds"
    )
    packages = SIMULATION_PACKAGES

    _MSG = (
        "iterating a set yields hash-dependent order, which perturbs "
        "event scheduling across runs; iterate a list or wrap in sorted()"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag for-loops/comprehensions over sets and .popitem() calls."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_unordered_iterable(node.iter):
                    yield module.finding(node.iter, self.code, self._MSG)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_unordered_iterable(gen.iter):
                        yield module.finding(gen.iter, self.code, self._MSG)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "popitem"
            ):
                yield module.finding(
                    node,
                    self.code,
                    "dict.popitem() pops an end-of-insertion item and is an "
                    "order smell in scheduling code; pop an explicit key",
                )


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


@rule
class IdOrderingRule(Rule):
    """D105: never order anything by object identity."""

    code = "D105"
    name = "id-ordering"
    summary = (
        "sorting or comparing by id(): CPython addresses vary per run; "
        "order by an explicit deterministic key (tid, seq, name)"
    )
    packages = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag key=id sort keys and id() ordering comparisons."""
        ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "key"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id == "id"
                    ):
                        yield module.finding(
                            node,
                            self.code,
                            "key=id orders by memory address, which differs "
                            "between runs; use a deterministic key",
                        )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(isinstance(op, ordering_ops) for op in node.ops) and any(
                    _is_id_call(o) for o in operands
                ):
                    yield module.finding(
                        node,
                        self.code,
                        "ordering comparison on id(): memory addresses are "
                        "not stable across runs; compare a deterministic key",
                    )
