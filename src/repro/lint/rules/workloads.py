"""Workload-registry rules (codes ``W8xx``).

The declarative workload subsystem routes everything — campaigns,
calibration, serve queries, load generation — through the family
registry in :mod:`repro.workloads`.  A misspelled family name in a
query dict or ``family=`` keyword is not a syntax error; it surfaces at
runtime as a 400 (or a failed campaign) long after the typo was
written.  These rules check literal family references against the
registry at lint time, the same way M301 checks model coefficients.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..core import Finding, Rule, SourceModule
from ..registry import rule

#: Keyword-argument names that carry a workload-family reference.
_FAMILY_KEYWORDS = ("family", "family_name")

#: Call targets whose first positional argument is a family name.
_FAMILY_CALLS = ("get_family",)


def _registered_families() -> Tuple[str, ...]:
    """The shipped family registry (imported lazily, like M301)."""
    from ...workloads import family_names

    return tuple(family_names())


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@rule
class UnknownWorkloadFamilyRule(Rule):
    """W801: literal family references come from the registry."""

    code = "W801"
    name = "unknown-workload-family"
    summary = (
        "a string literal referencing a workload family ('family' dict "
        "key, family= keyword, get_family call) is not in the "
        "repro.workloads registry"
    )
    packages = None  # family references appear in serve, obs, cli, tests

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag literal family names absent from the registry."""
        registry = set(_registered_families())

        def msg(name: str) -> str:
            return (
                f"{name!r} is not a registered workload family; "
                f"registered: {', '.join(sorted(registry))} (families "
                "register via repro.workloads.register_family)"
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.keyword) and node.arg in _FAMILY_KEYWORDS:
                value = _literal_str(node.value)
                if value is not None and value not in registry:
                    yield module.finding(node.value, self.code, msg(value))
            elif isinstance(node, ast.Dict):
                for key, value_node in zip(node.keys, node.values):
                    if key is None or _literal_str(key) != "family":
                        continue
                    value = _literal_str(value_node)
                    if value is not None and value not in registry:
                        yield module.finding(value_node, self.code, msg(value))
            elif isinstance(node, ast.Call) and node.args:
                func = node.func
                callee = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if callee in _FAMILY_CALLS:
                    value = _literal_str(node.args[0])
                    if value is not None and value not in registry:
                        yield module.finding(node.args[0], self.code, msg(value))
