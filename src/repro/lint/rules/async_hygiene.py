"""Async hygiene rules (codes ``S6xx``) for the serving layer.

The prediction service promises bounded latency under concurrency: the
event loop must never stall on a synchronous call, and every coroutine
must actually be driven.  Both failure modes are silent — a blocking
call just makes *other* clients' p99 explode, and an un-awaited
coroutine vanishes without executing — so they are machine-checked:

* **S601** — no blocking calls (``time.sleep``, ``subprocess.run``,
  synchronous ``urllib``/``socket`` connects, ...) inside ``async def``
  bodies in the serve package; off-load to an executor instead
  (``loop.run_in_executor``), exactly as the service does for model
  evaluation and calibration fits.
* **S602** — a call to a module-local ``async def`` used as a bare
  expression statement without ``await`` never runs; await it or hand
  it to ``create_task``/``gather``.

Both rules resolve only what static analysis can see: S601 matches
module-qualified calls (via the import-alias map), S602 matches calls
to ``async def`` names defined in the same file.  Receiver-rooted calls
(``self.cache.load(...)``) are invisible to S601 by design — reviewers
own those; the lint owns the unambiguous cases.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..core import Finding, Rule, SourceModule
from ..registry import rule

#: Packages whose async code paths are latency-critical.
ASYNC_PACKAGES = ("serve",)

#: Module-level callables that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "socket.create_connection",
        "socket.getaddrinfo",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)


def _async_body_calls(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Call nodes executing on the coroutine's own stack.

    Descends the async function's body but not into nested function or
    class definitions — a sync helper *defined* inside a coroutine does
    not run on the event loop until called, and a nested ``async def``
    is its own S601 subject when visited at the top of the walk.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@rule
class BlockingInAsyncRule(Rule):
    """S601: no blocking calls on the event loop."""

    code = "S601"
    name = "blocking-in-async"
    summary = (
        "time.sleep/subprocess/sync-socket call inside an `async def` in "
        "the serve package; use asyncio.sleep or loop.run_in_executor"
    )
    packages = ASYNC_PACKAGES

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag blocking module-level calls inside coroutine bodies."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(node):
                dotted = module.resolve_call(call.func)
                if dotted in _BLOCKING_CALLS:
                    yield module.finding(
                        call,
                        self.code,
                        f"{dotted}() blocks the event loop inside "
                        f"`async def {node.name}`: every concurrent request "
                        "stalls behind it; await the async equivalent or "
                        "off-load via loop.run_in_executor",
                    )


def _local_async_names(tree: ast.Module) -> Set[str]:
    """Names of every ``async def`` defined anywhere in the module."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    }


def _called_async_name(call: ast.Call, async_names: Set[str]) -> str:
    """The local async-def name a call targets, or '' if none.

    Attribute calls only count when rooted at ``self`` — a bare method
    name on an arbitrary receiver (``writer.close()``) routinely
    collides with unrelated synchronous APIs.
    """
    func = call.func
    if isinstance(func, ast.Name) and func.id in async_names:
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and func.attr in async_names
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return ""


@rule
class UnawaitedCoroutineRule(Rule):
    """S602: a coroutine called as a statement never runs."""

    code = "S602"
    name = "unawaited-coroutine"
    summary = (
        "bare-statement call of a module-local `async def` without "
        "await; the coroutine object is discarded unexecuted"
    )
    packages = ASYNC_PACKAGES

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag expression statements that call a local async def."""
        async_names = _local_async_names(module.tree)
        if not async_names:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            name = _called_async_name(node.value, async_names)
            if name:
                yield module.finding(
                    node,
                    self.code,
                    f"{name}() is an `async def`: calling it only builds a "
                    "coroutine object, which is discarded here without ever "
                    "running; await it or schedule it with "
                    "asyncio.create_task",
                )
