"""Whole-program protocol rules (P3xx).

The P2xx rules check declarations and tag pairing per registry; these
rules check the *conversation*: an allocated reply tag must eventually
be received, a procedure a client names must be bound by some server,
and the global send-after-wait order must not close into a cycle.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..core import Finding, GraphRule, Rule, SourceModule, parent_of
from ..dataflow.protocolgraph import collect_procedure_graph, tag_wait_cycles
from ..index import ProjectIndex
from ..registry import rule
from .protocol import _functions, _own_nodes

#: Call names that mint a fresh reply tag.
_ALLOC_NAMES = frozenset({"allocate_reply_tag", "_alloc_tag"})


def _alloc_target(node: ast.AST) -> Optional[str]:
    """Variable name bound to a fresh reply tag, if this is such a bind."""
    if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
        return None
    target = node.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = node.value
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return target.id if name in _ALLOC_NAMES else None


def _classify_use(name_node: ast.Name) -> str:
    """How one read of a tag variable relates to the protocol.

    ``"payload"`` — embedded in an ``RpcRequest`` (travels to the peer
    but does not arm a local receive); ``"consume"`` — passed to a
    ``recv``; ``"escape"`` — returned, yielded, stored or handed to any
    other call (assume the tag is consumed elsewhere).
    """
    node: ast.AST = name_node
    while True:
        parent = parent_of(node)
        if parent is None:
            return "escape"
        if isinstance(parent, ast.Call) and node is not parent.func:
            func = parent.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if callee == "RpcRequest":
                return "payload"
            if callee == "recv":
                return "consume"
            return "escape"
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Assign)):
            return "escape"
        node = parent


@rule
class LeakedReplyTag(Rule):
    """P301: a freshly allocated reply tag is sent but never received.

    A tag whose only uses embed it in an ``RpcRequest`` payload arms
    nothing on the local side — the peer's reply to that tag is
    undeliverable and the tag counter leaks.  Tags that reach a ``recv``
    or escape the function (returned, stored in a handle) are assumed
    consumed by their new owner.
    """

    code = "P301"
    name = "leaked-reply-tag"
    summary = "allocated reply tag embedded in a request but never received"
    packages = ("sciddle", "opal")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag allocated reply tags that are sent but never received on."""
        for func in _functions(module.tree):
            allocs: List[Tuple[str, ast.AST]] = []
            for node in _own_nodes(func):
                var = _alloc_target(node)
                if var is not None:
                    allocs.append((var, node))
            for var, alloc_node in allocs:
                uses = [
                    n
                    for n in _own_nodes(func)
                    if isinstance(n, ast.Name)
                    and n.id == var
                    and isinstance(n.ctx, ast.Load)
                ]
                if not uses:
                    continue
                kinds = {_classify_use(u) for u in uses}
                if "payload" in kinds and kinds == {"payload"}:
                    yield module.finding(
                        alloc_node,
                        self.code,
                        f"reply tag `{var}` is allocated and sent inside an "
                        f"RpcRequest but never received — the peer's reply is "
                        f"undeliverable. Receive it, or send a no-reply "
                        f"sentinel instead of allocating.",
                    )


@rule
class UnboundProcedure(GraphRule):
    """P302: a client names a procedure no server in the slice binds.

    P201 checks calls against *declarations* (IDL registries); this rule
    checks them against actual ``server.bind(...)`` registrations across
    the import-graph component.  It stays quiet when the component
    contains no binds at all — client-only modules legitimately talk to
    servers built elsewhere.
    """

    code = "P302"
    name = "unbound-procedure"
    summary = "procedure is called but never bound by any server in the slice"
    packages = None

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        """Flag called procedures with no matching bind in the slice."""
        bindings, references = collect_procedure_graph(index)
        if not bindings:
            return
        for module, node, name in references:
            if name in bindings:
                continue
            yield module.finding(
                node,
                self.code,
                f"procedure '{name}' is called but no `bind('{name}', ...)` "
                f"exists in this import slice; known binds: "
                f"{', '.join(sorted(bindings))}.",
            )


@rule
class TagWaitCycle(GraphRule):
    """P303: the tag wait-order graph contains a cycle.

    An edge ``B -> A`` is recorded when a function sends tag ``A`` only
    after an unbounded receive of tag ``B``.  A cycle means every
    participant's send is gated on a message only produced after its
    own — the classic cross-rank deadlock that no single file shows.
    Bounded receives (any real ``timeout=``) break the edge.
    """

    code = "P303"
    name = "tag-wait-cycle"
    summary = "send-after-unbounded-recv dependencies form a deadlock cycle"
    packages = None

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        """Report each distinct tag wait cycle once, at its first send."""
        reported: Set[Tuple[str, ...]] = set()
        for cycle, witnesses in tag_wait_cycles(index):
            key = tuple(cycle)
            if key in reported:
                continue
            reported.add(key)
            func, send_node = witnesses[0]
            ring = " -> ".join([*cycle, cycle[0]])
            where = ", ".join(
                f"{f.display}:{n.lineno}" for f, n in witnesses
            )
            yield func.module.finding(
                send_node,
                self.code,
                f"deadlock candidate: tag wait cycle {ring} (edges at "
                f"{where}). Add a timeout to one receive or reorder the "
                f"sends.",
            )
