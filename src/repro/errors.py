"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulator for protocol violations."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked."""


class FaultError(SimulationError):
    """Raised for invalid fault-injection specifications (``--chaos``)."""


class PvmError(ReproError):
    """Raised by the PVM-like message passing layer."""


class SciddleError(ReproError):
    """Raised by the Sciddle-like RPC middleware."""


class RpcTimeoutError(SciddleError):
    """An RPC wait exceeded its deadline (and its retry budget).

    Carries the procedure name, the server tid and the per-attempt
    deadline so the caller can decide between failover and abort.
    """

    def __init__(self, proc: str, server: int, deadline: float) -> None:
        super().__init__(
            f"RPC {proc!r} to server tid {server} timed out "
            f"(deadline {deadline}s per attempt)"
        )
        self.proc = proc
        self.server = server
        self.deadline = deadline


class ServerDeadError(SciddleError):
    """A Sciddle server was declared dead.

    Either the cluster reported its node crashed, or the health tracker
    saw ``death_threshold`` consecutive RPC timeouts.  ``tid`` is the
    dead server's task id.
    """

    def __init__(self, tid: int, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"server tid {tid} is dead{detail}")
        self.tid = tid
        self.reason = reason


class ModelError(ReproError):
    """Raised by the analytical performance model for invalid parameters."""


class CalibrationError(ModelError):
    """Raised when a model calibration cannot be performed."""


class PlatformError(ReproError):
    """Raised for unknown platforms or inconsistent platform specifications."""


class WorkloadError(ReproError):
    """Raised at workload boundaries: an invalid or unknown workload spec,
    an unregistered family, or invalid molecular inputs in the Opal
    application layer.  Messages name the offending field and value so a
    serve 400 envelope can carry them verbatim."""


class DesignError(ReproError):
    """Raised by the experimental-design machinery."""


class LintError(ReproError):
    """Raised by the simlint static analyzer for unusable inputs."""


class TelemetryError(ReproError):
    """Raised by the columnar telemetry store for unusable inputs.

    Covers schema violations (ragged columns, dataset column drift, a
    manifest with a foreign schema tag) and queries over datasets or
    columns the store does not hold.
    """


class ServeError(ReproError):
    """Raised by the prediction service for rejected requests.

    Carries an HTTP-style ``status`` (400 invalid request, 404 unknown
    platform or molecule, 429 shed by admission control, 504 deadline
    expired, 500 internal) and a short machine-readable ``reason`` that
    lands verbatim in the error response's ``error.reason`` field.
    """

    def __init__(self, status: int, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.status = status
        self.reason = reason
        self.detail = detail or reason


class PastEventError(SimulationError):
    """Raised when an event is scheduled at an absolute time before now.

    Carries the offending absolute ``time`` and the engine's ``now`` so
    callers can report the rewind precisely.
    """

    def __init__(self, time: float, now: float) -> None:
        super().__init__(
            f"cannot schedule an event at t={time!r}: the clock is already "
            f"at now={now!r} (virtual time never runs backwards)"
        )
        self.time = time
        self.now = now
