"""repro — reproduction of Taufer & Stricker (SC 1998).

"Accurate Performance Evaluation, Modelling and Prediction of a Message
Passing Simulation Code based on Middleware."

Subpackages
-----------
``repro.core``
    the analytical time-complexity model, its calibration and
    cross-platform prediction (the paper's primary contribution);
``repro.opal``
    the Opal molecular-dynamics application: a real physics engine plus
    the client/server parallel program over the middleware;
``repro.netsim`` / ``repro.pvm`` / ``repro.sciddle`` / ``repro.hpm``
    the substrate the paper ran on, rebuilt as a discrete-event
    simulation: cluster, PVM-like message passing, Sciddle-like RPC
    middleware with integrated performance instrumentation;
``repro.platforms``
    the five candidate machines (Cray J90, Cray T3E-900, slow/SMP/fast
    Clusters of PCs) and the microbenchmarks that extract their model
    parameters;
``repro.experiments`` / ``repro.analysis``
    factorial experimental designs, the experiment runner, and the
    generators/renderers for every table and figure of the paper.

Quick start
-----------
>>> from repro import ApplicationParams, OpalPerformanceModel
>>> from repro import ModelPlatformParams, MEDIUM, get_platform
>>> app = ApplicationParams(molecule=MEDIUM, steps=10, servers=4, cutoff=10.0)
>>> model = OpalPerformanceModel(ModelPlatformParams.from_spec(get_platform("j90")))
>>> round(model.predict_total(app), 1)
7.2
"""

from .core import (
    ApplicationParams,
    CalibrationResult,
    MemoryHierarchy,
    ModelPlatformParams,
    OpalPerformanceModel,
    PredictionSeries,
    SpaceModel,
    TimeBreakdown,
    calibrate,
    predict_platforms,
    speedup_curve,
)
from .errors import ReproError
from .opal.complexes import LARGE, MEDIUM, SMALL, ComplexSpec, get_complex
from .platforms import ALL_PLATFORMS, PlatformSpec, get_platform

__version__ = "1.0.0"

__all__ = [
    "ALL_PLATFORMS",
    "ApplicationParams",
    "CalibrationResult",
    "ComplexSpec",
    "LARGE",
    "MEDIUM",
    "MemoryHierarchy",
    "ModelPlatformParams",
    "OpalPerformanceModel",
    "PlatformSpec",
    "PredictionSeries",
    "ReproError",
    "SMALL",
    "SpaceModel",
    "TimeBreakdown",
    "__version__",
    "calibrate",
    "get_complex",
    "get_platform",
    "predict_platforms",
    "speedup_curve",
]
