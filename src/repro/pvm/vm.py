"""The PVM-like virtual machine facade over a simulated cluster.

``PvmSystem`` owns task spawning and the group/barrier namespace;
``PvmTask`` is the per-task handle a task function uses for all
communication.  Task functions are generators; every communication
helper is itself a generator to be driven with ``yield from``::

    def server(task):
        msg = yield from task.recv(tag=REQUEST)
        yield from task.compute(flops=1e6)
        yield from task.send(msg.source, tag=REPLY, nbytes=1024)

The deliberate PVM flavours kept from the paper's environment:

* explicit task ids (tids) and a parent tid;
* named dynamic groups with ``joingroup`` and counted barriers;
* send sizes computed through :class:`~repro.pvm.message.PackBuffer`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import PvmError
from ..netsim import ANY, Barrier, Cluster, Compute, Node, Recv, Send, Timeout
from ..netsim.process import SimProcess
from .message import PackBuffer


class PvmTask:
    """Per-task handle: the ``pvm_*`` call surface."""

    def __init__(self, system: "PvmSystem", ctx, parent_tid: Optional[int]) -> None:
        self.system = system
        self.ctx = ctx
        self.parent_tid = parent_tid

    # -- identity ------------------------------------------------------
    @property
    def tid(self) -> int:
        """This task's id."""
        return self.ctx.tid

    @property
    def name(self) -> str:
        """This task's display name."""
        return self.ctx.name

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self.ctx.now

    @property
    def node(self):
        """The node this task runs on."""
        return self.ctx.node

    # -- communication (generators; drive with `yield from`) ------------
    def send(
        self, dest: int, tag: int, nbytes: float = 0, payload: Any = None
    ) -> Generator:
        """Blocking-until-injected typed send."""
        if isinstance(nbytes, PackBuffer):
            payload = nbytes.payload if payload is None else payload
            nbytes = nbytes.nbytes
        yield Send(dest, nbytes=nbytes, tag=tag, payload=payload)

    def recv(
        self,
        source: Optional[int] = ANY,
        tag: Optional[int] = ANY,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Blocking receive; returns the :class:`Message`.

        With ``timeout=`` the wait is bounded: if no matching message
        arrives within the deadline the call returns a
        :class:`~repro.netsim.RecvTimeout` instead — callers opting
        into deadlines must check the result type.
        """
        msg = yield Recv(source=source, tag=tag, timeout=timeout)
        return msg

    def trecv(
        self,
        source: Optional[int] = ANY,
        tag: Optional[int] = ANY,
        timeout: float = 0.0,
    ) -> Generator:
        """``pvm_trecv`` analogue: a receive with a mandatory deadline.

        ``timeout=0`` polls the mailbox without waiting.  Returns the
        :class:`Message` or a :class:`~repro.netsim.RecvTimeout`.
        """
        msg = yield from self.recv(source, tag, timeout=timeout)
        return msg

    def mcast(
        self, dests: List[int], tag: int, nbytes: float = 0, payload: Any = None
    ) -> Generator:
        """Multicast as sequential sends (PVM's pvm_mcast is sender-serial)."""
        for dest in dests:
            yield from self.send(dest, tag, nbytes, payload)

    # -- computation and time -------------------------------------------
    def compute(
        self,
        seconds: Optional[float] = None,
        flops: Optional[float] = None,
        working_set: Optional[float] = None,
    ) -> Generator:
        """Occupy a CPU (seconds= or flops=; yield from)."""
        yield Compute(seconds=seconds, flops=flops, working_set=working_set)

    def delay(self, seconds: float) -> Generator:
        """Sleep in virtual time (yield from)."""
        yield Timeout(seconds)

    # -- groups / synchronization ----------------------------------------
    def joingroup(self, group: str) -> int:
        """Join ``group``; returns the instance number within the group."""
        return self.system.joingroup(group, self.tid)

    def barrier(self, group: str, count: Optional[int] = None) -> Generator:
        """PVM counted barrier over ``group``."""
        if count is None:
            count = self.system.group_size(group)
        yield Barrier(
            f"pvm:{group}", count=count, cost=self.system.barrier_cost
        )


class PvmSystem:
    """Process management and groups for one simulated parallel program."""

    def __init__(self, cluster: Cluster, barrier_cost: float = 0.0) -> None:
        if barrier_cost < 0:
            raise PvmError("barrier_cost must be >= 0")
        self.cluster = cluster
        self.barrier_cost = barrier_cost
        self._groups: Dict[str, List[int]] = {}
        self.tasks: Dict[int, PvmTask] = {}

    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        node: Node,
        func: Callable[..., Generator],
        *args: Any,
        parent: Optional[PvmTask] = None,
        **kwargs: Any,
    ) -> SimProcess:
        """Start ``func(task, *args, **kwargs)`` as a PVM task on ``node``."""

        def _body(ctx, *a, **kw):
            task = PvmTask(self, ctx, parent.tid if parent is not None else None)
            self.tasks[task.tid] = task
            yield from func(task, *a, **kw)

        return self.cluster.spawn(name, node, _body, *args, **kwargs)

    # ------------------------------------------------------------------
    def joingroup(self, group: str, tid: int) -> int:
        """Add a tid to a named group; returns its instance number."""
        members = self._groups.setdefault(group, [])
        if tid in members:
            raise PvmError(f"tid {tid} already in group {group!r}")
        members.append(tid)
        return len(members) - 1

    def group_size(self, group: str) -> int:
        """Member count of a (non-empty) group."""
        members = self._groups.get(group)
        if not members:
            raise PvmError(f"unknown or empty group {group!r}")
        return len(members)

    def group_members(self, group: str) -> List[int]:
        """The tids of a group, in join order."""
        return list(self._groups.get(group, []))

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation to completion (or ``until``)."""
        return self.cluster.run(until)
