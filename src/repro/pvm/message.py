"""PVM-style message packing.

PVM programs assemble messages by packing typed items into a send buffer
(``pvm_pkdouble``, ``pvm_pkint``, ...).  The simulator does not move real
bytes, but the *size* of a message determines its transfer time, so the
pack buffer's job here is to compute sizes from typed counts — exactly
the place where the paper's ``alpha`` (24 bytes per atom: three doubles)
comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Size in bytes of each packable item type.
TYPE_SIZES = {
    "double": 8,
    "float": 4,
    "int": 4,
    "long": 8,
    "byte": 1,
}


@dataclass
class PackBuffer:
    """Accumulates typed items; ``nbytes`` is the encoded message size."""

    items: List[Tuple[str, int]] = field(default_factory=list)
    payload: Dict[str, Any] = field(default_factory=dict)

    def pack(self, typename: str, count: int) -> "PackBuffer":
        """Append ``count`` items of ``typename`` to the buffer."""
        if typename not in TYPE_SIZES:
            raise ValueError(
                f"unknown pack type {typename!r}; expected one of {sorted(TYPE_SIZES)}"
            )
        if count < 0:
            raise ValueError("pack count must be >= 0")
        self.items.append((typename, count))
        return self

    def pack_double(self, count: int) -> "PackBuffer":
        """Append 8-byte floats."""
        return self.pack("double", count)

    def pack_int(self, count: int) -> "PackBuffer":
        """Append 4-byte integers."""
        return self.pack("int", count)

    def pack_bytes(self, count: int) -> "PackBuffer":
        """Append raw bytes."""
        return self.pack("byte", count)

    def put(self, key: str, value: Any) -> "PackBuffer":
        """Attach semantic payload carried alongside the size accounting."""
        self.payload[key] = value
        return self

    @property
    def nbytes(self) -> int:
        """Encoded size of the buffer in bytes."""
        return sum(TYPE_SIZES[t] * c for t, c in self.items)


def coordinates_nbytes(n_mass_centers: int) -> int:
    """Message size for the coordinates of ``n`` mass centers (paper's alpha*n)."""
    return PackBuffer().pack_double(3 * n_mass_centers).nbytes
