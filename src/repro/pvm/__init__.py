"""PVM-like message passing layer over the discrete-event simulator."""

from .message import PackBuffer, coordinates_nbytes
from .vm import PvmSystem, PvmTask

__all__ = ["PackBuffer", "PvmSystem", "PvmTask", "coordinates_nbytes"]
