"""Resilient Sciddle RPC: timeouts, retries with backoff, health tracking.

The paper's Sciddle assumes a dedicated, reliable machine; this module
adds the middleware-level fault tolerance needed to run the same
client/server protocol on a cluster with message loss, delay spikes and
node failures (the chaos campaigns of :mod:`repro.netsim.faults`):

* :class:`RetryPolicy` — per-RPC deadline, capped exponential backoff
  with seeded jitter, and the ostracism threshold;
* :class:`ServerHealth` — consecutive-timeout bookkeeping that declares
  a server dead and notifies listeners (the failover hook);
* :class:`ResilientSciddleClient` — a drop-in :class:`SciddleClient`
  whose ``wait`` retransmits idempotent requests (sequence-numbered, so
  the server deduplicates and handlers run at most once) until a reply
  arrives, the retry budget is exhausted, or the server is declared
  dead.

Everything stochastic (the backoff jitter) draws from the cluster's
:class:`~repro.netsim.RngRegistry`, so a fixed seed yields an exactly
reproducible retry schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from ..errors import RpcTimeoutError, SciddleError, ServerDeadError
from ..hpm import PhaseAccountant
from ..netsim import RecvTimeout
from ..netsim.faults import FaultSpec
from ..pvm import PvmTask
from .idl import SciddleInterface
from .runtime import (
    _SHUTDOWN,
    HEADER_BYTES,
    NO_REPLY_TAG,
    TAG_REQUEST,
    CallHandle,
    RpcRequest,
    SciddleClient,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How a resilient client waits, retries and gives up on a server."""

    #: virtual seconds an individual reply wait may take before the
    #: request is retransmitted (the ``pvm_trecv`` deadline)
    timeout: float = 30.0
    #: retransmissions after the first attempt before RpcTimeoutError
    max_retries: int = 5
    #: first backoff interval; doubles per retry (capped)
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: +/- fractional jitter applied to each backoff draw
    backoff_jitter: float = 0.25
    #: consecutive timeouts from one server before it is declared dead
    death_threshold: int = 3

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if not 0 <= self.backoff_jitter < 1:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.death_threshold < 1:
            raise ValueError("death_threshold must be >= 1")

    @classmethod
    def from_spec(cls, spec: FaultSpec) -> "RetryPolicy":
        """Derive the policy from a fault-injection spec's resilience knobs."""
        return cls(
            timeout=spec.rpc_timeout,
            max_retries=spec.rpc_max_retries,
            backoff_base=spec.backoff_base,
            backoff_cap=spec.backoff_cap,
            backoff_jitter=spec.backoff_jitter,
            death_threshold=spec.death_threshold,
        )

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retransmission ``attempt`` (0-based), jittered."""
        base = min(self.backoff_base * (2.0**attempt), self.backoff_cap)
        if self.backoff_jitter == 0.0 or base == 0.0:
            return base
        return float(base * (1.0 + self.backoff_jitter * rng.uniform(-1.0, 1.0)))


class ServerHealth:
    """Consecutive-timeout health tracking for a set of servers.

    A server is *dead* once ``death_threshold`` consecutive waits on it
    time out, or when :meth:`mark_dead` is called directly (e.g. from a
    cluster crash-detection listener).  Death is permanent for the
    incarnation that died — only a supervisor that has respawned a
    fresh incarnation at the same slot may :meth:`revive` it — and
    fires each registered listener exactly once per death.
    """

    def __init__(self, death_threshold: int = 3) -> None:
        if death_threshold < 1:
            raise ValueError("death_threshold must be >= 1")
        self.death_threshold = death_threshold
        self._consecutive: Dict[int, int] = {}
        self._dead: Set[int] = set()
        self._listeners: List[Callable[[int], None]] = []

    def on_death(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired once per server declared dead."""
        self._listeners.append(listener)

    def is_dead(self, tid: int) -> bool:
        """Whether ``tid`` has been declared dead."""
        return tid in self._dead

    @property
    def dead(self) -> Set[int]:
        """The set of dead server tids."""
        return set(self._dead)

    def record_success(self, tid: int) -> None:
        """A reply arrived: reset the consecutive-timeout counter."""
        self._consecutive[tid] = 0

    def record_timeout(self, tid: int) -> bool:
        """One wait on ``tid`` timed out; returns True if it is now dead."""
        if tid in self._dead:
            return True
        count = self._consecutive.get(tid, 0) + 1
        self._consecutive[tid] = count
        if count >= self.death_threshold:
            self.mark_dead(tid)
        return tid in self._dead

    def mark_dead(self, tid: int) -> None:
        """Declare ``tid`` dead (idempotent); fires death listeners."""
        if tid in self._dead:
            return
        self._dead.add(tid)
        for listener in list(self._listeners):
            listener(tid)

    def revive(self, tid: int) -> None:
        """Return a respawned server to rotation with a clean ledger.

        The supervisor's declaration that a *fresh incarnation* now
        answers at slot ``tid``: clears the death mark and the
        consecutive-timeout counter.  If the new incarnation dies too,
        listeners fire again — one notification per death, not per
        slot.
        """
        self._dead.discard(tid)
        self._consecutive[tid] = 0


class ResilientSciddleClient(SciddleClient):
    """A :class:`SciddleClient` that survives lost replies and dead servers.

    Requests carry idempotency sequence numbers; the server runs each
    (client, seq) handler at most once and replays the cached reply for
    retransmitted duplicates, so retrying is always safe — in particular
    the server-side phase barriers of the accounted discipline are never
    entered twice for one logical call.
    """

    def __init__(
        self,
        task: PvmTask,
        interface: SciddleInterface,
        servers: List[int],
        policy: Optional[RetryPolicy] = None,
        health: Optional[ServerHealth] = None,
        accountant: Optional[PhaseAccountant] = None,
    ) -> None:
        super().__init__(task, interface, servers, accountant=accountant)
        self.policy = policy if policy is not None else RetryPolicy()
        self.health = (
            health
            if health is not None
            else ServerHealth(self.policy.death_threshold)
        )
        self._rng = task.ctx.cluster.rng.stream(f"resilience/backoff/{task.name}")
        self._next_seq = 0
        #: outstanding requests by reply tag (unique per task, cheaper
        #: to hash than the handle): (total wire bytes, request) —
        #: exactly what a retransmission must resend
        self._pending: Dict[int, Tuple[float, RpcRequest]] = {}
        metrics = task.ctx.cluster.metrics
        self._m_retries = metrics.counter("sciddle.retries")
        self._m_timeouts = metrics.counter("sciddle.rpc_timeouts")
        self._m_deaths = metrics.counter("sciddle.server_deaths")

    # ------------------------------------------------------------------
    def call_async(
        self,
        server: int,
        proc: str,
        args: Any = None,
        nbytes: Optional[float] = None,
        category: Optional[str] = None,
    ) -> Generator:
        """Issue one idempotent RPC; returns a :class:`CallHandle`."""
        if self.health.is_dead(server):
            raise ServerDeadError(server, reason=f"cannot issue {proc!r}")
        spec = self.interface.spec(proc)
        if nbytes is None:
            if spec.in_size is None:
                raise SciddleError(
                    f"procedure {proc!r} has no in_size rule; pass nbytes="
                )
            nbytes = spec.in_size(args)
        tag = self._alloc_tag()
        self._next_seq += 1
        request = RpcRequest(proc, tag, args, seq=self._next_seq)
        wire_bytes = HEADER_BYTES + nbytes
        self._m_rpcs.inc()
        self._m_request_bytes.inc(wire_bytes)
        bracket = self.accountant is not None and category is not None
        if bracket:
            self.accountant.begin(category)
        try:
            yield from self.task.send(
                server, TAG_REQUEST, nbytes=wire_bytes, payload=request
            )
        finally:
            if bracket:
                self.accountant.end()
        handle = CallHandle(server, proc, tag)
        self._pending[handle.reply_tag] = (wire_bytes, request)
        return handle

    def wait(
        self,
        handle: CallHandle,
        category: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Generator:
        """Wait for a reply, retransmitting on timeout per the policy.

        Raises :class:`~repro.errors.ServerDeadError` when the server is
        (or becomes) dead, and :class:`~repro.errors.RpcTimeoutError`
        when the retry budget runs out on a server still considered
        alive.  ``deadline=`` overrides the per-wait timeout.
        """
        bracket = self.accountant is not None and category is not None
        if bracket:
            self.accountant.begin(category)
        try:
            timeout = self.policy.timeout if deadline is None else deadline
            for attempt in range(self.policy.max_retries + 1):
                if self.health.is_dead(handle.server):
                    raise ServerDeadError(
                        handle.server, reason=f"waiting on {handle.proc!r}"
                    )
                self._m_waits.inc()
                msg = yield from self.task.recv(
                    source=handle.server, tag=handle.reply_tag, timeout=timeout
                )
                if not isinstance(msg, RecvTimeout):
                    self.health.record_success(handle.server)
                    self._pending.pop(handle.reply_tag, None)
                    return msg.payload
                self._m_timeouts.inc()
                if self.health.record_timeout(handle.server):
                    self._m_deaths.inc()
                    raise ServerDeadError(
                        handle.server,
                        reason=(
                            f"no reply to {handle.proc!r} after "
                            f"{self.health.death_threshold} consecutive timeouts"
                        ),
                    )
                if attempt >= self.policy.max_retries:
                    break
                start = self.task.now
                yield from self.task.delay(self.policy.backoff(attempt, self._rng))
                pending = self._pending.get(handle.reply_tag)
                if pending is not None:
                    wire_bytes, request = pending
                    yield from self.task.send(
                        handle.server, TAG_REQUEST, nbytes=wire_bytes, payload=request
                    )
                self._m_retries.inc()
                self.task.ctx.trace(
                    "retry",
                    start,
                    self.task.now,
                    detail=f"{handle.proc} -> tid{handle.server} attempt {attempt + 1}",
                )
            raise RpcTimeoutError(handle.proc, handle.server, timeout)
        finally:
            if bracket:
                self.accountant.end()

    # ------------------------------------------------------------------
    def quarantine(self, server: int) -> Generator:
        """Fire-and-forget shutdown of an ostracized (dead-declared) server.

        If the server is merely slow rather than crashed, this makes it
        exit its service loop instead of serving stale requests whose
        replies nobody waits for.  No acknowledgement is awaited.
        """
        # NO_REPLY_TAG, not a fresh tag: nothing ever receives the ack
        # for a fire-and-forget shutdown, so allocating one leaks the
        # reply slot (simlint P301) and makes the server post an
        # undeliverable message.
        yield from self.task.send(
            server,
            TAG_REQUEST,
            nbytes=HEADER_BYTES,
            payload=RpcRequest(_SHUTDOWN, NO_REPLY_TAG, None),
        )

    def remove_server(self, tid: int) -> None:
        """Drop ``tid`` from the server list used by ``call_all``."""
        if tid in self.servers:
            self.servers.remove(tid)

    def shutdown(self) -> Generator:
        """Terminate the surviving servers; tolerate deaths mid-shutdown."""
        handles = []
        for server in self.servers:
            if self.health.is_dead(server):
                continue
            tag = self._alloc_tag()
            yield from self.task.send(
                server,
                TAG_REQUEST,
                nbytes=HEADER_BYTES,
                payload=RpcRequest(_SHUTDOWN, tag, None),
            )
            handles.append(CallHandle(server, _SHUTDOWN, tag))
        for handle in handles:
            # the ack is advisory: a server crashing between the request
            # and its ack must not wedge the whole run at teardown
            yield from self.task.recv(
                source=handle.server, tag=handle.reply_tag, timeout=self.policy.timeout
            )
