"""Sciddle-like RPC middleware over the PVM layer.

Reproduces the middleware architecture the paper studies: an IDL-driven
stub layer translating remote procedure calls into PVM messages, with
asynchronous call/wait, optional accounting barriers (Section 3.3) and
integrated performance instrumentation hooks (Section 3.2).
"""

from .barriers import SyncDiscipline, overlap_slowdown
from .idl import ProcedureSpec, SciddleInterface
from .stubgen import (
    OPAL_IDL,
    ArgumentSpec,
    CompiledInterface,
    CompiledProcedure,
    compile_idl,
)
from .resilient import ResilientSciddleClient, RetryPolicy, ServerHealth
from .runtime import (
    HEADER_BYTES,
    NO_REPLY_TAG,
    TAG_REPLY_BASE,
    TAG_REQUEST,
    CallHandle,
    RpcReply,
    RpcRequest,
    SciddleClient,
    SciddleServer,
    allocate_reply_tag,
)

__all__ = [
    "ArgumentSpec",
    "CallHandle",
    "CompiledInterface",
    "CompiledProcedure",
    "OPAL_IDL",
    "HEADER_BYTES",
    "NO_REPLY_TAG",
    "ProcedureSpec",
    "ResilientSciddleClient",
    "RetryPolicy",
    "RpcReply",
    "RpcRequest",
    "SciddleClient",
    "ServerHealth",
    "SciddleInterface",
    "SciddleServer",
    "SyncDiscipline",
    "allocate_reply_tag",
    "compile_idl",
    "TAG_REPLY_BASE",
    "TAG_REQUEST",
    "overlap_slowdown",
]
