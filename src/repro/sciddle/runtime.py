"""Sciddle RPC runtime: client and server stubs over PVM.

The client issues *asynchronous* RPCs (``call_async`` returns a handle,
``wait`` collects the result), which is how Sciddle encourages
overlapping communication with computation — and why, per Section 3.3 of
the paper, accurate accounting requires optional extra barriers
(see :mod:`repro.sciddle.barriers`).

Both stubs accept an optional :class:`~repro.hpm.PhaseAccountant`; when
present, the middleware itself accounts its communication phases — the
paper's plea (Section 3.2) for instrumentation *inside* the middleware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import RpcTimeoutError, SciddleError
from ..hpm import PhaseAccountant
from ..netsim import RecvTimeout
from ..pvm import PvmTask
from .idl import SciddleInterface

#: PVM tag carrying RPC requests to servers.
TAG_REQUEST = 900
#: Reply tags are allocated per call starting here.
TAG_REPLY_BASE = 10_000

#: Attribute on the PVM task carrying its reply-tag counter.
_TASK_TAG_ATTR = "_sciddle_next_reply_tag"


def allocate_reply_tag(task: PvmTask) -> int:
    """Allocate the next reply tag for ``task``.

    The counter lives on the *task*, not on the client: a task talking
    to two server groups through two clients must never hand both the
    same tag, or a reply from one group could satisfy a wait on the
    other.
    """
    tag = getattr(task, _TASK_TAG_ATTR, TAG_REPLY_BASE)
    setattr(task, _TASK_TAG_ATTR, tag + 1)
    return tag

#: Size in bytes of an RPC header / empty request or reply.
HEADER_BYTES = 64

_SHUTDOWN = "__shutdown__"

#: Reply-tag sentinel for fire-and-forget requests: the sender awaits no
#: reply, so the server must not send one (a reply to a real allocated
#: tag that nobody receives would sit in the mailbox forever — the leak
#: simlint's P301 rule exists to catch).
NO_REPLY_TAG = -1


@dataclass(frozen=True)
class RpcRequest:
    proc: str
    reply_tag: int
    args: Any
    #: idempotency sequence number set by the resilient client: the
    #: server runs a (source, seq) pair's handler at most once and
    #: resends the cached reply for retransmitted duplicates.  None
    #: (the plain client) disables dedup.
    seq: Optional[int] = None


@dataclass(frozen=True)
class RpcReply:
    """What a server handler returns: reply size and semantic payload."""

    nbytes: float = 0.0
    payload: Any = None


@dataclass(frozen=True)
class CallHandle:
    """Token identifying one outstanding asynchronous RPC."""

    server: int
    proc: str
    reply_tag: int


#: A server-side handler: generator taking (task, args), returning RpcReply.
Handler = Callable[[PvmTask, Any], Generator]


class SciddleServer:
    """Server-side stub dispatcher: recv request -> handler -> send reply."""

    def __init__(
        self,
        task: PvmTask,
        interface: SciddleInterface,
        accountant: Optional[PhaseAccountant] = None,
    ) -> None:
        self.task = task
        self.interface = interface
        self.accountant = accountant
        self._handlers: Dict[str, Handler] = {}
        self.calls_served = 0
        #: replies already computed, by (client tid, request seq) — the
        #: server side of the resilient client's idempotent retries
        self._completed: Dict[Tuple[int, int], RpcReply] = {}
        metrics = task.ctx.cluster.metrics
        self._m_served = metrics.counter("sciddle.calls_served")
        self._m_reply_bytes = metrics.counter("sciddle.reply_bytes")
        self._m_dups = metrics.counter("sciddle.dup_requests")

    def bind(self, name: str, handler: Handler) -> None:
        """Attach the implementation of a declared procedure."""
        self.interface.spec(name)  # validates the name
        self._handlers[name] = handler

    def run(self) -> Generator:
        """Main service loop; drive with ``yield from`` inside a task body."""
        while True:
            # the service loop blocks indefinitely by design: work may
            # arrive at any time, and shutdown is an explicit request
            msg = yield from self.task.recv(tag=TAG_REQUEST)  # simlint: disable=R501
            request: RpcRequest = msg.payload
            if request.proc == _SHUTDOWN:
                if request.reply_tag != NO_REPLY_TAG:
                    yield from self.task.send(
                        msg.source, request.reply_tag, nbytes=HEADER_BYTES
                    )
                return
            if request.seq is not None:
                cached = self._completed.get((msg.source, request.seq))
                if cached is not None:
                    # retransmitted duplicate: the handler (and its phase
                    # barriers) must not run twice — resend the reply
                    self._m_dups.inc()
                    yield from self.task.send(
                        msg.source,
                        request.reply_tag,
                        nbytes=HEADER_BYTES + cached.nbytes,
                        payload=cached.payload,
                    )
                    continue
            handler = self._handlers.get(request.proc)
            if handler is None:
                raise SciddleError(
                    f"server {self.task.name!r} has no binding for "
                    f"{request.proc!r} (bound: {sorted(self._handlers)})"
                )
            if self.accountant is not None:
                self.accountant.begin(f"service:{request.proc}")
            reply = yield from handler(self.task, request.args)
            if self.accountant is not None:
                self.accountant.end()
            if reply is None:
                reply = RpcReply()
            if not isinstance(reply, RpcReply):
                raise SciddleError(
                    f"handler for {request.proc!r} must return RpcReply, "
                    f"got {type(reply).__name__}"
                )
            self.calls_served += 1
            self._m_served.inc()
            self._m_reply_bytes.inc(HEADER_BYTES + reply.nbytes)
            if request.seq is not None:
                self._completed[(msg.source, request.seq)] = reply
            if self.accountant is not None:
                self.accountant.begin(f"reply:{request.proc}")
            yield from self.task.send(
                msg.source,
                request.reply_tag,
                nbytes=HEADER_BYTES + reply.nbytes,
                payload=reply.payload,
            )
            if self.accountant is not None:
                self.accountant.end()


class SciddleClient:
    """Client-side stub factory for one set of servers."""

    def __init__(
        self,
        task: PvmTask,
        interface: SciddleInterface,
        servers: List[int],
        accountant: Optional[PhaseAccountant] = None,
    ) -> None:
        if not servers:
            raise SciddleError("SciddleClient needs at least one server tid")
        self.task = task
        self.interface = interface
        self.servers = list(servers)
        self.accountant = accountant
        metrics = task.ctx.cluster.metrics
        self._m_rpcs = metrics.counter("sciddle.rpcs_issued")
        self._m_request_bytes = metrics.counter("sciddle.request_bytes")
        self._m_waits = metrics.counter("sciddle.waits")

    # ------------------------------------------------------------------
    def _alloc_tag(self) -> int:
        return allocate_reply_tag(self.task)

    def call_async(
        self,
        server: int,
        proc: str,
        args: Any = None,
        nbytes: Optional[float] = None,
        category: Optional[str] = None,
    ) -> Generator:
        """Issue one RPC; returns a :class:`CallHandle` (``yield from``)."""
        spec = self.interface.spec(proc)
        if nbytes is None:
            if spec.in_size is None:
                raise SciddleError(
                    f"procedure {proc!r} has no in_size rule; pass nbytes="
                )
            nbytes = spec.in_size(args)
        tag = self._alloc_tag()
        self._m_rpcs.inc()
        self._m_request_bytes.inc(HEADER_BYTES + nbytes)
        if self.accountant is not None and category is not None:
            self.accountant.begin(category)
        yield from self.task.send(
            server,
            TAG_REQUEST,
            nbytes=HEADER_BYTES + nbytes,
            payload=RpcRequest(proc, tag, args),
        )
        if self.accountant is not None and category is not None:
            self.accountant.end()
        return CallHandle(server, proc, tag)

    def wait(
        self,
        handle: CallHandle,
        category: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Generator:
        """Block until the RPC reply arrives; returns the reply payload.

        ``deadline=`` bounds the wait: on expiry the accounting bracket
        is closed and :class:`~repro.errors.RpcTimeoutError` raised.
        ``None`` preserves the classic wait-forever behaviour (use
        :class:`~repro.sciddle.resilient.ResilientSciddleClient` for
        retries instead of a bare error).
        """
        self._m_waits.inc()
        bracket = self.accountant is not None and category is not None
        if bracket:
            self.accountant.begin(category)
        try:
            msg = yield from self.task.recv(
                source=handle.server, tag=handle.reply_tag, timeout=deadline
            )
        finally:
            if bracket:
                self.accountant.end()
        if isinstance(msg, RecvTimeout):
            raise RpcTimeoutError(handle.proc, handle.server, deadline or 0.0)
        return msg.payload

    # ------------------------------------------------------------------
    def call_all(
        self,
        proc: str,
        args_for: Callable[[int, int], Any] = lambda i, tid: None,
        nbytes: Optional[float] = None,
        category: Optional[str] = None,
    ) -> Generator:
        """RPC to every server (sends serialize at the client, as in PVM).

        ``args_for(index, tid)`` builds per-server arguments.  Returns the
        list of handles.
        """
        handles = []
        for i, server in enumerate(self.servers):
            handle = yield from self.call_async(
                server, proc, args_for(i, server), nbytes=nbytes, category=category
            )
            handles.append(handle)
        return handles

    def wait_all(
        self, handles: List[CallHandle], category: Optional[str] = None
    ) -> Generator:
        """Collect all replies in issue order; returns list of payloads."""
        replies = []
        for handle in handles:
            replies.append((yield from self.wait(handle, category=category)))
        return replies

    def shutdown(self) -> Generator:
        """Terminate all servers and wait for their acknowledgements."""
        handles = []
        for server in self.servers:
            tag = self._alloc_tag()
            yield from self.task.send(
                server,
                TAG_REQUEST,
                nbytes=HEADER_BYTES,
                payload=RpcRequest(_SHUTDOWN, tag, None),
            )
            handles.append(CallHandle(server, _SHUTDOWN, tag))
        for handle in handles:
            yield from self.wait(handle)
