"""Remote interface specification (the "Sciddle compiler" input).

Real Sciddle reads an interface description of the subroutines exported
by the servers and generates communication stubs that translate an RPC
into PVM message-passing primitives.  Here the interface is declared in
Python; :mod:`repro.sciddle.runtime` plays the role of the generated
stubs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import SciddleError


@dataclass(frozen=True)
class ProcedureSpec:
    """One exported remote procedure.

    ``in_size``/``out_size`` are optional callables mapping the call's
    semantic arguments to message sizes in bytes; when provided, the
    stubs size the request/reply messages automatically (this is what a
    generated stub does from the IDL's array-length expressions).
    """

    name: str
    doc: str = ""
    in_size: Optional[Callable[..., float]] = None
    out_size: Optional[Callable[..., float]] = None


class SciddleInterface:
    """A named collection of remote procedures."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._procs: Dict[str, ProcedureSpec] = {}

    def procedure(
        self,
        name: str,
        doc: str = "",
        in_size: Optional[Callable[..., float]] = None,
        out_size: Optional[Callable[..., float]] = None,
    ) -> ProcedureSpec:
        """Declare a remote procedure; returns its spec."""
        if name in self._procs:
            raise SciddleError(f"procedure {name!r} already declared in {self.name!r}")
        if name.startswith("__"):
            raise SciddleError("procedure names starting with '__' are reserved")
        spec = ProcedureSpec(name, doc, in_size, out_size)
        self._procs[name] = spec
        return spec

    def spec(self, name: str) -> ProcedureSpec:
        """Look up one procedure's spec (raises on unknown names)."""
        try:
            return self._procs[name]
        except KeyError:
            raise SciddleError(
                f"interface {self.name!r} has no procedure {name!r}; "
                f"declared: {sorted(self._procs)}"
            ) from None

    def names(self) -> List[str]:
        """Sorted declared procedure names."""
        return sorted(self._procs)

    def __contains__(self, name: str) -> bool:
        return name in self._procs
