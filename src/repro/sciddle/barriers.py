"""Accounting barriers (Section 3.3 of the paper).

Plain Sciddle overlaps communication and computation, which makes the
low-level metrics the paper cares about (communication efficiency, idle
time, load imbalance) unmeasurable.  The paper's fix: insert explicit
PVM barriers at phase boundaries, accepting a small slowdown (<5%) in
exchange for exact accounting — the barriers "do not cause, but merely
expose" the single-client/multiple-server contention.

:class:`SyncDiscipline` packages that choice so application drivers can
run either way and quantify the overlap they gave up.
"""

from __future__ import annotations

from typing import Generator, Set

from ..pvm import PvmTask


class SyncDiscipline:
    """Phase-boundary synchronization policy for a client/server program.

    ``mode='overlapped'``
        barriers are no-ops: original Sciddle behaviour, maximal overlap,
        per-category times not separable.
    ``mode='accounted'``
        every phase boundary is a real counted barrier over the whole
        group (client + servers); categories separate exactly.
    """

    MODES = ("overlapped", "accounted")

    def __init__(self, mode: str, group: str, count: int) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if count < 1:
            raise ValueError("group count must be >= 1")
        self.mode = mode
        self.group = group
        self.count = count
        self.barriers_executed = 0
        #: tids declared dead (crashed or ostracized after timeouts);
        #: they no longer count toward phase barriers
        self._dead: Set[int] = set()

    @property
    def accounted(self) -> bool:
        """Whether phase barriers are real (accounted mode)."""
        return self.mode == "accounted"

    @property
    def live_count(self) -> int:
        """Barrier arrival count after removing dead members."""
        return max(self.count - len(self._dead), 1)

    def mark_dead(self, tid: int) -> None:
        """Shrink the barrier group: ``tid`` will never arrive again."""
        self._dead.add(tid)

    def phase_barrier(self, task: PvmTask, phase: str) -> Generator:
        """Synchronize the group at a phase boundary (no-op if overlapped)."""
        if self.accounted:
            self.barriers_executed += 1
            yield from task.barrier(f"{self.group}:{phase}", count=self.live_count)


def overlap_slowdown(t_accounted: float, t_overlapped: float) -> float:
    """Fractional slowdown of accounted vs overlapped execution.

    The paper accepts values below 0.05 ("we happily accept a small
    slowdown ... less than 5%").
    """
    if t_overlapped <= 0:
        raise ValueError("overlapped time must be positive")
    return (t_accounted - t_overlapped) / t_overlapped
