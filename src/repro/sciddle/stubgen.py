"""The Sciddle stub compiler: textual IDL -> interface + sized stubs.

"Sciddle comprises a stub generator (the Sciddle compiler) and a
run-time library.  The stub generator reads the remote interface
specification, i.e., the description of the subroutines exported by the
servers, and generates the corresponding communication stubs."

This module implements that pipeline for a small, Sciddle-flavoured IDL::

    interface opal {
        update_lists(in coords: double[3*n]);
        eval_nonbonded(in coords: double[3*n],
                       out grads: double[3*n], out energies: double[2]);
    }

Array lengths are integer arithmetic expressions over symbolic size
parameters (here ``n``); the generated stubs size request/reply messages
by evaluating them against the per-call parameter bindings — exactly the
job the real generated stubs do from the declared array bounds.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..errors import SciddleError
from ..pvm.message import TYPE_SIZES
from .idl import SciddleInterface

_INTERFACE_RE = re.compile(
    r"interface\s+(?P<name>\w+)\s*\{(?P<body>.*)\}\s*$", re.DOTALL
)
_PROC_RE = re.compile(r"(?P<name>\w+)\s*\((?P<args>.*?)\)\s*;", re.DOTALL)
_ARG_RE = re.compile(
    r"^(?P<dir>in|out)\s+(?P<name>\w+)\s*:\s*(?P<type>\w+)"
    r"(?:\[(?P<len>[^\]]+)\])?$"
)

#: AST node types permitted in array-length expressions.
_ALLOWED_NODES = (
    ast.Expression,
    ast.BinOp,
    ast.UnaryOp,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.FloorDiv,
    ast.Div,
    ast.Pow,
    ast.USub,
    ast.Constant,
    ast.Name,
    ast.Load,
)


@dataclass(frozen=True)
class ArgumentSpec:
    """One declared argument of a remote procedure."""

    name: str
    direction: str  # 'in' | 'out'
    typename: str
    length_expr: str  # '1' for scalars

    def nbytes(self, params: Mapping[str, int]) -> int:
        """Encoded size given the symbolic size parameters."""
        return TYPE_SIZES[self.typename] * _eval_length(self.length_expr, params)


@dataclass(frozen=True)
class CompiledProcedure:
    """A procedure with its argument list and size evaluators."""

    name: str
    arguments: Tuple[ArgumentSpec, ...]

    def in_nbytes(self, params: Mapping[str, int]) -> int:
        """Request payload size for one parameter binding."""
        return sum(
            a.nbytes(params) for a in self.arguments if a.direction == "in"
        )

    def out_nbytes(self, params: Mapping[str, int]) -> int:
        """Reply payload size for one parameter binding."""
        return sum(
            a.nbytes(params) for a in self.arguments if a.direction == "out"
        )


@dataclass
class CompiledInterface:
    """Output of the stub compiler."""

    name: str
    procedures: Dict[str, CompiledProcedure] = field(default_factory=dict)

    def runtime_interface(self) -> SciddleInterface:
        """The runtime-facing interface with auto-sizing rules.

        Call arguments must be a mapping providing the symbolic size
        parameters (e.g. ``{"n": 4289}``).
        """
        iface = SciddleInterface(self.name)
        for proc in self.procedures.values():
            iface.procedure(
                proc.name,
                in_size=(lambda args, _p=proc: _p.in_nbytes(args or {})),
                out_size=(lambda args, _p=proc: _p.out_nbytes(args or {})),
            )
        return iface


def _eval_length(expr: str, params: Mapping[str, int]) -> int:
    """Safely evaluate an integer arithmetic expression over params."""
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise SciddleError(f"bad length expression {expr!r}: {exc}") from None
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise SciddleError(
                f"length expression {expr!r} uses forbidden syntax "
                f"({type(node).__name__})"
            )
        if isinstance(node, ast.Name) and node.id not in params:
            raise SciddleError(
                f"length expression {expr!r} needs parameter {node.id!r}; "
                f"provided: {sorted(params)}"
            )
    value = eval(  # noqa: S307 - AST-validated arithmetic only
        compile(tree, "<idl>", "eval"), {"__builtins__": {}}, dict(params)
    )
    result = int(value)
    if result < 0:
        raise SciddleError(f"length expression {expr!r} evaluated to {result}")
    return result


def compile_idl(source: str) -> CompiledInterface:
    """Compile IDL text into a :class:`CompiledInterface`."""
    stripped = "\n".join(
        line.split("//")[0] for line in source.splitlines()
    ).strip()
    m = _INTERFACE_RE.match(stripped)
    if not m:
        raise SciddleError("expected 'interface <name> { ... }'")
    compiled = CompiledInterface(name=m.group("name"))
    body = m.group("body")
    consumed = _PROC_RE.sub("", body).strip()
    if consumed:
        raise SciddleError(f"unparseable IDL remnants: {consumed[:60]!r}")
    for pm in _PROC_RE.finditer(body):
        name = pm.group("name")
        if name in compiled.procedures:
            raise SciddleError(f"duplicate procedure {name!r}")
        args: List[ArgumentSpec] = []
        arg_src = pm.group("args").strip()
        if arg_src:
            for raw in arg_src.split(","):
                am = _ARG_RE.match(" ".join(raw.split()))
                if not am:
                    raise SciddleError(f"bad argument declaration {raw.strip()!r}")
                typename = am.group("type")
                if typename not in TYPE_SIZES:
                    raise SciddleError(
                        f"unknown type {typename!r}; known: {sorted(TYPE_SIZES)}"
                    )
                args.append(
                    ArgumentSpec(
                        name=am.group("name"),
                        direction=am.group("dir"),
                        typename=typename,
                        length_expr=am.group("len") or "1",
                    )
                )
        names = [a.name for a in args]
        if len(set(names)) != len(names):
            raise SciddleError(f"duplicate argument name in {name!r}")
        compiled.procedures[name] = CompiledProcedure(name, tuple(args))
    if not compiled.procedures:
        raise SciddleError("interface declares no procedures")
    return compiled


#: The Opal remote interface as the Sciddle compiler would see it.
OPAL_IDL = """
interface opal {
    // rebuild the per-server active-pair lists from fresh coordinates
    update_lists(in coords: double[3*n]);
    // partial Van der Waals / Coulomb energies and the gradient
    eval_nonbonded(in coords: double[3*n],
                   out grads: double[3*n], out energies: double[2]);
}
"""
