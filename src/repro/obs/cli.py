"""``python -m repro.obs`` — trace and telemetry-store tooling.

Trace commands work on both on-disk formats:

* ``*.jsonl`` — the lossless JSONL dump (:func:`repro.obs.write_jsonl`)
* ``*.json`` — Chrome trace-event JSON (:func:`write_chrome_trace`)

``summarize`` prints span/flow counts and per-category totals and exits
0 on any well-formed trace; ``convert`` turns a JSONL dump into a
Perfetto-loadable Chrome trace; ``diff`` compares two traces' category
totals and exits 1 when drift exceeds ``--tolerance`` (and, with
``--fail-on-drift``, when any response variable's relative drift
exceeds ``--drift-threshold`` — the CI gate).

Store commands operate on a :mod:`repro.obs.store` directory:

* ``query`` — predicate/projection/aggregation over one dataset
  (``--where 'cell.servers>=4' --agg 'p99(compute_us)'``);
* ``slo`` — sliding-window SLO verdicts for the ``serve`` (or, with
  ``--dataset fleet``, router) history against a ``repro-slo/1``
  budget file, exit 1 on any breach;
* ``drift`` — EWMA/CUSUM drift verdicts over residual history, exit 1
  when any response variable drifted;
* ``ingest`` — feed legacy telemetry (cache dirs, trace JSONL, bench
  emissions) into the store;
* ``merge`` — fold several stores into one (the fleet's router and
  per-worker stores join here before the SLO gate).

``slo``/``drift``/``query`` all take ``--json`` for machine-readable
verdicts.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from .export import (
    count_flow_events,
    load_jsonl,
    read_chrome_totals,
    read_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .spans import SpanTracer, response_variable


def _is_jsonl(path: pathlib.Path) -> bool:
    """True when the file holds one JSON object per line (JSONL dump)."""
    if path.suffix == ".jsonl":
        return True
    if path.suffix == ".json":
        return False
    with open(path, encoding="utf-8") as fh:
        head = fh.readline().strip()
    try:
        first = json.loads(head)
    except json.JSONDecodeError:
        return False
    return isinstance(first, dict) and first.get("type") == "meta"


def _load_any(path: pathlib.Path) -> Tuple[Optional[SpanTracer], Dict[str, float]]:
    """Load either format; returns (tracer-or-None, category totals [s]).

    Chrome traces come back as totals only — the complete-event list is
    a lossy projection, so no tracer is reconstructed for them.
    """
    if _is_jsonl(path):
        tracer, _metrics = load_jsonl(path)
        return tracer, tracer.by_category()
    return None, read_chrome_totals(path)


def _cmd_summarize(args: argparse.Namespace) -> int:
    path = pathlib.Path(args.trace)
    if not path.exists():
        print(f"error: no such trace file: {path}")
        return 2
    if _is_jsonl(path):
        tracer, metrics = load_jsonl(path)
        lo, hi = tracer.span_bounds()
        print(f"trace: {path} (jsonl)")
        print(
            f"  spans: {len(tracer.spans)}  flows: {len(tracer.flows)}  "
            f"procs: {len(tracer.procs())}  runs: {len(tracer.runs())}"
        )
        print(f"  makespan: {hi - lo:.6f} s")
        totals = tracer.by_category()
        _print_totals(totals)
        print("  response-variable rollup [s]:")
        for variable, seconds in sorted(tracer.by_response_variable().items()):
            print(f"    {variable:<20s} {seconds:12.6f}")
        rendered = metrics.render(indent="    ")
        if rendered:
            print("  metrics:")
            print(rendered)
        return 0
    document = read_chrome_trace(path)
    events = document.get("traceEvents", [])
    spans = sum(1 for e in events if e.get("ph") == "X")
    pids = {e.get("pid") for e in events}
    print(f"trace: {path} (chrome trace-event json)")
    print(
        f"  spans: {spans}  flows: {count_flow_events(path)}  "
        f"tracks: {len(pids)}"
    )
    totals = read_chrome_totals(path)
    _print_totals(totals)
    print("  response-variable rollup [s]:")
    rollup: Dict[str, float] = {}
    for category, seconds in totals.items():
        variable = response_variable(category) or "(other)"
        rollup[variable] = rollup.get(variable, 0.0) + seconds
    for variable, seconds in sorted(rollup.items()):
        print(f"    {variable:<20s} {seconds:12.6f}")
    return 0


def _print_totals(totals: Dict[str, float]) -> None:
    print("  category totals [s]:")
    for category, seconds in sorted(totals.items()):
        print(f"    {category:<20s} {seconds:12.6f}")


def _cmd_convert(args: argparse.Namespace) -> int:
    src = pathlib.Path(args.input)
    dst = pathlib.Path(args.output)
    if not src.exists():
        print(f"error: no such trace file: {src}")
        return 2
    if not _is_jsonl(src):
        print("error: convert expects a JSONL dump as input (chrome json is lossy)")
        return 2
    tracer, metrics = load_jsonl(src)
    if dst.suffix == ".jsonl":
        write_jsonl(tracer, dst, metrics=metrics)
    else:
        write_chrome_trace(tracer, dst, metrics=metrics)
    print(
        f"wrote {dst} ({len(tracer.spans)} spans, {len(tracer.flows)} flows)"
    )
    return 0


def _variable_rollup(totals: Dict[str, float]) -> Dict[str, float]:
    """Category totals folded onto the paper's response variables."""
    rollup: Dict[str, float] = {}
    for category, seconds in totals.items():
        variable = response_variable(category) or "(other)"
        rollup[variable] = rollup.get(variable, 0.0) + seconds
    return rollup


def _cmd_diff(args: argparse.Namespace) -> int:
    path_a = pathlib.Path(args.a)
    path_b = pathlib.Path(args.b)
    for path in (path_a, path_b):
        if not path.exists():
            print(f"error: no such trace file: {path}")
            return 2
    _tracer_a, totals_a = _load_any(path_a)
    _tracer_b, totals_b = _load_any(path_b)
    categories = sorted(set(totals_a) | set(totals_b))
    print(f"diff: {path_a} vs {path_b} (tolerance {args.tolerance:g} s)")
    print(
        f"  {'category':<20s} {'a[s]':>12s} {'b[s]':>12s} {'delta[s]':>12s}"
    )
    worst = 0.0
    for category in categories:
        a = totals_a.get(category, 0.0)
        b = totals_b.get(category, 0.0)
        delta = b - a
        worst = max(worst, abs(delta))
        flag = "  !" if abs(delta) > args.tolerance else ""
        print(f"  {category:<20s} {a:12.6f} {b:12.6f} {delta:12.6f}{flag}")

    drifted: List[str] = []
    if args.fail_on_drift:
        rollup_a = _variable_rollup(totals_a)
        rollup_b = _variable_rollup(totals_b)
        print(
            f"  response-variable drift (threshold "
            f"{100 * args.drift_threshold:.0f}%):"
        )
        for variable in sorted(set(rollup_a) | set(rollup_b)):
            a = rollup_a.get(variable, 0.0)
            b = rollup_b.get(variable, 0.0)
            scale = max(abs(a), abs(b))
            drift = abs(b - a) / scale if scale > 0 else 0.0
            flag = ""
            if drift > args.drift_threshold:
                drifted.append(variable)
                flag = "  <- drift"
            print(f"    {variable:<18s} {100 * drift:7.2f}%{flag}")

    if worst > args.tolerance:
        print(f"traces differ: worst category delta {worst:g} s")
        return 1
    if drifted:
        print(
            "residual drift flagged on: " + ", ".join(drifted)
        )
        return 1
    print("traces agree within tolerance")
    return 0


# ----------------------------------------------------------------------
# telemetry-store commands
# ----------------------------------------------------------------------
def _open_store(path: str):
    """A TelemetryStore for an *existing* store directory, or None."""
    from .store import TelemetryStore

    root = pathlib.Path(path)
    if not (root / "manifest.json").exists():
        print(f"error: no telemetry store at {root} (no manifest.json)")
        return None
    return TelemetryStore(root)


def _cmd_query(args: argparse.Namespace) -> int:
    from ..errors import TelemetryError
    from .query import run_query

    store = _open_store(args.store)
    if store is None:
        return 2
    try:
        result = run_query(
            store,
            args.dataset,
            where=args.where,
            agg=args.agg,
            by=args.by,
            select=args.select.split(",") if args.select else None,
            limit=args.limit,
        )
    except TelemetryError as exc:
        print(f"error: {exc}")
        return 2
    print(json.dumps(result.as_dict(), sort_keys=True) if args.json
          else result.render())
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from ..errors import TelemetryError
    from .monitor import SloBudget, evaluate_slo

    store = _open_store(args.store)
    if store is None:
        return 2
    try:
        budget = SloBudget.from_file(args.budget)
        report = evaluate_slo(
            store, budget, window=args.window, step=args.step,
            dataset=args.dataset,
        )
    except TelemetryError as exc:
        print(f"error: {exc}")
        return 2
    print(json.dumps(report.as_dict(), sort_keys=True) if args.json
          else report.render())
    return 0 if report.ok else 1


def _cmd_drift(args: argparse.Namespace) -> int:
    from ..errors import TelemetryError
    from .monitor import residual_drift

    store = _open_store(args.store)
    if store is None:
        return 2
    try:
        report = residual_drift(
            store,
            burn=args.burn,
            ewma_k=args.ewma_k,
            cusum_h=args.cusum_h,
        )
    except TelemetryError as exc:
        print(f"error: {exc}")
        return 2
    print(json.dumps(report.as_dict(), sort_keys=True) if args.json
          else report.render())
    return 0 if report.ok else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    from ..errors import TelemetryError
    from . import ingest as ingest_mod
    from .store import TelemetryStore

    store = TelemetryStore(args.store)  # ingest may create the store
    source = pathlib.Path(args.source)
    try:
        if args.kind == "cache":
            segments = ingest_mod.ingest_cache_dir(store, source)
        elif args.kind == "trace":
            segments = [ingest_mod.ingest_trace_jsonl(store, source)]
        else:
            segments = ingest_mod.ingest_bench_dir(store, source)
    except TelemetryError as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"ingested {source} -> {len(segments)} segment(s) "
        f"({', '.join(segments)}); store now holds "
        f"{', '.join(f'{d}:{store.rows(d)}' for d in store.datasets())}"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from ..errors import TelemetryError
    from .ingest import merge_stores
    from .store import TelemetryStore

    destination = TelemetryStore(args.destination)  # created if new
    datasets = args.datasets.split(",") if args.datasets else None
    try:
        segments = merge_stores(
            destination, args.sources, datasets=datasets,
            allow_missing=args.allow_missing,
        )
    except TelemetryError as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"merged {len(args.sources)} store(s) -> {len(segments)} segment(s); "
        f"destination now holds "
        f"{', '.join(f'{d}:{destination.rows(d)}' for d in destination.datasets())}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and convert repro.obs trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize", help="print span/flow counts and category totals"
    )
    p_sum.add_argument("trace", help="trace file (.jsonl or chrome .json)")
    p_sum.set_defaults(func=_cmd_summarize)

    p_conv = sub.add_parser(
        "convert", help="convert a JSONL dump to Chrome trace-event JSON"
    )
    p_conv.add_argument("input", help="source JSONL dump")
    p_conv.add_argument("output", help="destination (.json for chrome, .jsonl)")
    p_conv.set_defaults(func=_cmd_convert)

    p_diff = sub.add_parser(
        "diff", help="compare category totals of two traces"
    )
    p_diff.add_argument("a", help="first trace file")
    p_diff.add_argument("b", help="second trace file")
    p_diff.add_argument(
        "--tolerance",
        type=float,
        default=1e-9,
        help="max per-category absolute delta in seconds (default 1e-9)",
    )
    p_diff.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="also exit 1 when any response variable's relative drift "
        "exceeds --drift-threshold (the CI gate)",
    )
    p_diff.add_argument(
        "--drift-threshold",
        type=float,
        default=0.10,
        help="relative drift per response variable tolerated by "
        "--fail-on-drift (default 0.10)",
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_query = sub.add_parser(
        "query", help="filter and aggregate one telemetry-store dataset"
    )
    p_query.add_argument("store", help="telemetry store directory")
    p_query.add_argument("dataset", help="dataset to scan (e.g. cells, serve)")
    p_query.add_argument(
        "--where", help="conjunction of comparisons, e.g. 'cell.servers>=4'"
    )
    p_query.add_argument(
        "--agg", help="aggregate calls, e.g. 'p99(compute_us), count()'"
    )
    p_query.add_argument("--by", help="group-by column for --agg")
    p_query.add_argument(
        "--select", help="comma-separated columns to project (no --agg)"
    )
    p_query.add_argument(
        "--limit", type=int, help="max projected rows (no --agg)"
    )
    p_query.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_query.set_defaults(func=_cmd_query)

    p_slo = sub.add_parser(
        "slo", help="judge serve history against SLO budgets (exit 1 on breach)"
    )
    p_slo.add_argument("store", help="telemetry store directory")
    p_slo.add_argument("budget", help="repro-slo/1 budget JSON file")
    p_slo.add_argument(
        "--window", type=int, default=256, help="requests per window (default 256)"
    )
    p_slo.add_argument(
        "--step", type=int, help="window stride (default: half a window)"
    )
    p_slo.add_argument(
        "--dataset", default="serve",
        help="dataset to judge: 'serve' (worker flight rows) or 'fleet' "
        "(router rows); default serve",
    )
    p_slo.add_argument(
        "--json", action="store_true", help="machine-readable verdicts"
    )
    p_slo.set_defaults(func=_cmd_slo)

    p_merge = sub.add_parser(
        "merge",
        help="fold several telemetry stores into one (fleet SLO join)",
    )
    p_merge.add_argument(
        "destination", help="destination store directory (created if new)"
    )
    p_merge.add_argument(
        "sources", nargs="+", help="source store directories, in merge order"
    )
    p_merge.add_argument(
        "--datasets", default=None,
        help="comma-separated datasets to copy (default: all)",
    )
    p_merge.add_argument(
        "--allow-missing", action="store_true",
        help="skip sources with no manifest (a chaos-killed worker "
        "dies before its first flush)",
    )
    p_merge.set_defaults(func=_cmd_merge)

    p_drift = sub.add_parser(
        "drift",
        help="EWMA/CUSUM drift verdicts over residual history (exit 1 on drift)",
    )
    p_drift.add_argument("store", help="telemetry store directory")
    p_drift.add_argument(
        "--burn", type=int, default=2, help="baseline ingest batches (default 2)"
    )
    p_drift.add_argument(
        "--ewma-k", type=float, default=4.0, help="EWMA z flag level (default 4)"
    )
    p_drift.add_argument(
        "--cusum-h", type=float, default=5.0, help="CUSUM flag level (default 5)"
    )
    p_drift.add_argument(
        "--json", action="store_true", help="machine-readable verdicts"
    )
    p_drift.set_defaults(func=_cmd_drift)

    p_ing = sub.add_parser(
        "ingest", help="feed legacy telemetry files into the store"
    )
    p_ing.add_argument("store", help="telemetry store directory (created if new)")
    p_ing.add_argument(
        "kind", choices=("cache", "trace", "bench"),
        help="cache: experiments.cache dir; trace: obs JSONL; "
        "bench: benchmarks/out dir",
    )
    p_ing.add_argument("source", help="path to the legacy telemetry")
    p_ing.set_defaults(func=_cmd_ingest)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    result: int = args.func(args)
    return result


__all__: List[str] = ["build_parser", "main"]
