"""``python -m repro.obs`` — trace tooling: summarize, convert, diff.

Works on both on-disk formats:

* ``*.jsonl`` — the lossless JSONL dump (:func:`repro.obs.write_jsonl`)
* ``*.json`` — Chrome trace-event JSON (:func:`write_chrome_trace`)

``summarize`` prints span/flow counts and per-category totals and exits
0 on any well-formed trace; ``convert`` turns a JSONL dump into a
Perfetto-loadable Chrome trace; ``diff`` compares two traces' category
totals and exits 1 when drift exceeds ``--tolerance``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from .export import (
    count_flow_events,
    load_jsonl,
    read_chrome_totals,
    read_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .spans import SpanTracer, response_variable


def _is_jsonl(path: pathlib.Path) -> bool:
    """True when the file holds one JSON object per line (JSONL dump)."""
    if path.suffix == ".jsonl":
        return True
    if path.suffix == ".json":
        return False
    with open(path, encoding="utf-8") as fh:
        head = fh.readline().strip()
    try:
        first = json.loads(head)
    except json.JSONDecodeError:
        return False
    return isinstance(first, dict) and first.get("type") == "meta"


def _load_any(path: pathlib.Path) -> Tuple[Optional[SpanTracer], Dict[str, float]]:
    """Load either format; returns (tracer-or-None, category totals [s]).

    Chrome traces come back as totals only — the complete-event list is
    a lossy projection, so no tracer is reconstructed for them.
    """
    if _is_jsonl(path):
        tracer, _metrics = load_jsonl(path)
        return tracer, tracer.by_category()
    return None, read_chrome_totals(path)


def _cmd_summarize(args: argparse.Namespace) -> int:
    path = pathlib.Path(args.trace)
    if not path.exists():
        print(f"error: no such trace file: {path}")
        return 2
    if _is_jsonl(path):
        tracer, metrics = load_jsonl(path)
        lo, hi = tracer.span_bounds()
        print(f"trace: {path} (jsonl)")
        print(
            f"  spans: {len(tracer.spans)}  flows: {len(tracer.flows)}  "
            f"procs: {len(tracer.procs())}  runs: {len(tracer.runs())}"
        )
        print(f"  makespan: {hi - lo:.6f} s")
        totals = tracer.by_category()
        _print_totals(totals)
        print("  response-variable rollup [s]:")
        for variable, seconds in sorted(tracer.by_response_variable().items()):
            print(f"    {variable:<20s} {seconds:12.6f}")
        rendered = metrics.render(indent="    ")
        if rendered:
            print("  metrics:")
            print(rendered)
        return 0
    document = read_chrome_trace(path)
    events = document.get("traceEvents", [])
    spans = sum(1 for e in events if e.get("ph") == "X")
    pids = {e.get("pid") for e in events}
    print(f"trace: {path} (chrome trace-event json)")
    print(
        f"  spans: {spans}  flows: {count_flow_events(path)}  "
        f"tracks: {len(pids)}"
    )
    totals = read_chrome_totals(path)
    _print_totals(totals)
    print("  response-variable rollup [s]:")
    rollup: Dict[str, float] = {}
    for category, seconds in totals.items():
        variable = response_variable(category) or "(other)"
        rollup[variable] = rollup.get(variable, 0.0) + seconds
    for variable, seconds in sorted(rollup.items()):
        print(f"    {variable:<20s} {seconds:12.6f}")
    return 0


def _print_totals(totals: Dict[str, float]) -> None:
    print("  category totals [s]:")
    for category, seconds in sorted(totals.items()):
        print(f"    {category:<20s} {seconds:12.6f}")


def _cmd_convert(args: argparse.Namespace) -> int:
    src = pathlib.Path(args.input)
    dst = pathlib.Path(args.output)
    if not src.exists():
        print(f"error: no such trace file: {src}")
        return 2
    if not _is_jsonl(src):
        print("error: convert expects a JSONL dump as input (chrome json is lossy)")
        return 2
    tracer, metrics = load_jsonl(src)
    if dst.suffix == ".jsonl":
        write_jsonl(tracer, dst, metrics=metrics)
    else:
        write_chrome_trace(tracer, dst, metrics=metrics)
    print(
        f"wrote {dst} ({len(tracer.spans)} spans, {len(tracer.flows)} flows)"
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    path_a = pathlib.Path(args.a)
    path_b = pathlib.Path(args.b)
    for path in (path_a, path_b):
        if not path.exists():
            print(f"error: no such trace file: {path}")
            return 2
    _tracer_a, totals_a = _load_any(path_a)
    _tracer_b, totals_b = _load_any(path_b)
    categories = sorted(set(totals_a) | set(totals_b))
    print(f"diff: {path_a} vs {path_b} (tolerance {args.tolerance:g} s)")
    print(
        f"  {'category':<20s} {'a[s]':>12s} {'b[s]':>12s} {'delta[s]':>12s}"
    )
    worst = 0.0
    for category in categories:
        a = totals_a.get(category, 0.0)
        b = totals_b.get(category, 0.0)
        delta = b - a
        worst = max(worst, abs(delta))
        flag = "  !" if abs(delta) > args.tolerance else ""
        print(f"  {category:<20s} {a:12.6f} {b:12.6f} {delta:12.6f}{flag}")
    if worst > args.tolerance:
        print(f"traces differ: worst category delta {worst:g} s")
        return 1
    print("traces agree within tolerance")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and convert repro.obs trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize", help="print span/flow counts and category totals"
    )
    p_sum.add_argument("trace", help="trace file (.jsonl or chrome .json)")
    p_sum.set_defaults(func=_cmd_summarize)

    p_conv = sub.add_parser(
        "convert", help="convert a JSONL dump to Chrome trace-event JSON"
    )
    p_conv.add_argument("input", help="source JSONL dump")
    p_conv.add_argument("output", help="destination (.json for chrome, .jsonl)")
    p_conv.set_defaults(func=_cmd_convert)

    p_diff = sub.add_parser(
        "diff", help="compare category totals of two traces"
    )
    p_diff.add_argument("a", help="first trace file")
    p_diff.add_argument("b", help="second trace file")
    p_diff.add_argument(
        "--tolerance",
        type=float,
        default=1e-9,
        help="max per-category absolute delta in seconds (default 1e-9)",
    )
    p_diff.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    result: int = args.func(args)
    return result


__all__: List[str] = ["build_parser", "main"]
