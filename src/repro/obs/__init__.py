"""Unified observability layer: spans, flow edges, metrics, exporters.

The paper's core methodological claim is that instrumentation belongs
*inside* the middleware (Sections 2.4 and 3.2): hardware counters plus
phase-separating barriers are what make the analytical model
calibratable.  This package is that claim turned into a subsystem:

* :mod:`repro.obs.spans` — hierarchical begin/end **spans** with
  categories, the structured successor of the flat
  :class:`~repro.netsim.trace.Tracer` records, plus causal **flow
  edges** linking every message send to its receive across processes;
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  fed by the event engine, the Sciddle runtime, the hpm accountants and
  the experiment cache;
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto
  or ``about:tracing``; timestamps are *simulated* microseconds) and a
  lossless JSONL span/metric dump;
* :mod:`repro.obs.session` — :class:`ObsSession`, the ``obs=`` hook
  threaded through :func:`repro.opal.parallel.run_parallel_opal`,
  :class:`repro.experiments.ExperimentRunner` and
  :func:`repro.experiments.run_campaign`, merging whole factorial
  campaigns into one trace;
* :mod:`repro.obs.report` — the measured-vs-model join: per response
  variable, the category totals against the eq. (2)-(10) prediction
  with residual-drift flags;
* :mod:`repro.obs.store` — the append-only columnar telemetry store
  (``repro-telemetry/1``): campaign cells, residuals, span rollups,
  serve flight records and bench emissions in one queryable place;
* :mod:`repro.obs.query` — predicate/projection/aggregation over store
  datasets, sharing one nearest-rank :func:`~repro.obs.query.percentile`
  with the serve layer;
* :mod:`repro.obs.monitor` — sliding-window SLO verdicts and
  EWMA/CUSUM residual drift detection over store history;
* :mod:`repro.obs.ingest` — adapters feeding legacy telemetry
  (experiment caches, trace JSONL, bench emissions, loadgen reports)
  into the store;
* ``python -m repro.obs`` — summarize / convert / diff trace files,
  plus query / slo / drift / ingest over a telemetry store.

Import structure: :mod:`spans` and :mod:`metrics` are dependency-free
(so :mod:`repro.netsim` can build on them without cycles); everything
else is loaded lazily through this module's ``__getattr__``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import (
    MODEL_CATEGORIES,
    FlowEdge,
    Span,
    SpanTracer,
    response_variable,
)

if TYPE_CHECKING:  # lazy at runtime to keep import order cycle-free
    from .session import ObsSession  # noqa: F401

#: Lazily resolved exports (module, attribute); anything importing the
#: analytical model must not load while ``repro.netsim`` imports spans.
_LAZY: Dict[str, Tuple[str, str]] = {
    "ObsSession": ("repro.obs.session", "ObsSession"),
    "run_label": ("repro.obs.session", "run_label"),
    "write_chrome_trace": ("repro.obs.export", "write_chrome_trace"),
    "write_jsonl": ("repro.obs.export", "write_jsonl"),
    "load_jsonl": ("repro.obs.export", "load_jsonl"),
    "read_chrome_totals": ("repro.obs.export", "read_chrome_totals"),
    "residual_report": ("repro.obs.report", "residual_report"),
    "TelemetryStore": ("repro.obs.store", "TelemetryStore"),
    "run_query": ("repro.obs.query", "run_query"),
    "percentile": ("repro.obs.query", "percentile"),
    "SloBudget": ("repro.obs.monitor", "SloBudget"),
    "evaluate_slo": ("repro.obs.monitor", "evaluate_slo"),
    "residual_drift": ("repro.obs.monitor", "residual_drift"),
    "detect_drift": ("repro.obs.monitor", "detect_drift"),
    "ingest_records": ("repro.obs.ingest", "ingest_records"),
    "ingest_cache_dir": ("repro.obs.ingest", "ingest_cache_dir"),
    "ingest_trace_jsonl": ("repro.obs.ingest", "ingest_trace_jsonl"),
    "ingest_bench_dir": ("repro.obs.ingest", "ingest_bench_dir"),
    "ingest_loadgen_report": ("repro.obs.ingest", "ingest_loadgen_report"),
}

__all__ = [
    "Counter",
    "FlowEdge",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MODEL_CATEGORIES",
    "ObsSession",
    "SloBudget",
    "Span",
    "SpanTracer",
    "TelemetryStore",
    "detect_drift",
    "evaluate_slo",
    "ingest_bench_dir",
    "ingest_cache_dir",
    "ingest_loadgen_report",
    "ingest_records",
    "ingest_trace_jsonl",
    "load_jsonl",
    "percentile",
    "read_chrome_totals",
    "residual_drift",
    "residual_report",
    "response_variable",
    "run_label",
    "run_query",
    "write_chrome_trace",
    "write_jsonl",
]


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
