"""Sliding-window SLO evaluation and residual drift detection.

Two monitors over :class:`~repro.obs.store.TelemetryStore` history:

* **SLO** (:func:`evaluate_slo`) — sliding windows over the ``serve``
  dataset's per-request flight-recorder rows, each window judged
  against an :class:`SloBudget` (p50/p99 latency, shed fraction, queue
  depth).  The verdict is machine-readable and the CLI
  (``python -m repro.obs slo``) exits non-zero on any breach, so CI
  can gate a seeded burst against committed budgets.
* **Drift** (:func:`residual_drift`) — EWMA + CUSUM change detection
  on the per-variable measured-vs-model residual history in the
  ``residuals`` dataset.  Each ingest batch contributes one point per
  response variable (mean absolute relative residual); the detectors
  compare later points against the burn-in baseline, which is what
  catches a *silently recalibrated or perturbed* model — Cornebize &
  Legrand's failure mode — while deterministic clean history scores
  exactly zero deviation and stays quiet.

Both monitors are pure functions of store content plus explicit
parameters: no wall clock, no ambient state, deterministic verdicts.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import TelemetryError
from .query import percentile
from .store import TelemetryStore

PathLike = Union[str, pathlib.Path]

#: Schema tag required from budget files.
SLO_SCHEMA = "repro-slo/1"

#: Flight-recorder status codes (column ``status`` of dataset ``serve``).
STATUS_OK = 0
STATUS_SHED_RATE = 1
STATUS_SHED_QUEUE = 2
STATUS_EXPIRED = 3
STATUS_ERROR = 4
STATUS_SHED_DRAIN = 5

STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_SHED_RATE: "shed_rate",
    STATUS_SHED_QUEUE: "shed_queue",
    STATUS_EXPIRED: "expired",
    STATUS_ERROR: "error",
    STATUS_SHED_DRAIN: "shed_drain",
}

#: Statuses counted as shed by the SLO monitor (they never replied).
SHED_STATUSES = (STATUS_SHED_RATE, STATUS_SHED_QUEUE, STATUS_SHED_DRAIN)


# ----------------------------------------------------------------------
# SLO
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloBudget:
    """Declared service-level budgets; ``None`` disables a check."""

    p50_s: Optional[float] = None
    p99_s: Optional[float] = None
    shed_fraction: Optional[float] = None
    queue_depth: Optional[int] = None

    @classmethod
    def from_file(cls, path: PathLike) -> "SloBudget":
        """Load a schema-tagged budget JSON file."""
        p = pathlib.Path(path)
        try:
            payload = json.loads(p.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise TelemetryError(f"unreadable budget file {p}: {exc}") from None
        if not isinstance(payload, dict) or payload.get("schema") != SLO_SCHEMA:
            raise TelemetryError(
                f"{p}: missing or foreign schema tag (expected {SLO_SCHEMA!r})"
            )
        return cls(
            p50_s=payload.get("p50_s"),
            p99_s=payload.get("p99_s"),
            shed_fraction=payload.get("shed_fraction"),
            queue_depth=payload.get("queue_depth"),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able budget snapshot."""
        return {
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "shed_fraction": self.shed_fraction,
            "queue_depth": self.queue_depth,
        }


@dataclass
class WindowVerdict:
    """One sliding window judged against the budget."""

    index: int
    requests: int
    p50_s: float
    p99_s: float
    shed_fraction: float
    max_queue_depth: int
    breaches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether this window met every budgeted objective."""
        return not self.breaches

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able verdict row."""
        return {
            "index": self.index,
            "requests": self.requests,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "shed_fraction": self.shed_fraction,
            "max_queue_depth": self.max_queue_depth,
            "ok": self.ok,
            "breaches": list(self.breaches),
        }


@dataclass
class SloReport:
    """All window verdicts plus the overall outcome."""

    budget: SloBudget
    windows: List[WindowVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every window met the budget."""
        return all(w.ok for w in self.windows)

    @property
    def breached(self) -> List[WindowVerdict]:
        """The windows that missed at least one objective."""
        return [w for w in self.windows if not w.ok]

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable report (the CLI's --json payload)."""
        return {
            "schema": "repro-slo-report/1",
            "budget": self.budget.as_dict(),
            "windows": [w.as_dict() for w in self.windows],
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable verdict table."""
        lines = [
            f"SLO verdict over {len(self.windows)} window(s): "
            + ("OK" if self.ok else f"{len(self.breached)} window(s) breached")
        ]
        header = (
            f"  {'win':>4s} {'reqs':>6s} {'p50[ms]':>9s} {'p99[ms]':>9s} "
            f"{'shed':>7s} {'depth':>6s}  verdict"
        )
        lines.append(header)
        for w in self.windows:
            verdict = "ok" if w.ok else "BREACH: " + ", ".join(w.breaches)
            lines.append(
                f"  {w.index:>4d} {w.requests:>6d} {w.p50_s * 1e3:>9.3f} "
                f"{w.p99_s * 1e3:>9.3f} {w.shed_fraction:>6.1%} "
                f"{w.max_queue_depth:>6d}  {verdict}"
            )
        return "\n".join(lines)


def _window_verdict(
    index: int,
    status: np.ndarray,
    reply_s: np.ndarray,
    depth: np.ndarray,
    budget: SloBudget,
) -> WindowVerdict:
    shed_mask = np.isin(status, SHED_STATUSES)
    answered = reply_s[~shed_mask]
    shed = int(np.count_nonzero(shed_mask))
    verdict = WindowVerdict(
        index=index,
        requests=len(status),
        p50_s=percentile(answered, 0.50),
        p99_s=percentile(answered, 0.99),
        shed_fraction=shed / len(status) if len(status) else 0.0,
        max_queue_depth=int(np.max(depth)) if len(depth) else 0,
    )
    if budget.p50_s is not None and verdict.p50_s > budget.p50_s:
        verdict.breaches.append(f"p50 {verdict.p50_s:.6f}s > {budget.p50_s}s")
    if budget.p99_s is not None and verdict.p99_s > budget.p99_s:
        verdict.breaches.append(f"p99 {verdict.p99_s:.6f}s > {budget.p99_s}s")
    if budget.shed_fraction is not None and verdict.shed_fraction > budget.shed_fraction:
        verdict.breaches.append(
            f"shed {verdict.shed_fraction:.2%} > {budget.shed_fraction:.2%}"
        )
    if budget.queue_depth is not None and verdict.max_queue_depth > budget.queue_depth:
        verdict.breaches.append(
            f"queue depth {verdict.max_queue_depth} > {budget.queue_depth}"
        )
    return verdict


def evaluate_slo(
    store: TelemetryStore,
    budget: SloBudget,
    window: int = 256,
    step: Optional[int] = None,
    dataset: str = "serve",
) -> SloReport:
    """Judge every sliding window of the serve history against budgets.

    Rows are ordered by admission time (``t_admit``, stable sort so
    ties keep append order); windows of ``window`` requests advance by
    ``step`` (default: half a window, so every request is judged by at
    least one full window).  A short history still produces one
    (partial) window — an empty verdict would silently pass CI.
    """
    if window < 1:
        raise TelemetryError("window must be >= 1 request")
    table = store.scan(dataset, columns=["t_admit", "status", "reply_s", "depth"])
    order = np.argsort(table["t_admit"], kind="stable")
    status = table["status"][order]
    reply_s = table["reply_s"][order]
    depth = table["depth"][order]
    step = max(1, window // 2) if step is None else max(1, step)

    report = SloReport(budget=budget)
    n = len(status)
    starts = list(range(0, max(1, n - window + 1), step))
    if starts and starts[-1] + window < n:
        starts.append(n - window)
    for index, start in enumerate(starts):
        stop = min(n, start + window)
        report.windows.append(
            _window_verdict(
                index, status[start:stop], reply_s[start:stop], depth[start:stop], budget
            )
        )
    return report


# ----------------------------------------------------------------------
# drift
# ----------------------------------------------------------------------
@dataclass
class DriftVerdict:
    """EWMA/CUSUM outcome for one response variable's residual history."""

    variable: str
    points: int
    baseline: float
    latest: float
    ewma_z: float
    cusum: float
    flagged: bool
    reason: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able verdict row."""
        return {
            "variable": self.variable,
            "points": self.points,
            "baseline": self.baseline,
            "latest": self.latest,
            "ewma_z": self.ewma_z,
            "cusum": self.cusum,
            "flagged": self.flagged,
            "reason": self.reason,
        }


@dataclass
class DriftReport:
    """Per-variable drift verdicts plus the overall outcome."""

    verdicts: List[DriftVerdict] = field(default_factory=list)

    @property
    def flagged(self) -> List[DriftVerdict]:
        """The variables whose residual history drifted."""
        return [v for v in self.verdicts if v.flagged]

    @property
    def ok(self) -> bool:
        """True when no variable drifted."""
        return not self.flagged

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable report (the CLI's --json payload)."""
        return {
            "schema": "repro-drift-report/1",
            "variables": [v.as_dict() for v in self.verdicts],
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable drift table."""
        lines = [
            "residual drift verdict: "
            + ("quiet" if self.ok else f"{len(self.flagged)} variable(s) drifted")
        ]
        lines.append(
            f"  {'variable':<10s} {'points':>6s} {'baseline':>12s} "
            f"{'latest':>12s} {'ewma_z':>8s} {'cusum':>8s}  verdict"
        )
        for v in self.verdicts:
            verdict = f"DRIFT ({v.reason})" if v.flagged else "quiet"
            lines.append(
                f"  {v.variable:<10s} {v.points:>6d} {v.baseline:>12.6g} "
                f"{v.latest:>12.6g} {v.ewma_z:>8.2f} {v.cusum:>8.2f}  {verdict}"
            )
        return "\n".join(lines)


def detect_drift(
    series: Sequence[float],
    burn: int = 2,
    alpha: float = 0.3,
    ewma_k: float = 4.0,
    cusum_slack: float = 0.5,
    cusum_h: float = 5.0,
    rel_floor: float = 0.05,
    abs_floor: float = 1e-9,
) -> Dict[str, float]:
    """EWMA + one-sided CUSUM over one scalar history.

    The first ``burn`` points establish the baseline mean and scale;
    the scale is floored at ``rel_floor * |mean|`` and ``abs_floor`` so
    a perfectly deterministic (zero-variance) baseline does not turn
    every later bit-identical point into infinite z — clean replayed
    history scores exactly zero.  Later points are standardized against
    the baseline; the EWMA of z flags sustained shifts, the CUSUM
    accumulates slack-discounted z so slow ramps flag too.
    """
    values = [float(v) for v in series]
    n = len(values)
    out = {"points": float(n), "baseline": 0.0, "latest": 0.0, "ewma_z": 0.0, "cusum": 0.0, "flagged": 0.0}
    if n == 0:
        return out
    out["latest"] = values[-1]
    burn = max(1, min(burn, n))
    base = values[:burn]
    mean = sum(base) / len(base)
    var = sum((v - mean) ** 2 for v in base) / len(base)
    scale = max(math.sqrt(var), rel_floor * abs(mean), abs_floor)
    out["baseline"] = mean
    if n <= burn:
        return out
    ewma = 0.0
    s_pos = 0.0
    for v in values[burn:]:
        z = (v - mean) / scale
        ewma = alpha * z + (1 - alpha) * ewma
        s_pos = max(0.0, s_pos + z - cusum_slack)
    out["ewma_z"] = ewma
    out["cusum"] = s_pos
    if abs(ewma) > ewma_k:
        out["flagged"] = 1.0
        out["reason"] = f"ewma_z {ewma:.2f} beyond +-{ewma_k:g}"  # type: ignore[assignment]
    if s_pos > cusum_h:
        out["flagged"] = 1.0
        reason = f"cusum {s_pos:.2f} beyond {cusum_h:g}"
        prior = out.get("reason")
        out["reason"] = f"{prior}; {reason}" if prior else reason  # type: ignore[assignment]
    return out


def residual_drift(
    store: TelemetryStore,
    burn: int = 2,
    alpha: float = 0.3,
    ewma_k: float = 4.0,
    cusum_slack: float = 0.5,
    cusum_h: float = 5.0,
) -> DriftReport:
    """Drift verdicts over the store's residual history, per variable.

    Each ingest batch (``batch`` column, stamped by the adapter)
    contributes one point per response variable: the mean absolute
    relative residual of that batch.  Batches are the time axis; a
    perturbed calibration shifts whole batches at once, which is
    exactly the step change CUSUM/EWMA detect.
    """
    table = store.scan("residuals", columns=["variable", "relative", "batch"])
    report = DriftReport()
    for variable in np.unique(table["variable"]):
        mask = table["variable"] == variable
        batches = table["batch"][mask]
        relative = np.abs(table["relative"][mask])
        series = [
            float(np.mean(relative[batches == b])) for b in np.unique(batches)
        ]
        outcome = detect_drift(
            series, burn=burn, alpha=alpha, ewma_k=ewma_k,
            cusum_slack=cusum_slack, cusum_h=cusum_h,
        )
        report.verdicts.append(
            DriftVerdict(
                variable=str(variable),
                points=int(outcome["points"]),
                baseline=float(outcome["baseline"]),
                latest=float(outcome["latest"]),
                ewma_z=float(outcome["ewma_z"]),
                cusum=float(outcome["cusum"]),
                flagged=bool(outcome["flagged"]),
                reason=str(outcome.get("reason", "")),
            )
        )
    return report
