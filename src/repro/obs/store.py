"""Append-only columnar telemetry store (schema ``repro-telemetry/1``).

The single sink ROADMAP item 5 calls the enabling refactor: campaign
cell results, span rollups, residual reports, bench emissions and
per-request serve records all land here instead of being scattered over
``experiments.cache`` JSONL, obs trace exports and ``benchmarks/out``
files with incompatible layouts.

Layout on disk::

    <root>/
      manifest.json          # {"schema": "repro-telemetry/1", ...}
      seg-000001/
        servers.npy          # one .npy per column
        total_s.npy
      seg-000002/
        ...

A **segment** is one immutable append: equal-length columns written as
raw ``.npy`` files (never pickled), plus a manifest entry recording the
dataset it belongs to, its row count, column dtypes and free-form
``meta``.  ``.npy`` bytes are a pure function of the array, so two
processes appending the same rows in the same order produce
bit-identical stores — the property the serial-vs-pooled ingestion
tests pin, and the reason segments are *not* zipped (``np.savez``
stamps wall-clock zip timestamps).

Writes are atomic: the segment directory is populated under a
``tmp-`` name and renamed into place, then the manifest is replaced
via a same-directory temp file, so a reader never observes a torn
segment; a crash between the two leaves an orphaned ``seg-`` directory
the manifest does not reference, which readers ignore.

The store is deliberately small: no deletes, no updates, no indexes —
an append log of typed columns with whole-dataset scans.  Everything
smarter (predicates, aggregation, windows) lives in
:mod:`repro.obs.query` and :mod:`repro.obs.monitor` on top of
:meth:`TelemetryStore.scan`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import tempfile
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import TelemetryError

PathLike = Union[str, pathlib.Path]

#: Version tag stamped into (and required from) every manifest.
SCHEMA = "repro-telemetry/1"

#: Dataset and column names: lowercase identifiers (dots reserved for
#: the query language's ``dataset.column`` form).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: The datasets the shipped adapters write (free-form names are still
#: allowed; this is documentation, not a whitelist).
KNOWN_DATASETS = (
    "cells", "residuals", "spans", "serve", "fleet", "loadgen", "bench",
)


def _as_column(name: str, values: Sequence[Any]) -> np.ndarray:
    """One column as a 1-D numpy array (numeric or unicode, no objects)."""
    arr = np.asarray(values)
    if arr.dtype == object or arr.dtype.kind not in "iufUb":
        arr = np.array([str(v) for v in values], dtype=str)
    if arr.dtype.kind == "b":
        arr = arr.astype(np.int64)
    if arr.ndim != 1:
        raise TelemetryError(f"column {name!r} must be 1-D, got shape {arr.shape}")
    return arr


class TelemetryStore:
    """Append-only columnar store rooted at one directory.

    Single-writer, many-reader: appends are serialized by an in-process
    lock and atomic on disk; concurrent *processes* must coordinate
    externally (the shipped pipelines ingest from one process — pool
    workers ship rows back rather than writing segments themselves).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._manifest = self._load_manifest()

    # -- manifest -------------------------------------------------------
    @property
    def _manifest_path(self) -> pathlib.Path:
        return self.root / "manifest.json"

    def _load_manifest(self) -> Dict[str, Any]:
        path = self._manifest_path
        if not path.exists():
            return {"schema": SCHEMA, "version": 0, "segments": []}
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise TelemetryError(f"unreadable manifest {path}: {exc}") from None
        if not isinstance(loaded, dict) or loaded.get("schema") != SCHEMA:
            tag = loaded.get("schema") if isinstance(loaded, dict) else None
            raise TelemetryError(
                f"{path}: schema tag {tag!r} is not {SCHEMA!r}; refusing to "
                "append to a store this code does not understand"
            )
        return loaded

    def _write_manifest(self) -> None:
        """Replace the manifest atomically (same-directory temp file)."""
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".manifest.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(self._manifest, indent=2, sort_keys=True) + "\n")
            os.replace(tmp_name, self._manifest_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- appending ------------------------------------------------------
    def append(
        self,
        dataset: str,
        columns: Mapping[str, Sequence[Any]],
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Append one segment of equal-length columns; returns its id.

        The first segment of a dataset fixes its column set; later
        appends must carry exactly the same columns (dtypes may widen,
        e.g. longer strings) so scans always line up.
        """
        if not _NAME_RE.match(dataset):
            raise TelemetryError(f"invalid dataset name {dataset!r}")
        if not columns:
            raise TelemetryError("a segment needs at least one column")
        arrays: Dict[str, np.ndarray] = {}
        rows: Optional[int] = None
        for name in sorted(columns):
            if not _NAME_RE.match(name):
                raise TelemetryError(f"invalid column name {name!r}")
            arr = _as_column(name, columns[name])
            if rows is None:
                rows = len(arr)
            elif len(arr) != rows:
                raise TelemetryError(
                    f"ragged segment: column {name!r} has {len(arr)} rows, "
                    f"expected {rows}"
                )
            arrays[name] = arr
        assert rows is not None
        existing = self.columns(dataset)
        if existing is not None and set(existing) != set(arrays):
            raise TelemetryError(
                f"dataset {dataset!r} has columns {sorted(existing)}, "
                f"segment carries {sorted(arrays)}"
            )

        with self._lock:
            version = int(self._manifest["version"]) + 1
            segment_id = f"seg-{version:06d}"
            final_dir = self.root / segment_id
            tmp_dir = self.root / f"tmp-{segment_id}"
            tmp_dir.mkdir()
            try:
                for name, arr in arrays.items():
                    with open(tmp_dir / f"{name}.npy", "wb") as fh:
                        np.save(fh, arr, allow_pickle=False)
                os.replace(tmp_dir, final_dir)
            except BaseException:
                for leftover in tmp_dir.glob("*.npy") if tmp_dir.exists() else ():
                    leftover.unlink()
                if tmp_dir.exists():
                    tmp_dir.rmdir()
                raise
            self._manifest["version"] = version
            self._manifest["segments"].append(
                {
                    "id": segment_id,
                    "dataset": dataset,
                    "rows": rows,
                    "columns": {n: arrays[n].dtype.str for n in sorted(arrays)},
                    "meta": dict(meta or {}),
                }
            )
            self._write_manifest()
        return segment_id

    # -- reading --------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone manifest version (== number of appends ever made)."""
        return int(self._manifest["version"])

    def datasets(self) -> List[str]:
        """Sorted names of every dataset with at least one segment."""
        return sorted({s["dataset"] for s in self._manifest["segments"]})

    def segments(self, dataset: Optional[str] = None) -> List[Dict[str, Any]]:
        """Manifest entries in append order, optionally per dataset."""
        entries = list(self._manifest["segments"])
        if dataset is not None:
            entries = [s for s in entries if s["dataset"] == dataset]
        return entries

    def rows(self, dataset: str) -> int:
        """Total row count of one dataset (0 when absent)."""
        return sum(int(s["rows"]) for s in self.segments(dataset))

    def columns(self, dataset: str) -> Optional[List[str]]:
        """Sorted column names of a dataset, or None when it is empty."""
        for entry in self._manifest["segments"]:
            if entry["dataset"] == dataset:
                return sorted(entry["columns"])
        return None

    def read_segment(
        self, segment_id: str, columns: Optional[Sequence[str]] = None
    ) -> Dict[str, np.ndarray]:
        """One segment's columns as arrays (all of them by default)."""
        entry = next(
            (s for s in self._manifest["segments"] if s["id"] == segment_id), None
        )
        if entry is None:
            raise TelemetryError(f"no segment {segment_id!r} in {self.root}")
        wanted = sorted(entry["columns"]) if columns is None else list(columns)
        out: Dict[str, np.ndarray] = {}
        for name in wanted:
            if name not in entry["columns"]:
                raise TelemetryError(
                    f"segment {segment_id} has no column {name!r} "
                    f"(has {sorted(entry['columns'])})"
                )
            out[name] = np.load(self.root / segment_id / f"{name}.npy", allow_pickle=False)
        return out

    def scan(
        self, dataset: str, columns: Optional[Sequence[str]] = None
    ) -> Dict[str, np.ndarray]:
        """Whole-dataset columnar scan: concatenated column arrays.

        Rows come back in append order (segment order, then row order
        within each segment) — the order every adapter writes
        deterministically.  An extra ``_segment`` column is NOT
        synthesized here; callers that need per-append grouping (the
        drift monitor) read ``segment_index`` columns the adapters
        write explicitly.
        """
        entries = self.segments(dataset)
        if not entries:
            raise TelemetryError(
                f"store {self.root} has no dataset {dataset!r} "
                f"(has {self.datasets() or 'none'})"
            )
        wanted = sorted(entries[0]["columns"]) if columns is None else list(columns)
        parts: Dict[str, List[np.ndarray]] = {name: [] for name in wanted}
        for entry in entries:
            segment = self.read_segment(entry["id"], wanted)
            for name in wanted:
                parts[name].append(segment[name])
        return {name: np.concatenate(chunks) for name, chunks in parts.items()}

    # -- integrity ------------------------------------------------------
    def content_digest(self) -> str:
        """SHA-256 over every segment's column bytes, in manifest order.

        Two stores hold bit-identical telemetry iff their digests match
        — the oracle the serial-vs-pooled ingestion tests compare.
        """
        digest = hashlib.sha256()
        for entry in self._manifest["segments"]:
            digest.update(entry["dataset"].encode("utf-8"))
            digest.update(str(entry["rows"]).encode("utf-8"))
            for name in sorted(entry["columns"]):
                digest.update(name.encode("utf-8"))
                digest.update((self.root / entry["id"] / f"{name}.npy").read_bytes())
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self._manifest["segments"])
