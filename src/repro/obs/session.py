"""The ``obs=`` hook: one observability session across many runs.

An :class:`ObsSession` is handed to
:func:`repro.opal.parallel.run_parallel_opal`,
:class:`repro.experiments.ExperimentRunner` or
:func:`repro.experiments.run_campaign`; every simulated run absorbed
into it contributes its spans, flow edges, metrics and measured
breakdown, so a whole factorial campaign exports as **one** merged
trace plus one measured-vs-model report.

Sessions also serialize to a plain-JSON payload
(:meth:`ObsSession.to_payload` / :meth:`ObsSession.absorb_payload`), so
process-pool workers can capture observability locally and ship it back
to the parent — the same path the parallel campaign executor uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..core.breakdown import TimeBreakdown
from ..core.parameters import ApplicationParams, ModelPlatformParams
from .export import (
    PathLike,
    _flow_line,
    _span_line,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import MetricsRegistry
from .report import RunRow, residual_report
from .spans import FlowEdge, Span, SpanTracer

if TYPE_CHECKING:
    from ..netsim.cluster import Cluster
    from ..opal.parallel import OpalRunResult


def run_label(
    platform_name: str,
    app: ApplicationParams,
    seed: int,
    rep: Optional[int] = None,
) -> str:
    """Deterministic display label for one simulated run."""
    cutoff = "none" if app.cutoff is None else f"{app.cutoff:g}"
    label = (
        f"{platform_name}/{app.molecule.name}"
        f"/p{app.servers}/u{app.update_interval}/cut{cutoff}"
        f"/s{app.steps}/seed{seed}"
    )
    if rep is not None:
        label += f"/r{rep}"
    return label


def app_to_dict(app: ApplicationParams) -> Dict[str, Any]:
    """ApplicationParams as plain JSON-able data."""
    mol = app.molecule
    return {
        "molecule": {
            "name": mol.name,
            "protein_atoms": mol.protein_atoms,
            "waters": mol.waters,
            "density": mol.density,
            "description": mol.description,
        },
        "steps": app.steps,
        "servers": app.servers,
        "update_interval": app.update_interval,
        "cutoff": app.cutoff,
        "alpha": app.alpha,
    }


def app_from_dict(data: Dict[str, Any]) -> ApplicationParams:
    """Rebuild ApplicationParams from :func:`app_to_dict` output."""
    from ..opal.complexes import ComplexSpec

    mol = data["molecule"]
    return ApplicationParams(
        molecule=ComplexSpec(
            name=mol["name"],
            protein_atoms=mol["protein_atoms"],
            waters=mol["waters"],
            density=mol["density"],
            description=mol.get("description", ""),
        ),
        steps=data["steps"],
        servers=data["servers"],
        update_interval=data["update_interval"],
        cutoff=data["cutoff"],
        alpha=data["alpha"],
    )


class ObsSession:
    """Collects observability across runs into one merged view."""

    def __init__(self, label: str = "obs") -> None:
        self.label = label
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()
        #: (run label, app params, measured breakdown) per absorbed run
        self.run_rows: List[RunRow] = []
        self._model_params: Optional[ModelPlatformParams] = None

    # -- absorbing runs -------------------------------------------------
    @property
    def runs(self) -> List[str]:
        """Labels of every absorbed run, in absorption order."""
        return [run for run, _app, _bd in self.run_rows]

    def absorb_opal_run(
        self,
        run: str,
        cluster: "Cluster",
        result: "OpalRunResult",
    ) -> None:
        """Fold one finished simulated Opal run into the session.

        Called by :func:`~repro.opal.parallel.run_parallel_opal` while
        the cluster is still alive; copies the trace, harvests the
        engine / barrier / Sciddle / hpm metrics and keeps the measured
        breakdown for the model join.
        """
        self.tracer.absorb(cluster.tracer, run=run)
        engine = cluster.engine
        self.metrics.counter("netsim.events_executed").inc(engine.events_executed)
        self.metrics.counter("netsim.events_scheduled").inc(engine.events_scheduled)
        self.metrics.histogram("netsim.max_queue_depth").observe(
            engine.max_queue_depth
        )
        self.metrics.counter("netsim.barrier_arrivals").inc(
            cluster.barriers.arrivals
        )
        self.metrics.counter("netsim.barriers_released").inc(
            cluster.barriers.releases
        )
        # per-cluster registry fed live by the Sciddle runtime
        self.metrics.merge_payload(cluster.metrics.as_dict())
        self.metrics.counter("hpm.flops_counted").inc(result.flops_counted)
        self.metrics.counter("opal.barriers_executed").inc(result.barriers_executed)
        self.metrics.histogram("opal.wall_time").observe(result.wall_time)
        self.metrics.counter("opal.runs").inc()
        self.run_rows.append((run, result.app, result.breakdown))

    def absorb_cache_stats(self, stats: Any) -> None:
        """Snapshot result-cache counters (idempotent gauge set)."""
        if stats is None:
            return
        for key, value in stats.as_dict().items():
            self.metrics.gauge(f"experiments.cache_{key}").set(float(value))

    def observe_cell(self, wall_mean: float) -> None:
        """Record one finished design cell's mean wall time."""
        self.metrics.counter("experiments.cells").inc()
        self.metrics.histogram("experiments.cell_wall_time").observe(wall_mean)

    # -- cross-process transport ----------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The whole session as plain JSON-able data (pickles cheaply)."""
        return {
            "label": self.label,
            "spans": [_span_line(s) for s in self.tracer.spans],
            "flows": [_flow_line(f) for f in self.tracer.flows],
            "metrics": self.metrics.as_dict(),
            "rows": [
                {
                    "run": run,
                    "app": app_to_dict(app),
                    "breakdown": breakdown.as_dict(),
                }
                for run, app, breakdown in self.run_rows
            ],
        }

    def absorb_payload(self, payload: Optional[Dict[str, Any]]) -> None:
        """Fold a :meth:`to_payload` dict (e.g. from a pool worker) in."""
        if not payload:
            return
        donor = SpanTracer()
        for line in payload.get("spans", []):
            donor.spans.append(
                Span(
                    proc=line["proc"],
                    category=line["category"],
                    start=line["start"],
                    end=line["end"],
                    detail=line.get("detail", ""),
                    name=line.get("name", ""),
                    sid=line.get("sid", 0),
                    parent=line.get("parent"),
                    run=line.get("run", ""),
                )
            )
        for line in payload.get("flows", []):
            donor.flows.append(
                FlowEdge(
                    fid=line["fid"],
                    src_proc=line["src_proc"],
                    src_time=line["src_time"],
                    dst_proc=line["dst_proc"],
                    dst_time=line["dst_time"],
                    kind=line.get("kind", "msg"),
                    nbytes=line.get("nbytes", 0.0),
                    tag=line.get("tag"),
                    run=line.get("run", ""),
                )
            )
        self.tracer.absorb(donor)
        self.metrics.merge_payload(payload.get("metrics", {}))
        for row in payload.get("rows", []):
            self.run_rows.append(
                (
                    row["run"],
                    app_from_dict(row["app"]),
                    TimeBreakdown(**row["breakdown"]),
                )
            )

    # -- model join -----------------------------------------------------
    def set_model_params(self, params: ModelPlatformParams) -> None:
        """Attach the (calibrated) coefficients the report joins against."""
        self._model_params = params

    @property
    def model_params(self) -> Optional[ModelPlatformParams]:
        """The attached model coefficients, if any."""
        return self._model_params

    def model_report(
        self, threshold: float = 0.10, per_run: bool = True
    ) -> str:
        """Measured-vs-model residual report over every absorbed run."""
        if self._model_params is None:
            return "(no model parameters attached; call set_model_params first)"
        if not self.run_rows:
            return "(no runs absorbed)"
        return residual_report(
            self.run_rows, self._model_params, threshold=threshold, per_run=per_run
        )

    # -- export ---------------------------------------------------------
    def export_chrome(self, path: PathLike) -> Dict[str, Any]:
        """Write the merged Chrome trace-event JSON file."""
        return write_chrome_trace(self.tracer, path, metrics=self.metrics)

    def export_jsonl(self, path: PathLike) -> int:
        """Write the merged lossless JSONL dump."""
        return write_jsonl(self.tracer, path, metrics=self.metrics)

    def summary(self) -> str:
        """A short human-readable session overview."""
        lo, hi = self.tracer.span_bounds()
        lines = [
            f"obs session {self.label!r}: {len(self.run_rows)} run(s), "
            f"{len(self.tracer.spans)} span(s), "
            f"{len(self.tracer.flows)} flow edge(s), "
            f"makespan {hi - lo:.6f} s",
            "category totals [s]:",
        ]
        for category, seconds in sorted(self.tracer.by_category().items()):
            lines.append(f"  {category:<20s} {seconds:12.6f}")
        lines.append("response-variable rollup [s]:")
        for variable, seconds in sorted(self.tracer.by_response_variable().items()):
            lines.append(f"  {variable:<20s} {seconds:12.6f}")
        metrics = self.metrics.render()
        if metrics:
            lines.append("metrics:")
            lines.append(metrics)
        return "\n".join(lines)
