"""Metrics registry: counters, gauges and histograms.

Deliberately simulation-friendly: nothing here reads a wall clock or
any other ambient state — values are pushed by the instrumented
components (event engine, Sciddle runtime, hpm accountants, experiment
cache), so identical runs produce identical metric dumps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

MetricValue = Union[int, float]


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> Dict[str, MetricValue]:
        """JSON-able snapshot."""
        return {"value": self.value}


@dataclass
class Gauge:
    """Last-set value with running extrema."""

    name: str
    value: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    samples: int = 0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.samples += 1

    def as_dict(self) -> Dict[str, MetricValue]:
        """JSON-able snapshot (inf extrema of an unset gauge -> 0)."""
        if self.samples == 0:
            return {"value": 0.0, "min": 0.0, "max": 0.0, "samples": 0}
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }


@dataclass
class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, MetricValue]:
        """JSON-able snapshot."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


@dataclass
class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create access."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, Dict[str, MetricValue]]]:
        """Every metric as plain JSON-able data, sorted by name."""
        return {
            "counters": {n: self.counters[n].as_dict() for n in sorted(self.counters)},
            "gauges": {n: self.gauges[n].as_dict() for n in sorted(self.gauges)},
            "histograms": {
                n: self.histograms[n].as_dict() for n in sorted(self.histograms)
            },
        }

    def merge_payload(
        self, payload: Dict[str, Dict[str, Dict[str, MetricValue]]]
    ) -> None:
        """Fold an :meth:`as_dict` payload into this registry.

        Counters and histograms add; gauges keep the widest extrema and
        the most recently merged value.
        """
        for name, data in payload.get("counters", {}).items():
            self.counter(name).inc(float(data["value"]))
        for name, data in payload.get("gauges", {}).items():
            gauge = self.gauge(name)
            if int(data.get("samples", 0)) > 0:
                gauge.value = float(data["value"])
                gauge.min = min(gauge.min, float(data["min"]))
                gauge.max = max(gauge.max, float(data["max"]))
                gauge.samples += int(data["samples"])
        for name, data in payload.get("histograms", {}).items():
            hist = self.histogram(name)
            count = int(data.get("count", 0))
            if count > 0:
                hist.count += count
                hist.total += float(data["total"])
                hist.min = min(hist.min, float(data["min"]))
                hist.max = max(hist.max, float(data["max"]))

    def render(self, indent: str = "  ") -> str:
        """A sorted human-readable dump of every metric."""
        lines: List[str] = []
        for name in sorted(self.counters):
            lines.append(f"{indent}{name} = {self.counters[name].value:g}")
        for name in sorted(self.gauges):
            g = self.gauges[name]
            if g.samples:
                lines.append(
                    f"{indent}{name} = {g.value:g} (min {g.min:g}, max {g.max:g})"
                )
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"{indent}{name}: n={h.count} mean={h.mean:g} "
                f"min={0.0 if not h.count else h.min:g} "
                f"max={0.0 if not h.count else h.max:g}"
            )
        return "\n".join(lines)


def merge_registries(
    into: MetricsRegistry, source: Optional[MetricsRegistry]
) -> MetricsRegistry:
    """Fold ``source`` (if any) into ``into``; returns ``into``."""
    if source is not None:
        into.merge_payload(source.as_dict())
    return into
