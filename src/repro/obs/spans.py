"""Structured spans and causal flow edges.

A **span** is one attributed interval of simulated time on one process:
a category (the raw tracer vocabulary — ``compute``, ``send``,
``recv_wait``, ``sync``, ``idle``, or an accountant phase such as
``comm:call_nbi``), an optional display name, and an optional parent
span for hierarchy.  Spans are either *recorded* complete (start and
end known, the flat :meth:`SpanTracer.record` path the simulator
kernel uses) or *bracketed* live with :meth:`SpanTracer.begin` /
:meth:`SpanTracer.end`, which nests: a span recorded while a bracket
is open becomes its child.

A **flow edge** links a send on one process to the matching receive on
another — the causal arrow the paper's cross-process accounting needs
to reconstruct critical paths through the middleware.

This module is dependency-free (stdlib only) so that
:mod:`repro.netsim` can build its tracer on it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: The model's response variables (eq. 2-10): every raw span category
#: rolls up into exactly one of these (see :func:`response_variable`).
MODEL_CATEGORIES = ("par_comp", "seq_comp", "comm", "sync", "idle")

#: Raw category -> response variable.  Prefix rules are applied after
#: exact matches; anything unmatched reports as None (unattributed).
_EXACT_RESPONSE = {
    # the response variables themselves are fixed points, so a trace
    # whose categories are already rolled up summarizes unchanged
    "par_comp": "par_comp",
    "comm": "comm",
    "seq_comp": "seq_comp",
    "sync": "sync",
    "idle": "idle",
    "compute": "par_comp",
    "cpu_wait": "idle",
    "recv_wait": "idle",
    "sleep": "idle",
    "send": "comm",
    "recv": "comm",
}
_PREFIX_RESPONSE = (
    ("par:", "par_comp"),
    ("comm:", "comm"),
    ("service:", "par_comp"),
    ("reply:", "comm"),
    ("seq", "seq_comp"),
)


def response_variable(category: str) -> Optional[str]:
    """The model response variable a raw span category rolls up into.

    Returns ``None`` for categories outside the model vocabulary (they
    stay visible in traces but are excluded from the model join).
    """
    exact = _EXACT_RESPONSE.get(category)
    if exact is not None:
        return exact
    for prefix, variable in _PREFIX_RESPONSE:
        if category.startswith(prefix):
            return variable
    return None


@dataclass(frozen=True)
class Span:
    """One attributed interval of simulated time on one process.

    Field order keeps positional compatibility with the original
    ``TraceRecord(proc, category, start, end, detail)``.
    """

    proc: str
    category: str
    start: float
    end: float
    detail: str = ""
    name: str = ""
    #: span id, unique within one tracer (0 = unassigned)
    sid: int = 0
    #: sid of the enclosing span, or None at top level
    parent: Optional[int] = None
    #: run label for merged multi-run traces ("" = single run)
    run: str = ""

    @property
    def duration(self) -> float:
        """end - start, seconds."""
        return self.end - self.start

    @property
    def label(self) -> str:
        """Display name (falls back to the category)."""
        return self.name or self.category


@dataclass(frozen=True)
class FlowEdge:
    """A causal arrow from a send on one process to its receive."""

    fid: int
    src_proc: str
    src_time: float
    dst_proc: str
    dst_time: float
    kind: str = "msg"
    nbytes: float = 0.0
    tag: Optional[int] = None
    run: str = ""


@dataclass
class _OpenSpan:
    """Book-keeping for one live begin()/end() bracket."""

    sid: int
    category: str
    start: float
    name: str
    detail: str
    parent: Optional[int]


class SpanTracer:
    """Accumulates spans and flow edges for one (or many merged) runs.

    ``clock`` is an optional zero-argument callable returning current
    simulated time; when set, :meth:`begin`/:meth:`end`/:meth:`scope`
    may omit their explicit ``time`` argument.
    """

    def __init__(
        self, enabled: bool = True, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.spans: List[Span] = []
        self.flows: List[FlowEdge] = []
        self._open: Dict[str, List[_OpenSpan]] = {}
        self._next_sid = 1

    # -- recording ------------------------------------------------------
    def _alloc_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _current_parent(self, proc: str) -> Optional[int]:
        stack = self._open.get(proc)
        return stack[-1].sid if stack else None

    def record(
        self,
        proc: str,
        category: str,
        start: float,
        end: float,
        detail: str = "",
        name: str = "",
    ) -> Optional[Span]:
        """Append one complete span (no-op when disabled).

        A span recorded while a :meth:`begin` bracket is open on the
        same process becomes that bracket's child.
        """
        if not self.enabled:
            return None
        if end < start:
            raise ValueError(f"trace interval ends before it starts: {start}..{end}")
        span = Span(
            proc,
            category,
            start,
            end,
            detail=detail,
            name=name,
            sid=self._alloc_sid(),
            parent=self._current_parent(proc),
        )
        self.spans.append(span)
        return span

    def begin(
        self,
        proc: str,
        category: str,
        time: Optional[float] = None,
        name: str = "",
        detail: str = "",
    ) -> int:
        """Open a nested span on ``proc``; returns its span id."""
        if not self.enabled:
            return 0
        if time is None:
            if self.clock is None:
                raise ValueError("begin() needs time= when the tracer has no clock")
            time = self.clock()
        sid = self._alloc_sid()
        stack = self._open.setdefault(proc, [])
        stack.append(
            _OpenSpan(
                sid=sid,
                category=category,
                start=time,
                name=name,
                detail=detail,
                parent=stack[-1].sid if stack else None,
            )
        )
        return sid

    def end(
        self,
        proc: str,
        time: Optional[float] = None,
        category: Optional[str] = None,
    ) -> Optional[Span]:
        """Close the innermost open span on ``proc``."""
        if not self.enabled:
            return None
        stack = self._open.get(proc)
        if not stack:
            raise ValueError(f"no span is open on process {proc!r}")
        if time is None:
            if self.clock is None:
                raise ValueError("end() needs time= when the tracer has no clock")
            time = self.clock()
        top = stack[-1]
        if category is not None and category != top.category:
            raise ValueError(
                f"closing span {category!r} on {proc!r} but {top.category!r} is open"
            )
        if time < top.start:
            raise ValueError(f"span ends before it starts: {top.start}..{time}")
        stack.pop()
        span = Span(
            proc,
            top.category,
            top.start,
            time,
            detail=top.detail,
            name=top.name,
            sid=top.sid,
            parent=top.parent,
        )
        self.spans.append(span)
        return span

    def scope(
        self, proc: str, category: str, name: str = "", detail: str = ""
    ) -> "_SpanScope":
        """Context manager bracketing a span via the tracer's clock."""
        return _SpanScope(self, proc, category, name, detail)

    def open_spans(self, proc: Optional[str] = None) -> int:
        """Number of spans still open (unbalanced begin() brackets)."""
        if proc is not None:
            return len(self._open.get(proc, ()))
        return sum(len(stack) for stack in self._open.values())

    # -- flow edges -----------------------------------------------------
    def flow(
        self,
        fid: int,
        src_proc: str,
        src_time: float,
        dst_proc: str,
        dst_time: float,
        kind: str = "msg",
        nbytes: float = 0.0,
        tag: Optional[int] = None,
    ) -> Optional[FlowEdge]:
        """Record one causal send->recv edge (no-op when disabled)."""
        if not self.enabled:
            return None
        if dst_time < src_time:
            raise ValueError(
                f"flow arrives before it departs: {src_time}..{dst_time}"
            )
        edge = FlowEdge(fid, src_proc, src_time, dst_proc, dst_time, kind, nbytes, tag)
        self.flows.append(edge)
        return edge

    # -- aggregation ----------------------------------------------------
    def by_category(self) -> Dict[str, float]:
        """Total duration per category across all processes and runs."""
        out: Dict[str, float] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return out

    def by_process(self) -> Dict[str, Dict[str, float]]:
        """Per-process totals per category."""
        out: Dict[str, Dict[str, float]] = {}
        for s in self.spans:
            row = out.setdefault(s.proc, {})
            row[s.category] = row.get(s.category, 0.0) + s.duration
        return out

    def by_response_variable(self) -> Dict[str, float]:
        """Category totals rolled up into the model's response variables.

        Categories outside the model vocabulary accumulate under
        ``"(other)"`` so nothing silently disappears from a summary.
        """
        out: Dict[str, float] = {}
        for category, seconds in self.by_category().items():
            variable = response_variable(category) or "(other)"
            out[variable] = out.get(variable, 0.0) + seconds
        return out

    def span_bounds(self) -> Tuple[float, float]:
        """(earliest start, latest end) over all spans."""
        if not self.spans:
            return (0.0, 0.0)
        return (
            min(s.start for s in self.spans),
            max(s.end for s in self.spans),
        )

    def procs(self) -> List[str]:
        """Sorted (run, proc)-unique process names."""
        return sorted({s.proc for s in self.spans})

    def runs(self) -> List[str]:
        """Distinct run labels, in first-appearance order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.run, None)
        for f in self.flows:
            seen.setdefault(f.run, None)
        return list(seen)

    def children(self, sid: int) -> Iterator[Span]:
        """Spans whose parent is ``sid``."""
        return (s for s in self.spans if s.parent == sid)

    # -- merging --------------------------------------------------------
    def absorb(self, other: "SpanTracer", run: str = "") -> None:
        """Copy another tracer's spans and flows into this one.

        Span ids are re-allocated (parent links preserved); every copied
        span/flow is stamped with ``run`` so multi-run traces stay
        separable.  Open brackets on ``other`` are not copied.
        """
        remap: Dict[int, int] = {}
        for s in other.spans:
            remap[s.sid] = self._alloc_sid()
        for s in other.spans:
            parent = remap.get(s.parent) if s.parent is not None else None
            self.spans.append(
                replace(s, sid=remap[s.sid], parent=parent, run=run or s.run)
            )
        for f in other.flows:
            self.flows.append(replace(f, run=run or f.run))


@dataclass
class _SpanScope:
    """``with tracer.scope(...):`` — begin on entry, end on exit."""

    tracer: SpanTracer
    proc: str
    category: str
    name: str = ""
    detail: str = ""
    sid: int = field(default=0, init=False)

    def __enter__(self) -> "_SpanScope":
        self.sid = self.tracer.begin(
            self.proc, self.category, name=self.name, detail=self.detail
        )
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.tracer.enabled:
            self.tracer.end(self.proc, category=self.category)
