"""Predicate/projection/aggregation engine over the telemetry store.

A deliberately small columnar query layer shared by ``python -m
repro.obs query``, the SLO/drift monitors and the tests:

* **where** — a conjunction of comparisons, ``servers>=4 and
  platform==j90``.  ``and`` and ``,`` both separate clauses; operators
  are ``== != >= <= > <``; values parse as int, then float, then
  (optionally quoted) string; ``none``/``nan`` match missing float
  cells (NaN).  A ``dataset.`` prefix on a column (``cell.servers``)
  is stripped, so query text can stay readable next to the dataset
  name.
* **agg** — a list of calls, ``p99(total_s), mean(total_s), count()``.
  Functions: ``count sum mean min max std p50 p90 p95 p99``.
* **by** — optional group-by column: aggregates per distinct value.

Quantiles use :func:`percentile` — the *same* nearest-rank rule the
serve layer reports (``repro.serve.service.latency_quantiles`` imports
it), so an aggregate over ingested per-request records reproduces the
service's own p50/p99 bit for bit, not merely approximately.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TelemetryError
from .store import TelemetryStore


def percentile(values: Sequence[float], frac: float) -> float:
    """Nearest-rank quantile: ``sorted[min(n-1, int(round(frac*(n-1))))]``.

    The single quantile definition of the repo — the serve layer's
    latency report and every store aggregate call this, which is what
    makes "query p99 == served p99" an exact (1e-9) contract instead of
    an interpolation-method lottery.  Returns 0.0 on empty input.
    """
    n = len(values)
    if n == 0:
        return 0.0
    ordered = np.sort(np.asarray(values, dtype=float))
    last = n - 1
    return float(ordered[min(last, int(round(frac * last)))])


# ----------------------------------------------------------------------
# where clauses
# ----------------------------------------------------------------------
_OPS = ("==", "!=", ">=", "<=", ">", "<")

_CLAUSE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_.]*)\s*(==|!=|>=|<=|>|<)\s*(.+?)\s*$"
)


@dataclass(frozen=True)
class Clause:
    """One parsed comparison: column, operator, literal."""

    column: str
    op: str
    value: Any


def _parse_value(text: str) -> Any:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    if text.lower() in ("none", "null", "nan"):
        return float("nan")
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_where(text: Optional[str]) -> List[Clause]:
    """Parse a conjunction; empty/None text parses to no clauses."""
    if not text or not text.strip():
        return []
    clauses: List[Clause] = []
    for part in re.split(r"\s+and\s+|,", text):
        if not part.strip():
            continue
        m = _CLAUSE_RE.match(part)
        if m is None:
            raise TelemetryError(
                f"unparseable where clause {part.strip()!r} "
                f"(expected: column OP value with OP in {' '.join(_OPS)})"
            )
        column, op, raw = m.groups()
        clauses.append(Clause(column=column, op=op, value=_parse_value(raw)))
    return clauses


def _resolve_column(name: str, table: Dict[str, np.ndarray], dataset: str) -> str:
    """Strip an optional dataset prefix; validate against the table."""
    candidate = name
    if "." in name:
        prefix, _, rest = name.partition(".")
        if prefix in (dataset, dataset.rstrip("s")):
            candidate = rest
    if candidate not in table:
        raise TelemetryError(
            f"no column {name!r} in dataset {dataset!r} "
            f"(has {sorted(table)})"
        )
    return candidate


def apply_where(
    table: Dict[str, np.ndarray], clauses: Sequence[Clause], dataset: str = ""
) -> np.ndarray:
    """Boolean mask selecting the rows every clause admits."""
    rows = len(next(iter(table.values()))) if table else 0
    mask = np.ones(rows, dtype=bool)
    for clause in clauses:
        column = table[_resolve_column(clause.column, table, dataset)]
        value = clause.value
        if isinstance(value, float) and np.isnan(value):
            if column.dtype.kind not in "fc":
                raise TelemetryError(
                    f"clause {clause.column} {clause.op} none needs a float "
                    f"column, got {column.dtype}"
                )
            hit = np.isnan(column)
            mask &= hit if clause.op == "==" else ~hit
            continue
        if column.dtype.kind == "U":
            value = str(value)
        if clause.op == "==":
            mask &= column == value
        elif clause.op == "!=":
            mask &= column != value
        elif clause.op == ">=":
            mask &= column >= value
        elif clause.op == "<=":
            mask &= column <= value
        elif clause.op == ">":
            mask &= column > value
        else:
            mask &= column < value
    return mask


# ----------------------------------------------------------------------
# aggregates
# ----------------------------------------------------------------------
_AGG_RE = re.compile(r"^\s*([a-z][a-z0-9]*)\s*\(\s*([A-Za-z0-9_.]*)\s*\)\s*$")

_AGG_FUNCS = ("count", "sum", "mean", "min", "max", "std", "p50", "p90", "p95", "p99")


@dataclass(frozen=True)
class Agg:
    """One parsed aggregate call, e.g. ``p99(total_s)``."""

    func: str
    column: str  # empty for count()

    @property
    def label(self) -> str:
        """The call as written, the key in result aggregates."""
        return f"{self.func}({self.column})"


def parse_aggs(text: Optional[str]) -> List[Agg]:
    """Parse a comma-separated aggregate list."""
    if not text or not text.strip():
        return []
    out: List[Agg] = []
    for part in _split_calls(text):
        m = _AGG_RE.match(part)
        if m is None:
            raise TelemetryError(
                f"unparseable aggregate {part.strip()!r} "
                f"(expected func(column) with func in {' '.join(_AGG_FUNCS)})"
            )
        func, column = m.groups()
        if func not in _AGG_FUNCS:
            raise TelemetryError(
                f"unknown aggregate function {func!r} (known: {' '.join(_AGG_FUNCS)})"
            )
        if func != "count" and not column:
            raise TelemetryError(f"{func}() needs a column argument")
        out.append(Agg(func=func, column=column))
    return out


def _split_calls(text: str) -> List[str]:
    """Split on commas *between* calls (commas inside parens stay)."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            if current.strip():
                parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return parts


def _evaluate_agg(agg: Agg, table: Dict[str, np.ndarray], dataset: str) -> float:
    if agg.func == "count":
        rows = len(next(iter(table.values()))) if table else 0
        return float(rows)
    column = table[_resolve_column(agg.column, table, dataset)]
    if column.dtype.kind == "U":
        raise TelemetryError(f"{agg.label}: column {agg.column!r} is not numeric")
    values = column.astype(float)
    if agg.func == "sum":
        return float(np.sum(values)) if len(values) else 0.0
    if len(values) == 0:
        return 0.0
    if agg.func == "mean":
        return float(np.mean(values))
    if agg.func == "min":
        return float(np.min(values))
    if agg.func == "max":
        return float(np.max(values))
    if agg.func == "std":
        return float(np.std(values))
    return percentile(values, {"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99}[agg.func])


# ----------------------------------------------------------------------
# the query
# ----------------------------------------------------------------------
@dataclass
class QueryResult:
    """Outcome of one :func:`run_query` call (JSON-able via as_dict)."""

    dataset: str
    matched: int
    #: flat aggregates (no group-by), label -> value
    aggregates: Dict[str, float] = field(default_factory=dict)
    #: group-by results: (group value, label -> value) in sorted order
    groups: List[Tuple[str, Dict[str, float]]] = field(default_factory=list)
    #: projected rows when no aggregate was requested
    table: Dict[str, List[Any]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable result payload."""
        out: Dict[str, Any] = {"dataset": self.dataset, "matched": self.matched}
        if self.aggregates:
            out["aggregates"] = dict(self.aggregates)
        if self.groups:
            out["groups"] = [
                {"key": key, "aggregates": dict(aggs)} for key, aggs in self.groups
            ]
        if self.table:
            out["rows"] = self.table
        return out

    def render(self) -> str:
        """Human-readable text block for the CLI."""
        lines = [f"dataset: {self.dataset}  matched rows: {self.matched}"]
        for label, value in self.aggregates.items():
            lines.append(f"  {label:<24s} {value:.9g}")
        for key, aggs in self.groups:
            lines.append(f"  {key}:")
            for label, value in aggs.items():
                lines.append(f"    {label:<22s} {value:.9g}")
        if self.table:
            names = list(self.table)
            lines.append("  " + "  ".join(f"{n:>14s}" for n in names))
            rows = len(self.table[names[0]])
            for i in range(rows):
                cells = []
                for n in names:
                    v = self.table[n][i]
                    cells.append(
                        f"{v:>14.6g}" if isinstance(v, float) else f"{str(v):>14s}"
                    )
                lines.append("  " + "  ".join(cells))
        return "\n".join(lines)


def run_query(
    store: TelemetryStore,
    dataset: str,
    where: Optional[str] = None,
    agg: Optional[str] = None,
    by: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> QueryResult:
    """Scan, filter, then aggregate or project one dataset."""
    table = store.scan(dataset)
    mask = apply_where(table, parse_where(where), dataset)
    filtered = {name: col[mask] for name, col in table.items()}
    matched = int(np.count_nonzero(mask))
    aggs = parse_aggs(agg)

    result = QueryResult(dataset=dataset, matched=matched)
    if aggs and by is not None:
        key_column = filtered[_resolve_column(by, filtered, dataset)]
        for key in np.unique(key_column):
            group = {n: c[key_column == key] for n, c in filtered.items()}
            result.groups.append(
                (str(key), {a.label: _evaluate_agg(a, group, dataset) for a in aggs})
            )
        return result
    if aggs:
        result.aggregates = {a.label: _evaluate_agg(a, filtered, dataset) for a in aggs}
        return result

    names = (
        [_resolve_column(n, filtered, dataset) for n in select]
        if select
        else sorted(filtered)
    )
    stop = matched if limit is None else min(matched, limit)
    result.table = {
        name: [
            float(v) if filtered[name].dtype.kind in "fc" else
            int(v) if filtered[name].dtype.kind in "iu" else str(v)
            for v in filtered[name][:stop]
        ]
        for name in names
    }
    return result
