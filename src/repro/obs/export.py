"""Trace exporters and loaders.

Two on-disk formats:

* **Chrome trace-event JSON** (``*.trace.json``) — the visualization
  format: open the file in `Perfetto <https://ui.perfetto.dev>`_ or
  ``chrome://tracing``.  One *process* per run label, one *thread* per
  simulated process; spans become ``"X"`` complete events, flow edges
  become ``"s"``/``"f"`` flow-event pairs.  Timestamps are **simulated
  time** in microseconds.
* **JSONL** (``*.trace.jsonl``) — the lossless interchange format: one
  JSON object per line (``span`` / ``flow`` / ``metrics`` records),
  round-trips through :func:`load_jsonl` exactly.

Both are plain-stdlib; the loaders never execute trace content.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry
from .spans import FlowEdge, Span, SpanTracer

PathLike = Union[str, pathlib.Path]

#: JSONL schema marker; bump when the line layout changes.
JSONL_VERSION = 1

#: Simulated seconds -> Chrome trace microseconds.
_US = 1e6


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _track_ids(tracer: SpanTracer) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """(run, proc) -> (pid, tid): one pid per run, one tid per proc."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    out: Dict[Tuple[str, str], Tuple[int, int]] = {}
    keys = {(s.run, s.proc) for s in tracer.spans}
    keys |= {(f.run, f.src_proc) for f in tracer.flows}
    keys |= {(f.run, f.dst_proc) for f in tracer.flows}
    for run, proc in sorted(keys):
        pid = pids.setdefault(run, len(pids) + 1)
        tid = tids.setdefault((run, proc), sum(1 for k in tids if k[0] == run) + 1)
        out[(run, proc)] = (pid, tid)
    return out


def chrome_trace_events(tracer: SpanTracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one (possibly merged) tracer."""
    tracks = _track_ids(tracer)
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, str] = {}
    for (run, proc), (pid, tid) in tracks.items():
        if pid not in seen_pids:
            seen_pids[pid] = run
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": run or "run"},
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": proc},
            }
        )
    for span in tracer.spans:
        pid, tid = tracks[(span.run, span.proc)]
        event: Dict[str, Any] = {
            "name": span.label,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": pid,
            "tid": tid,
        }
        args: Dict[str, Any] = {}
        if span.detail:
            args["detail"] = span.detail
        if span.parent is not None:
            args["parent"] = span.parent
        if args:
            event["args"] = args
        events.append(event)
    for i, flow in enumerate(tracer.flows):
        fid = f"{flow.run}#{flow.fid}#{i}" if flow.run else f"{flow.fid}#{i}"
        pid, tid = tracks[(flow.run, flow.src_proc)]
        common = {"cat": "flow", "name": flow.kind, "id": fid}
        events.append(
            {**common, "ph": "s", "ts": flow.src_time * _US, "pid": pid, "tid": tid}
        )
        pid, tid = tracks[(flow.run, flow.dst_proc)]
        events.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "ts": flow.dst_time * _US,
                "pid": pid,
                "tid": tid,
                "args": {"nbytes": flow.nbytes, "tag": flow.tag},
            }
        )
    return events


def write_chrome_trace(
    tracer: SpanTracer,
    path: PathLike,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Write a Chrome trace-event JSON file; returns the document.

    The metrics registry (if given) rides along under
    ``otherData.metrics`` — ignored by viewers, preserved for tooling.
    """
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated",
        },
    }
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.as_dict()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return document


def read_chrome_trace(path: PathLike) -> Dict[str, Any]:
    """Load a Chrome trace-event JSON document (dict or bare list form)."""
    with open(path, encoding="utf-8") as fh:
        loaded = json.load(fh)
    if isinstance(loaded, list):  # the bare traceEvents array form is legal
        return {"traceEvents": loaded}
    return loaded


def read_chrome_totals(path: PathLike) -> Dict[str, float]:
    """Per-category duration totals [s] recomputed from an exported file.

    The independent reduction the round-trip tests compare against
    :meth:`SpanTracer.by_category` — only ``"X"`` complete events
    contribute; metadata and flow events are skipped.
    """
    totals: Dict[str, float] = {}
    for event in read_chrome_trace(path).get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        category = event.get("cat", event.get("name", ""))
        totals[category] = totals.get(category, 0.0) + float(event["dur"]) / _US
    return totals


def count_flow_events(path: PathLike) -> int:
    """Number of complete flow edges (s/f pairs) in an exported file."""
    starts = 0
    ends = 0
    for event in read_chrome_trace(path).get("traceEvents", []):
        if event.get("ph") == "s":
            starts += 1
        elif event.get("ph") == "f":
            ends += 1
    return min(starts, ends)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _span_line(span: Span) -> Dict[str, Any]:
    return {
        "type": "span",
        "proc": span.proc,
        "category": span.category,
        "start": span.start,
        "end": span.end,
        "detail": span.detail,
        "name": span.name,
        "sid": span.sid,
        "parent": span.parent,
        "run": span.run,
    }


def _flow_line(flow: FlowEdge) -> Dict[str, Any]:
    return {
        "type": "flow",
        "fid": flow.fid,
        "src_proc": flow.src_proc,
        "src_time": flow.src_time,
        "dst_proc": flow.dst_proc,
        "dst_time": flow.dst_time,
        "kind": flow.kind,
        "nbytes": flow.nbytes,
        "tag": flow.tag,
        "run": flow.run,
    }


def write_jsonl(
    tracer: SpanTracer,
    path: PathLike,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Write the lossless JSONL dump; returns the number of lines."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:

        def emit(obj: Dict[str, Any]) -> None:
            nonlocal n
            fh.write(json.dumps(obj, sort_keys=True))
            fh.write("\n")
            n += 1

        emit({"type": "meta", "version": JSONL_VERSION, "generator": "repro.obs"})
        for span in tracer.spans:
            emit(_span_line(span))
        for flow in tracer.flows:
            emit(_flow_line(flow))
        if metrics is not None:
            emit({"type": "metrics", "data": metrics.as_dict()})
    return n


def load_jsonl(path: PathLike) -> Tuple[SpanTracer, MetricsRegistry]:
    """Rebuild ``(tracer, metrics)`` from a :func:`write_jsonl` file."""
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    max_sid = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "span":
                tracer.spans.append(
                    Span(
                        proc=obj["proc"],
                        category=obj["category"],
                        start=obj["start"],
                        end=obj["end"],
                        detail=obj.get("detail", ""),
                        name=obj.get("name", ""),
                        sid=obj.get("sid", 0),
                        parent=obj.get("parent"),
                        run=obj.get("run", ""),
                    )
                )
                max_sid = max(max_sid, obj.get("sid", 0))
            elif kind == "flow":
                tracer.flows.append(
                    FlowEdge(
                        fid=obj["fid"],
                        src_proc=obj["src_proc"],
                        src_time=obj["src_time"],
                        dst_proc=obj["dst_proc"],
                        dst_time=obj["dst_time"],
                        kind=obj.get("kind", "msg"),
                        nbytes=obj.get("nbytes", 0.0),
                        tag=obj.get("tag"),
                        run=obj.get("run", ""),
                    )
                )
            elif kind == "metrics":
                metrics.merge_payload(obj.get("data", {}))
    tracer._next_sid = max_sid + 1
    return tracer, metrics
