"""The measured-vs-model join: residuals per response variable.

The whole point of the paper's instrumentation (Sections 2.4 and 3.2)
is that measured category totals can be compared against the
eq. (2)-(10) analytical prediction *per response variable* — update,
nbint, seq_comp, comm, sync — instead of only at the wall-clock level
where compensating errors hide.  This module renders that comparison
for one run or a whole campaign and flags residual drift, the failure
mode Cornebize & Legrand (2021) show makes simulation-based prediction
go wrong silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.breakdown import TimeBreakdown
from ..core.model import OpalPerformanceModel
from ..core.parameters import ApplicationParams, ModelPlatformParams

#: The response variables joined against the model (idle has no model
#: term: predicted 0 by construction, shown for completeness).
RESPONSE_VARIABLES = ("update", "nbint", "seq_comp", "comm", "sync", "idle")

#: One joined row: a run label plus its configuration and measurement.
RunRow = Tuple[str, ApplicationParams, TimeBreakdown]


@dataclass(frozen=True)
class Residual:
    """Measured vs predicted seconds for one variable of one run."""

    run: str
    variable: str
    measured: float
    predicted: float

    @property
    def residual(self) -> float:
        """measured - predicted, seconds."""
        return self.measured - self.predicted

    @property
    def relative(self) -> float:
        """Residual relative to the larger magnitude (0 when both ~ 0)."""
        scale = max(abs(self.measured), abs(self.predicted))
        if scale <= 0:
            return 0.0
        return self.residual / scale


def join_residuals(
    rows: Sequence[RunRow], params: ModelPlatformParams
) -> List[Residual]:
    """Per-variable residuals of every run against the model."""
    model = OpalPerformanceModel(params)
    out: List[Residual] = []
    for run, app, measured in rows:
        predicted = model.breakdown(app)
        for variable in RESPONSE_VARIABLES:
            out.append(
                Residual(
                    run=run,
                    variable=variable,
                    measured=getattr(measured, variable),
                    predicted=getattr(predicted, variable),
                )
            )
    return out


def residual_report(
    rows: Sequence[RunRow],
    params: ModelPlatformParams,
    threshold: float = 0.10,
    per_run: bool = True,
) -> str:
    """The per-run text report joining measurement against the model.

    Every response variable of every run prints measured, predicted,
    residual and relative drift; rows beyond ``threshold`` relative
    drift are flagged with ``!``.  A campaign-level mean absolute
    drift per variable closes the report.
    """
    residuals = join_residuals(rows, params)
    lines: List[str] = [
        f"measured vs model ({params.name}), "
        f"drift flag at {100 * threshold:.0f}%",
        "",
    ]
    header = (
        f"  {'variable':<10s} {'measured[s]':>12s} {'predicted[s]':>12s} "
        f"{'residual[s]':>12s} {'drift':>8s}"
    )
    if per_run:
        by_run: List[Tuple[str, List[Residual]]] = []
        for r in residuals:
            if not by_run or by_run[-1][0] != r.run:
                by_run.append((r.run, []))
            by_run[-1][1].append(r)
        for run, items in by_run:
            lines.append(f"run: {run or '(unlabelled)'}")
            lines.append(header)
            for r in items:
                flag = " !" if abs(r.relative) > threshold else ""
                lines.append(
                    f"  {r.variable:<10s} {r.measured:12.6f} {r.predicted:12.6f} "
                    f"{r.residual:12.6f} {100 * r.relative:7.2f}%{flag}"
                )
            lines.append("")
    lines.append("mean absolute drift per response variable:")
    flagged = 0
    for variable in RESPONSE_VARIABLES:
        items = [r for r in residuals if r.variable == variable]
        if not items:
            continue
        mean_drift = sum(abs(r.relative) for r in items) / len(items)
        flag = ""
        if mean_drift > threshold:
            flag = "  <- exceeds threshold"
            flagged += 1
        lines.append(f"  {variable:<10s} {100 * mean_drift:7.2f}%{flag}")
    lines.append(
        "verdict: "
        + (
            "model and measurement agree within tolerance"
            if flagged == 0
            else f"{flagged} response variable(s) drifted beyond tolerance"
        )
    )
    return "\n".join(lines)
