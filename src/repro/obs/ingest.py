"""Adapters feeding existing telemetry formats into the columnar store.

Each adapter converts one legacy sink — campaign cell records, the
``experiments.cache`` directory, obs JSONL trace exports, bench
emissions, serve loadgen reports — into segments of a
:class:`~repro.obs.store.TelemetryStore`, so history that used to live
in incompatible per-subsystem files becomes one queryable dataset
family (see :data:`~repro.obs.store.KNOWN_DATASETS`).

Determinism contract: every adapter appends rows in an order that is a
pure function of its *input* — design order for campaign records,
sorted filename order for cache directories, span order for traces —
never of execution interleaving.  Since the serial and pooled
experiment runners both return records in design order, ingesting
either run produces bit-identical stores (the property the round-trip
tests pin via :meth:`TelemetryStore.content_digest`).

Drift batching: each :func:`ingest_records` call stamps its rows with a
``batch`` index (the count of prior ``residuals`` segments), so one
ingest == one point on the drift monitor's time axis.  A perturbed
calibration shifts an entire batch at once — exactly the step change
EWMA/CUSUM are tuned for.
"""

from __future__ import annotations

import math
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import TelemetryError
from .report import RESPONSE_VARIABLES, Residual, join_residuals
from .store import TelemetryStore

PathLike = Union[str, pathlib.Path]


def _nan(value: Optional[float]) -> float:
    """None -> NaN (columns are typed; NaN is the missing-float cell)."""
    return float("nan") if value is None else float(value)


# ----------------------------------------------------------------------
# campaign cells and residuals
# ----------------------------------------------------------------------
def ingest_records(
    store: TelemetryStore,
    records: Sequence[Any],
    params: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> List[str]:
    """Campaign cell records -> ``cells`` (+ ``residuals`` with a model).

    ``records`` are :class:`~repro.experiments.runner.ExperimentRecord`
    objects in design order.  With ``params`` (calibrated
    :class:`~repro.core.parameters.ModelPlatformParams`) the
    measured-vs-model join also lands in ``residuals``, one row per
    (cell, response variable), stamped with this ingest's batch index.
    Returns the new segment ids.
    """
    if not records:
        raise TelemetryError("nothing to ingest: empty record sequence")
    batch = len(store.segments("residuals"))
    cells = _empty_cells_columns()
    for record in records:
        case = record.case
        cells["run"].append(case.label)
        cells["family"].append("opal")
        cells["molecule"].append(case.molecule.name)
        cells["servers"].append(int(case.servers))
        cells["cutoff"].append(_nan(case.cutoff))
        cells["update_interval"].append(int(case.update_interval))
        cells["steps"].append(int(case.steps))
        cells["wall_mean"].append(float(record.wall_stats.mean))
        cells["wall_std"].append(float(record.wall_stats.std))
        cells["reps"].append(len(record.wall_stats.values))
        cells["total_s"].append(float(record.breakdown.total))
        cells["batch"].append(batch)
        for variable in RESPONSE_VARIABLES:
            cells[variable].append(float(getattr(record.breakdown, variable)))
    segments = [store.append("cells", cells, meta=meta)]

    if params is not None:
        rows = [(r.case.label, r.app, r.breakdown) for r in records]
        residuals = _empty_residual_columns()
        for res in join_residuals(rows, params):
            _append_residual(residuals, res, family="opal", batch=batch)
        segments.append(store.append("residuals", residuals, meta=meta))
    return segments


def _empty_cells_columns() -> Dict[str, List[Any]]:
    """The shared ``cells`` schema (first segment fixes the columns)."""
    cells: Dict[str, List[Any]] = {
        "run": [], "family": [], "molecule": [], "servers": [], "cutoff": [],
        "update_interval": [], "steps": [], "wall_mean": [], "wall_std": [],
        "reps": [], "total_s": [], "batch": [],
    }
    for variable in RESPONSE_VARIABLES:
        cells[variable] = []
    return cells


def _empty_residual_columns() -> Dict[str, List[Any]]:
    """The shared ``residuals`` schema (first segment fixes the columns)."""
    return {
        "run": [], "family": [], "variable": [], "measured": [],
        "predicted": [], "residual": [], "relative": [], "batch": [],
    }


def _append_residual(
    columns: Dict[str, List[Any]], res: Any, family: str, batch: int
) -> None:
    columns["run"].append(res.run)
    columns["family"].append(family)
    columns["variable"].append(res.variable)
    columns["measured"].append(res.measured)
    columns["predicted"].append(res.predicted)
    columns["residual"].append(res.residual)
    columns["relative"].append(res.relative)
    columns["batch"].append(batch)


def ingest_workload_records(
    store: TelemetryStore,
    records: Sequence[Any],
    params: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> List[str]:
    """Workload campaign records -> ``cells`` (+ ``residuals``).

    ``records`` are :class:`~repro.workloads.campaign.WorkloadRecord`
    objects in design order.  The columns match :func:`ingest_records`
    exactly — ``family`` carries the workload family, ``molecule``
    carries the spec label, Opal-only factors land as their missing
    values (NaN cutoff, zero update interval) — so opal and workload
    campaigns can share one store and the query/SLO/drift layers work
    unchanged.  With ``params`` (a family calibration) residuals are
    joined through the family's closed-form terms.
    """
    from ..core.model import terms_breakdown
    from ..errors import WorkloadError
    from ..workloads import get_family

    if not records:
        raise TelemetryError("nothing to ingest: empty record sequence")
    batch = len(store.segments("residuals"))
    cells = _empty_cells_columns()
    residuals = _empty_residual_columns()
    for record in records:
        cell = record.cell
        family = get_family(cell.spec.family)
        try:
            steps = len(family.compile(cell.spec, cell.servers))
        except WorkloadError:
            steps = int(cell.spec.params_dict().get("steps", 0))
        cells["run"].append(cell.label)
        cells["family"].append(cell.spec.family)
        cells["molecule"].append(family.spec_label(cell.spec))
        cells["servers"].append(int(cell.servers))
        cells["cutoff"].append(float("nan"))
        cells["update_interval"].append(0)
        cells["steps"].append(steps)
        cells["wall_mean"].append(float(record.wall_stats.mean))
        cells["wall_std"].append(float(record.wall_stats.std))
        cells["reps"].append(len(record.wall_stats.values))
        cells["total_s"].append(float(record.breakdown.total))
        cells["batch"].append(batch)
        for variable in RESPONSE_VARIABLES:
            cells[variable].append(float(getattr(record.breakdown, variable)))
        if params is not None:
            predicted = terms_breakdown(
                params, family.terms(cell.spec, cell.servers)
            )
            for variable in RESPONSE_VARIABLES:
                res = Residual(
                    run=cell.label,
                    variable=variable,
                    measured=float(getattr(record.breakdown, variable)),
                    predicted=float(getattr(predicted, variable)),
                )
                _append_residual(
                    residuals, res, family=cell.spec.family, batch=batch
                )
    segments = [store.append("cells", cells, meta=meta)]
    if params is not None:
        segments.append(store.append("residuals", residuals, meta=meta))
    return segments


def ingest_cache_dir(
    store: TelemetryStore,
    cache_dir: PathLike,
    params: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> List[str]:
    """An ``experiments.cache`` directory -> ``cells`` (+ ``residuals``).

    Entries load in sorted filename order (content addresses), so two
    ingests of the same cache are bit-identical regardless of the order
    the campaign populated it.  Probe entries (bare measurement stats,
    no ``case``) are skipped — they carry no breakdown to ingest.
    """
    import json

    from ..experiments.cache import record_from_dict

    root = pathlib.Path(cache_dir)
    records = []
    for path in sorted(root.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and "case" in payload:
            records.append(record_from_dict(payload))
    if not records:
        raise TelemetryError(f"no cell records found under {root}")
    ingest_meta = {"source": str(root), **(meta or {})}
    return ingest_records(store, records, params=params, meta=ingest_meta)


# ----------------------------------------------------------------------
# span rollups
# ----------------------------------------------------------------------
def ingest_trace_jsonl(
    store: TelemetryStore,
    path: PathLike,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """An obs JSONL export -> per-(run, proc, category) span rollups.

    Raw spans would dwarf every other dataset; the query layer needs the
    same reduction :meth:`SpanTracer.by_category` performs, so spans
    land pre-aggregated: total seconds and span count per key, sorted.
    """
    from .export import load_jsonl

    tracer, _metrics = load_jsonl(path)
    totals: Dict[tuple, List[float]] = {}
    for span in tracer.spans:
        key = (span.run, span.proc, span.category)
        bucket = totals.setdefault(key, [0.0, 0.0])
        bucket[0] += span.duration
        bucket[1] += 1.0
    if not totals:
        raise TelemetryError(f"no spans in {path}")
    columns: Dict[str, List[Any]] = {
        "run": [], "proc": [], "category": [], "total_s": [], "count": [],
    }
    for (run, proc, category), (total_s, count) in sorted(totals.items()):
        columns["run"].append(run)
        columns["proc"].append(proc)
        columns["category"].append(category)
        columns["total_s"].append(total_s)
        columns["count"].append(int(count))
    ingest_meta = {"source": str(path), **(meta or {})}
    return store.append("spans", columns, meta=ingest_meta)


# ----------------------------------------------------------------------
# bench emissions
# ----------------------------------------------------------------------
def ingest_bench_payload(
    store: TelemetryStore,
    payload: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """One ``repro-bench/1`` payload (already loaded) -> ``bench`` rows."""
    if payload.get("schema") != "repro-bench/1":
        raise TelemetryError(
            f"not a bench payload: schema tag {payload.get('schema')!r}"
        )
    records = payload.get("records") or []
    if not records:
        raise TelemetryError("bench payload has no records")
    columns: Dict[str, List[Any]] = {
        "experiment": [], "name": [], "metric": [], "value": [], "units": [],
    }
    for row in records:
        columns["experiment"].append(str(payload["experiment"]))
        columns["name"].append(str(row["name"]))
        columns["metric"].append(str(row["metric"]))
        columns["value"].append(float(row["value"]))
        columns["units"].append(str(row["units"]))
    ingest_meta = {"experiment": str(payload["experiment"]), **(meta or {})}
    return store.append("bench", columns, meta=ingest_meta)


def ingest_bench_dir(
    store: TelemetryStore,
    out_dir: PathLike,
    meta: Optional[Dict[str, Any]] = None,
) -> List[str]:
    """Every ``benchmarks/out/*.json`` emission -> ``bench`` segments.

    Files ingest in sorted name order; non-bench JSON (foreign schema,
    torn writes) is skipped rather than fatal so one stale artifact
    cannot block ingesting a whole directory.
    """
    import json

    root = pathlib.Path(out_dir)
    segments: List[str] = []
    for path in sorted(root.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or payload.get("schema") != "repro-bench/1":
            continue
        file_meta = {"source": str(path), **(meta or {})}
        segments.append(ingest_bench_payload(store, payload, meta=file_meta))
    if not segments:
        raise TelemetryError(f"no bench emissions found under {root}")
    return segments


# ----------------------------------------------------------------------
# store-to-store merge (fleet telemetry consolidation)
# ----------------------------------------------------------------------
def merge_stores(
    destination: TelemetryStore,
    sources: Sequence[PathLike],
    datasets: Optional[Sequence[str]] = None,
    meta: Optional[Dict[str, Any]] = None,
    allow_missing: bool = False,
) -> List[str]:
    """Fold several telemetry stores into one (the fleet SLO join).

    Every fleet member — the router and each worker incarnation —
    writes its own store directory; the SLO gate wants one scan.  Each
    source's segments append to ``destination`` in manifest order,
    sources in the order given, so the merge is a pure function of the
    source list.  ``datasets`` restricts which datasets copy (default:
    all).  Segment meta is preserved and stamped with its origin store.
    Returns the new segment ids.

    ``allow_missing`` skips sources with no manifest instead of
    failing — a chaos-killed worker legitimately dies before its first
    flush, and the merge must still gather what the survivors wrote.
    """
    segments: List[str] = []
    for source_path in sources:
        root = pathlib.Path(source_path)
        if not (root / "manifest.json").exists():
            if allow_missing:
                continue
            raise TelemetryError(f"no telemetry store at {root}")
        source = TelemetryStore(root)
        for entry in source.segments():
            if datasets is not None and entry["dataset"] not in datasets:
                continue
            columns = source.read_segment(entry["id"])
            entry_meta = {
                **(entry.get("meta") or {}),
                "merged_from": str(root),
                **(meta or {}),
            }
            segments.append(
                destination.append(entry["dataset"], columns, meta=entry_meta)
            )
    if not segments:
        raise TelemetryError(
            "nothing to merge: no segments matched "
            f"datasets={list(datasets) if datasets is not None else 'all'}"
        )
    return segments


# ----------------------------------------------------------------------
# serve loadgen
# ----------------------------------------------------------------------
def ingest_loadgen_report(
    store: TelemetryStore,
    report: Any,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """A :class:`~repro.serve.loadgen.LoadgenReport` -> ``loadgen`` rows.

    One row per *answered* request (client-side wall latency in submit
    order); the shed/expired/error tallies ride along in the segment
    meta, mirroring ``LoadgenReport.summary()``.
    """
    latencies = [float(v) for v in report.latencies]
    if not latencies:
        raise TelemetryError("loadgen report has no recorded latencies")
    if any(not math.isfinite(v) for v in latencies):
        raise TelemetryError("loadgen report carries non-finite latencies")
    columns = {
        "request": list(range(len(latencies))),
        "latency_s": latencies,
    }
    ingest_meta = {**report.summary(), **(meta or {})}
    return store.append("loadgen", columns, meta=ingest_meta)
