"""``python -m repro.obs`` dispatch."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # downstream pager/head closed the pipe: not an error, but the
        # interpreter would otherwise print a traceback while flushing
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 0
    sys.exit(code)
