"""Declarative workload specs: schema fields, validation and digests.

A *spec* is data, not code: one family name plus a flat mapping of
typed parameters.  The schema machinery here gives every family the
same contract:

* :class:`FieldSpec` — one typed, bounded, documented parameter;
* :class:`WorkloadSpec` — the frozen, canonicalized result of
  validation (params stored in schema field order, hashable and
  pickle-able, so a spec can ride inside cache keys and pool jobs);
* :func:`spec_digest` — a content address over the canonical JSON
  form, stable under dict reordering, versioned by
  :data:`SPEC_SCHEMA_VERSION` so a schema change invalidates caches;
* :func:`load_spec_data` / :func:`dump_spec` — JSON (and, where the
  interpreter ships ``tomllib``, TOML) file round-trips.

Validation failures raise :class:`~repro.errors.WorkloadError` with
actionable messages: the offending family/field, the rejected value,
and what would have been accepted.  Numeric fields reject strings with
unit suffixes ("64kB", "10ms") explicitly — units are fixed by the
schema, values are plain numbers.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..errors import WorkloadError

PathLike = Union[str, pathlib.Path]

#: Version tag folded into every spec digest: bump on any change to the
#: canonical form so stale cache entries miss instead of colliding.
SPEC_SCHEMA_VERSION = 1

#: A numeric-looking string with a trailing unit suffix ("64kB",
#: "10 ms", "1.5GiB") — always rejected for numeric fields, with a
#: dedicated message naming the schema's fixed unit.
_UNIT_SUFFIX = re.compile(r"^\s*[-+]?[0-9][0-9_.eE+-]*\s*[a-zA-Zµ%]+\s*$")


def canonical_json(data: Any) -> str:
    """The one JSON form digests are computed over (sorted, compact)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FieldSpec:
    """One typed parameter of a workload family's schema.

    ``kind`` is ``"int"``, ``"float"`` or ``"str"``; ``unit`` names the
    fixed unit of numeric fields (it appears in rejection messages for
    unit-suffixed strings).  ``allow_none`` admits ``None`` (the
    missing-float idiom, e.g. "no cutoff").
    """

    name: str
    kind: str
    default: Any
    doc: str = ""
    unit: str = ""
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    allow_none: bool = False

    def validate(self, family: str, value: Any) -> Any:
        """Coerce and bound one raw value; raise WorkloadError if bad."""
        where = f"{family}.{self.name}"
        if value is None:
            if self.allow_none:
                return None
            raise WorkloadError(f"{where}: must not be null")
        if self.kind == "str":
            if not isinstance(value, str):
                raise WorkloadError(
                    f"{where}: expected a string, got {value!r}"
                )
            if self.choices is not None and value not in self.choices:
                raise WorkloadError(
                    f"{where}: {value!r} is not one of "
                    f"{', '.join(self.choices)}"
                )
            return value
        # numeric kinds
        if isinstance(value, str):
            if _UNIT_SUFFIX.match(value):
                unit = self.unit or "the schema's fixed unit"
                raise WorkloadError(
                    f"{where}: unit suffixes are not accepted ({value!r}); "
                    f"give {self.name} as a plain number in {unit}"
                )
            raise WorkloadError(
                f"{where}: expected a number, got the string {value!r}"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise WorkloadError(
                f"{where}: expected a number, got {value!r}"
            )
        if self.kind == "int":
            if float(value) != int(value):
                raise WorkloadError(
                    f"{where}: expected an integer, got {value!r}"
                )
            value = int(value)
        else:
            value = float(value)
        if self.minimum is not None and value < self.minimum:
            raise WorkloadError(
                f"{where}: {value!r} is below the minimum {self.minimum}"
            )
        if self.maximum is not None and value > self.maximum:
            raise WorkloadError(
                f"{where}: {value!r} is above the maximum {self.maximum}"
            )
        return value


@dataclass(frozen=True)
class WorkloadSpec:
    """One validated, canonicalized workload scenario.

    ``params`` is a tuple of ``(name, value)`` pairs in *schema field
    order* — the canonical form.  Hashable and pickle-able so a spec
    can sit inside cache-key payloads, pool jobs and serve queries.
    """

    family: str
    params: Tuple[Tuple[str, Any], ...]

    def get(self, name: str) -> Any:
        """One parameter value; raise WorkloadError for absent fields."""
        for key, value in self.params:
            if key == name:
                return value
        raise WorkloadError(f"{self.family} spec has no field {name!r}")

    def params_dict(self) -> Dict[str, Any]:
        """The params as a plain dict (canonical order preserved)."""
        return dict(self.params)

    def as_dict(self) -> Dict[str, Any]:
        """The full loader-shaped dict: family plus every parameter."""
        return {"family": self.family, **self.params_dict()}


def spec_digest(spec: WorkloadSpec) -> str:
    """Content address of one spec (hex SHA-256).

    Computed over the canonical JSON of the schema-versioned spec dict,
    so digests are stable across dict key ordering and process
    boundaries, and change whenever the spec schema version does.
    """
    payload = {
        "schema": SPEC_SCHEMA_VERSION,
        "family": spec.family,
        "params": spec.params_dict(),
    }
    return hashlib.sha256(canonical_json(payload).encode("ascii")).hexdigest()


def dump_spec(spec: WorkloadSpec) -> str:
    """Serialize one spec to canonical JSON (a loadable spec file body)."""
    return canonical_json(spec.as_dict())


def load_spec_data(path: PathLike) -> Dict[str, Any]:
    """Load one raw spec mapping from a ``.json`` or ``.toml`` file.

    TOML needs ``tomllib`` (Python 3.11+); on older interpreters a TOML
    spec is rejected with a pointer at the JSON equivalent rather than
    an ImportError.  Returns the *unvalidated* mapping — bind it to a
    family via :func:`repro.workloads.parse_spec`.
    """
    p = pathlib.Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise WorkloadError(f"cannot read spec file {p}: {exc}") from exc
    if p.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"{p} is not valid JSON: {exc}") from exc
    elif p.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:
            raise WorkloadError(
                f"{p}: TOML specs need Python 3.11+ (tomllib); "
                "rewrite the spec as JSON on this interpreter"
            ) from exc
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise WorkloadError(f"{p} is not valid TOML: {exc}") from exc
    else:
        raise WorkloadError(
            f"{p}: unknown spec extension {p.suffix!r}; use .json or .toml"
        )
    if not isinstance(data, dict):
        raise WorkloadError(f"{p}: a spec file must hold one object/table")
    return data
