"""Declarative workload families: specs in, measurements and models out.

The subsystem that makes the paper's methodology app-agnostic (ROADMAP
item 3).  A scenario is a validated *spec* (data, not code); a
:class:`WorkloadFamily` compiles it into (a) a client/server program
the DES measures and (b) closed-form regressors the analytical model
evaluates — so every family gets factorial campaigns, least-squares
calibration and key-data prediction for free, and the serve API can
answer ``"family": "collective"`` queries next to classic Opal ones.

Importing this package registers the shipped families: ``opal``,
``collective`` and ``hpl``.  See docs/WORKLOADS.md for the spec
grammar and the adding-a-family runbook.
"""

from __future__ import annotations

from .base import (
    WorkloadFamily,
    family_names,
    get_family,
    parse_spec,
    register_family,
)
from .program import PhaseStep, WorkloadRunResult, run_workload_program
from .spec import (
    SPEC_SCHEMA_VERSION,
    FieldSpec,
    WorkloadSpec,
    dump_spec,
    load_spec_data,
    spec_digest,
)

# importing the family modules registers them
from . import collective as _collective  # noqa: E402,F401
from . import hpl as _hpl  # noqa: E402,F401
from . import opal_family as _opal_family  # noqa: E402,F401

__all__ = [
    "FieldSpec",
    "PhaseStep",
    "SPEC_SCHEMA_VERSION",
    "WorkloadFamily",
    "WorkloadRunResult",
    "WorkloadSpec",
    "dump_spec",
    "family_names",
    "get_family",
    "load_spec_data",
    "parse_spec",
    "register_family",
    "run_workload_program",
    "spec_digest",
]
