"""The ``hpl`` workload family: a blocked dense-solver client/server run.

Xu et al.'s HPL case study (PAPERS.md) fits the same simulate ->
calibrate -> predict pipeline as Opal: an LU-style factorization
proceeds panel by panel, each panel mixing sequential client work
(panel factorization), a broadcast of the panel, and parallel trailing-
matrix updates across the servers.  One compiled phase step per panel:

* the client factorizes the ``trailing x block`` panel
  (``trailing * block^2`` flops, sequential);
* the panel broadcast sends ``trailing * block * 8`` bytes to each
  server, which answers with a control ack;
* each server updates its share of the trailing matrix
  (``2 * trailing^2 * block / p`` flops inside the phase barriers).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

from ..errors import WorkloadError
from .base import WorkloadFamily, register_family
from .program import CTRL_BYTES, PhaseStep
from .spec import FieldSpec, WorkloadSpec

#: Matrix entries are doubles.
BYTES_PER_ENTRY = 8


@register_family
class HplFamily(WorkloadFamily):
    """Blocked dense-solver rounds: panel factor + broadcast + update."""

    name = "hpl"
    summary = "blocked dense-solver rounds (panel factor + trailing update)"
    fields = (
        FieldSpec(
            name="matrix_n",
            kind="int",
            default=256,
            unit="rows",
            minimum=32,
            maximum=4096,
            doc="order of the dense system",
        ),
        FieldSpec(
            name="block",
            kind="int",
            default=64,
            unit="rows",
            minimum=8,
            maximum=1024,
            doc="panel blocking factor",
        ),
    )

    def check(self, params: Dict[str, Any]) -> None:
        """Cross-field: the blocking factor cannot exceed the order."""
        if params["block"] > params["matrix_n"]:
            raise WorkloadError(
                f"{self.name}: block ({params['block']}) must not exceed "
                f"matrix_n ({params['matrix_n']})"
            )

    def compile(self, spec: WorkloadSpec, servers: int) -> Tuple[PhaseStep, ...]:
        """One phase step per factorization panel (``ceil(n/block)``)."""
        n = int(spec.get("matrix_n"))
        nb = int(spec.get("block"))
        panels = math.ceil(n / nb)
        steps = []
        for k in range(panels):
            trailing = n - k * nb
            factor_flops = float(trailing) * nb * nb
            update_flops = 2.0 * trailing * trailing * nb / servers
            panel_bytes = trailing * nb * BYTES_PER_ENTRY
            steps.append(
                PhaseStep(
                    f"panel@{k}",
                    panel_bytes,
                    CTRL_BYTES,
                    update_flops,
                    factor_flops,
                )
            )
        return tuple(steps)

    def campaign_specs(
        self, base: Optional[WorkloadSpec] = None
    ) -> Tuple[WorkloadSpec, ...]:
        """Factorial axis: two problem sizes x two blocking factors."""
        params = dict(base.params) if base is not None else self.default_params()
        n = int(params["matrix_n"])
        small_n = max(n * 3 // 4, 32)
        specs = []
        for matrix_n in (small_n, n):
            for block in (max(int(params["block"]) // 2, 8), params["block"]):
                if block > matrix_n:
                    continue
                specs.append(
                    self.spec_from_params(
                        {**params, "matrix_n": matrix_n, "block": block}
                    )
                )
        return tuple(specs)

    def example_params(self) -> Tuple[Dict[str, Any], ...]:
        """Representative specs for load mixes and docs."""
        return (
            {"matrix_n": 256, "block": 64},
            {"matrix_n": 384, "block": 32},
            {"matrix_n": 192, "block": 48},
        )
