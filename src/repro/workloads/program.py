"""The generic client/server DES program every workload family runs.

A family's compiler lowers one (spec, servers) cell into a flat tuple
of :class:`PhaseStep` — the single IR both backends consume:

* :func:`run_workload_program` executes the steps on the simulator with
  the paper's full instrumentation discipline (phase barriers, per-
  process accountants, tracer-separated sync cost), exactly mirroring
  the Opal program in :mod:`repro.opal.parallel`;
* ``WorkloadFamily.terms`` (see :mod:`repro.workloads.base`) reduces
  the same steps to closed-form regressors for the model.

Because both derive from one compiled program, measurement and
prediction agree by construction on what work a cell contains.

Each step is one RPC phase: the client calls every server (``phase``
procedure, ``send_bytes`` out), a start barrier separates communication
from computation, every server burns ``server_flops``, an end barrier,
the replies come back (``reply_bytes`` each), then the client runs its
own ``client_flops`` sequentially.  With faults the client switches to
the resilient Sciddle stub (retried idempotent RPCs); crash faults are
rejected — the generic program has no partition-redistribution logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.breakdown import TimeBreakdown
from ..errors import WorkloadError
from ..hpm import PhaseAccountant
from ..netsim import FaultPlan, FaultSpec
from ..pvm import PvmSystem, PvmTask
from ..sciddle import (
    ResilientSciddleClient,
    RetryPolicy,
    RpcReply,
    SciddleClient,
    SciddleInterface,
    SciddleServer,
    SyncDiscipline,
)
from .spec import WorkloadSpec

#: Bytes of a bare control message (acks, barrier-style payloads).
CTRL_BYTES = 8

#: Floor on compute working sets: a zero-byte working set would degrade
#: the memory-hierarchy timing; one line-ish block keeps it physical.
MIN_WORKING_SET = 1024.0


@dataclass(frozen=True)
class PhaseStep:
    """One compiled RPC phase of a workload program."""

    label: str
    #: request payload bytes, client -> each server
    send_bytes: int
    #: reply payload bytes, each server -> client
    reply_bytes: int
    #: flops each server burns inside the phase barriers
    server_flops: float
    #: flops the client burns sequentially after the replies
    client_flops: float

    def __post_init__(self) -> None:
        if self.send_bytes < 0 or self.reply_bytes < 0:
            raise WorkloadError(f"{self.label}: negative message size")
        if self.server_flops < 0 or self.client_flops < 0:
            raise WorkloadError(f"{self.label}: negative flop count")

    @property
    def working_set(self) -> float:
        """Bytes the phase's compute touches (floored; see above)."""
        return max(float(self.send_bytes + self.reply_bytes), MIN_WORKING_SET)


@dataclass
class WorkloadRunResult:
    """Everything measured during one simulated workload cell run."""

    family: str
    spec: WorkloadSpec
    servers: int
    platform_name: str
    wall_time: float
    breakdown: TimeBreakdown
    barriers_executed: int = 0
    rpc_retries: int = 0
    client_phases: Dict[str, float] = field(default_factory=dict)


def make_workload_interface(family: str) -> SciddleInterface:
    """The one-procedure remote interface of the generic program."""
    iface = SciddleInterface(f"workload-{family}")
    iface.procedure(
        "phase", doc="run one compiled phase step of the workload program"
    )
    return iface


def _server_body(
    task: PvmTask,
    iface: SciddleInterface,
    sync: SyncDiscipline,
    steps: Sequence[PhaseStep],
    accountant: PhaseAccountant,
):
    """One generic server: serve ``phase`` RPCs until shutdown."""

    def phase(t: PvmTask, args):
        step = steps[args["step"]]
        yield from sync.phase_barrier(t, f"ph_start@{args['step']}")
        if step.server_flops > 0:
            accountant.begin("par:work")
            yield from t.compute(
                flops=step.server_flops, working_set=step.working_set
            )
            accountant.end()
        yield from sync.phase_barrier(t, f"ph_end@{args['step']}")
        return RpcReply(nbytes=step.reply_bytes)

    server = SciddleServer(task, iface)
    server.bind("phase", phase)
    yield from server.run()


def _client_body(
    task: PvmTask,
    iface: SciddleInterface,
    sync: SyncDiscipline,
    steps: Sequence[PhaseStep],
    server_tids: List[int],
    accountant: PhaseAccountant,
    result_slot: dict,
    retry_policy: Optional[RetryPolicy] = None,
):
    """The generic client: drive every compiled step, then shut down."""
    if retry_policy is None:
        client = SciddleClient(task, iface, server_tids, accountant=accountant)
    else:
        client = ResilientSciddleClient(
            task, iface, server_tids, policy=retry_policy, accountant=accountant
        )
    t_start = task.now
    for k, step in enumerate(steps):
        phase_args = {"step": k}
        handles = yield from client.call_all(
            "phase",
            args_for=lambda i, tid: phase_args,
            nbytes=step.send_bytes,
            category="comm:call_phase",
        )
        yield from sync.phase_barrier(task, f"ph_start@{k}")
        yield from sync.phase_barrier(task, f"ph_end@{k}")
        yield from client.wait_all(handles, category="comm:return_phase")
        if step.client_flops > 0:
            accountant.begin("seq_comp")
            yield from task.compute(
                flops=step.client_flops, working_set=step.working_set
            )
            accountant.end()
    yield from client.shutdown()
    result_slot["wall"] = task.now - t_start


def run_workload_program(
    family: str,
    spec: WorkloadSpec,
    steps: Sequence[PhaseStep],
    servers: int,
    platform,
    seed: int = 0,
    jitter_sigma: float = 0.0,
    faults: Optional[FaultSpec] = None,
) -> WorkloadRunResult:
    """Simulate one compiled workload cell on ``platform``.

    The breakdown is reconstructed exactly as the Opal program does it:
    server compute from the server accountants (mean over servers,
    reported as the ``nbint`` pair-work component), sequential and
    communication time from the client accountant, synchronization from
    the tracer's accounted barrier-cost rows, idle as the clamped
    remainder of the wall clock.
    """
    if servers < 1:
        raise WorkloadError(f"{family}: servers must be >= 1, got {servers}")
    if not steps:
        raise WorkloadError(f"{family}: compiled program has no steps")
    p = servers
    cluster = platform.build_cluster(p + 1, seed=seed, jitter_sigma=jitter_sigma)
    pvm = PvmSystem(cluster, barrier_cost=platform.sync_cost)
    iface = make_workload_interface(family)
    group = f"wl-{family}"
    sync = SyncDiscipline("accounted", group=group, count=p + 1)
    cluster.barriers.set_count_provider(
        f"pvm:{sync.group}:", lambda: sync.live_count
    )

    retry_policy: Optional[RetryPolicy] = None
    client_node = platform.place(cluster, 0)
    if faults is not None:
        if faults.crashes:
            raise WorkloadError(
                f"{family}: crash faults are not supported by the generic "
                "workload program (no failover partition logic); use "
                "drop/delay/slowdown chaos instead"
            )
        retry_policy = RetryPolicy.from_spec(faults)
        if faults.enabled:
            FaultPlan(faults, cluster.rng).install(cluster)

    clock = lambda: cluster.engine.now  # noqa: E731
    client_acct = PhaseAccountant(
        clock, client_node.hpm, tracer=cluster.tracer, proc=f"{group}-client"
    )
    server_accts = []
    server_procs = []
    for i in range(p):
        node = platform.place(cluster, i + 1)
        acct = PhaseAccountant(
            clock, node.hpm, tracer=cluster.tracer, proc=f"{group}-server{i}"
        )
        server_accts.append(acct)
        server_procs.append(
            pvm.spawn(f"{group}-server{i}", node, _server_body, iface, sync,
                      tuple(steps), acct)
        )

    result_slot: dict = {}
    pvm.spawn(
        f"{group}-client",
        client_node,
        _client_body,
        iface,
        sync,
        tuple(steps),
        [sp.tid for sp in server_procs],
        client_acct,
        result_slot,
        retry_policy=retry_policy,
    )
    pvm.run()
    wall = result_slot["wall"]

    work_secs = [a.seconds("par:work") for a in server_accts]
    t_work = float(np.mean(work_secs)) if work_secs else 0.0
    t_seq = client_acct.seconds("seq_comp")
    t_comm = sum(
        v for k, v in client_acct.as_dict().items() if k.startswith("comm:")
    )
    client_rows = cluster.tracer.by_process().get(f"{group}-client", {})
    t_sync = client_rows.get("sync", 0.0)
    t_idle = max(wall - (t_work + t_seq + t_comm + t_sync), 0.0)

    breakdown = TimeBreakdown(
        update=0.0,
        nbint=t_work,
        seq_comp=t_seq,
        comm=t_comm,
        sync=t_sync,
        idle=t_idle,
    )
    retries_counter = cluster.metrics.counters.get("sciddle.retries")
    return WorkloadRunResult(
        family=family,
        spec=spec,
        servers=servers,
        platform_name=platform.name,
        wall_time=wall,
        breakdown=breakdown,
        barriers_executed=sync.barriers_executed,
        rpc_retries=int(retries_counter.value) if retries_counter else 0,
        client_phases=client_acct.as_dict(),
    )
