"""The ``opal`` workload family: the paper's program, spec-ified.

Opal predates the spec layer and keeps its dedicated DES program
(:func:`repro.opal.parallel.run_parallel_opal`) and exact analytical
form (:class:`repro.core.model.OpalPerformanceModel`); this family
wraps both behind the generic contract so campaigns, serve queries and
loadgen mixes treat Opal like any other family.

``terms`` restates equations (3)-(10) with compute counted in flops:
multiplying the pair workloads by the per-pair kernel flop costs makes
the family coefficients ``a2 = a3 = a4 = 1 / cpu_rate`` reproduce
``ModelPlatformParams.from_spec`` products exactly, so the family path
and the classic path predict identical breakdowns from key data.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..core.parameters import ApplicationParams, FamilyWorkloadTerms
from ..errors import WorkloadError
from ..netsim import FaultSpec
from ..opal import costs
from ..opal.complexes import NAMED_COMPLEXES, get_complex
from .base import WorkloadFamily, register_family
from .program import PhaseStep, WorkloadRunResult
from .spec import FieldSpec, WorkloadSpec


@register_family
class OpalFamily(WorkloadFamily):
    """The paper's Opal application as a spec-driven workload family."""

    name = "opal"
    summary = "the paper's molecular-dynamics client/server program"
    fields = (
        FieldSpec(
            name="molecule",
            kind="str",
            default="medium",
            choices=tuple(sorted(NAMED_COMPLEXES)),
            doc="named molecular complex",
        ),
        FieldSpec(
            name="cutoff",
            kind="float",
            default=None,
            unit="Angstrom",
            minimum=1.0,
            maximum=1000.0,
            allow_none=True,
            doc="cutoff radius; null = fully accurate",
        ),
        FieldSpec(
            name="update_interval",
            kind="int",
            default=1,
            unit="steps",
            minimum=1,
            maximum=1000,
            doc="steps between pair-list updates",
        ),
        FieldSpec(
            name="steps",
            kind="int",
            default=10,
            unit="steps",
            minimum=1,
            maximum=100_000,
            doc="simulation steps",
        ),
    )

    def app(self, spec: WorkloadSpec, servers: int) -> ApplicationParams:
        """The cell as the model's classic application parameters."""
        return ApplicationParams(
            molecule=get_complex(spec.get("molecule")),
            steps=int(spec.get("steps")),
            servers=servers,
            update_interval=int(spec.get("update_interval")),
            cutoff=spec.get("cutoff"),
        )

    def compile(self, spec: WorkloadSpec, servers: int) -> Tuple[PhaseStep, ...]:
        """Always raises: opal keeps its dedicated DES program."""
        raise WorkloadError(
            "opal does not lower to the generic phase program; it keeps "
            "its dedicated DES program (repro.opal.parallel) and exact "
            "closed form"
        )

    def terms(self, spec: WorkloadSpec, servers: int) -> FamilyWorkloadTerms:
        """Equations (2)-(10) re-expressed as the six generic counts."""
        app = self.app(spec, servers)
        wt = app.workload_terms()
        s, p, n, u = float(app.s), float(app.p), float(app.n), app.update_rate
        return FamilyWorkloadTerms(
            update_ops=s * u / p * wt.update_pairs * costs.UPDATE_PAIR_FLOPS,
            pair_ops=s / p * wt.energy_pairs * costs.NB_PAIR_FLOPS,
            seq_ops=s * n * costs.SEQ_ATOM_FLOPS,
            comm_bytes=s * p * app.alpha * (u + 2.0) * n,
            comm_msgs=2.0 * s * p * (u + 1.0),
            sync_ops=2.0 * s * (u + 1.0),
        )

    def simulate(
        self,
        spec: WorkloadSpec,
        servers: int,
        platform,
        seed: int = 0,
        jitter_sigma: float = 0.0,
        faults: Optional[FaultSpec] = None,
    ) -> WorkloadRunResult:
        """Run the real parallel Opal program for this cell."""
        from ..opal.parallel import run_parallel_opal

        result = run_parallel_opal(
            self.app(spec, servers),
            platform,
            sync_mode="accounted",
            seed=seed,
            jitter_sigma=jitter_sigma,
            faults=faults,
        )
        return WorkloadRunResult(
            family=self.name,
            spec=spec,
            servers=servers,
            platform_name=result.platform_name,
            wall_time=result.wall_time,
            breakdown=result.breakdown,
            barriers_executed=result.barriers_executed,
            rpc_retries=result.rpc_retries,
            client_phases=dict(result.client_phases),
        )

    def campaign_specs(
        self, base: Optional[WorkloadSpec] = None
    ) -> Tuple[WorkloadSpec, ...]:
        """The paper's factorial axes: cutoff x update interval."""
        params = dict(base.params) if base is not None else self.default_params()
        specs = []
        for cutoff in (None, 10.0):
            for update_interval in (1, 10):
                specs.append(
                    self.spec_from_params(
                        {**params, "cutoff": cutoff,
                         "update_interval": update_interval}
                    )
                )
        return tuple(specs)

    def example_params(self) -> Tuple[Dict[str, Any], ...]:
        """Representative specs for load mixes and docs."""
        return (
            {"molecule": "medium", "cutoff": 10.0},
            {"molecule": "medium", "update_interval": 10},
            {"molecule": "small"},
        )
