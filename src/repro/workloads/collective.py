"""The ``collective`` workload family: middleware collective patterns.

Barchet-Estefanel & Mounié (PAPERS.md) model collective communication
as structured rounds over a fan-out tree; this family reproduces that
shape on the client/server middleware: each compiled phase step is one
tree stage of one collective round, with per-pattern message sizes and
reduction work.

Patterns
========
barrier     control messages only (``CTRL_BYTES`` each way), no compute
broadcast   ``message_bytes`` out, control ack back
allreduce   ``message_bytes`` both ways; servers reduce their payload
            (one op per 8-byte element), the client combines the ``p``
            partial results on the final stage of each round
alltoall    every rank exchanges with every other: ``(p-1) *
            message_bytes`` each way per stage, no compute
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .base import WorkloadFamily, register_family
from .program import CTRL_BYTES, PhaseStep
from .spec import FieldSpec, WorkloadSpec

#: Reduction granularity: one combine op per 8-byte (double) element.
BYTES_PER_ELEMENT = 8

PATTERNS = ("barrier", "broadcast", "allreduce", "alltoall")


def tree_stages(participants: int, fanout: int) -> int:
    """Stages of a ``fanout``-ary dissemination tree over participants."""
    stages, reach = 0, 1
    while reach < participants:
        reach *= fanout
        stages += 1
    return max(stages, 1)


@register_family
class CollectiveFamily(WorkloadFamily):
    """Tree-structured collective communication rounds (see module doc)."""

    name = "collective"
    summary = "tree-structured collective communication rounds"
    fields = (
        FieldSpec(
            name="pattern",
            kind="str",
            default="allreduce",
            choices=PATTERNS,
            doc="collective pattern to run",
        ),
        FieldSpec(
            name="message_bytes",
            kind="int",
            default=4096,
            unit="bytes",
            minimum=1,
            maximum=1 << 24,
            doc="payload per rank per stage",
        ),
        FieldSpec(
            name="fanout",
            kind="int",
            default=2,
            unit="ranks",
            minimum=2,
            maximum=64,
            doc="tree fan-out",
        ),
        FieldSpec(
            name="rounds",
            kind="int",
            default=4,
            unit="rounds",
            minimum=1,
            maximum=10_000,
            doc="back-to-back repetitions of the collective",
        ),
    )

    def compile(self, spec: WorkloadSpec, servers: int) -> Tuple[PhaseStep, ...]:
        """One phase step per (round, tree stage) of the pattern."""
        pattern = spec.get("pattern")
        m = int(spec.get("message_bytes"))
        rounds = int(spec.get("rounds"))
        depth = tree_stages(servers + 1, int(spec.get("fanout")))
        elements = float(m // BYTES_PER_ELEMENT)
        steps = []
        for r in range(rounds):
            for d in range(depth):
                last = d == depth - 1
                if pattern == "barrier":
                    step = PhaseStep(
                        f"barrier@{r}.{d}", CTRL_BYTES, CTRL_BYTES, 0.0, 0.0
                    )
                elif pattern == "broadcast":
                    step = PhaseStep(
                        f"broadcast@{r}.{d}", m, CTRL_BYTES, 0.0, 0.0
                    )
                elif pattern == "allreduce":
                    # servers reduce their slice each stage; the client
                    # combines the p partials once per round
                    combine = float(servers) * elements if last else 0.0
                    step = PhaseStep(
                        f"allreduce@{r}.{d}", m, m, elements, combine
                    )
                else:  # alltoall
                    volume = max(servers - 1, 1) * m
                    step = PhaseStep(
                        f"alltoall@{r}.{d}", volume, volume, 0.0, 0.0
                    )
                steps.append(step)
        return tuple(steps)

    def campaign_specs(
        self, base: Optional[WorkloadSpec] = None
    ) -> Tuple[WorkloadSpec, ...]:
        """Factorial axis: every pattern x two message sizes."""
        params = dict(base.params) if base is not None else self.default_params()
        small = int(params["message_bytes"])
        large = min(small * 16, 1 << 24)
        specs = []
        for pattern in PATTERNS:
            for message_bytes in (small, large):
                specs.append(
                    self.spec_from_params(
                        {**params, "pattern": pattern,
                         "message_bytes": message_bytes}
                    )
                )
        return tuple(specs)

    def example_params(self) -> Tuple[Dict[str, Any], ...]:
        """Representative specs for load mixes and docs."""
        return (
            {"pattern": "allreduce", "message_bytes": 4096},
            {"pattern": "broadcast", "message_bytes": 65536},
            {"pattern": "barrier", "rounds": 8},
            {"pattern": "alltoall", "message_bytes": 1024},
        )
