"""The workload-family registry and the family contract.

A :class:`WorkloadFamily` owns a schema (tuple of
:class:`~repro.workloads.spec.FieldSpec`), a compiler from validated
specs to :class:`~repro.workloads.program.PhaseStep` programs, and —
derived from that compiler unless overridden — the closed-form
:class:`~repro.core.parameters.FamilyWorkloadTerms` the model
evaluates.  Families register themselves at import time
(:func:`register_family`); everything downstream — campaigns, serve
queries, loadgen mixes — resolves them by name via
:func:`get_family`, which raises an actionable
:class:`~repro.errors.WorkloadError` for unknown names.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from ..core.parameters import FamilyWorkloadTerms, ModelPlatformParams
from ..errors import WorkloadError
from ..netsim import FaultSpec
from .program import PhaseStep, WorkloadRunResult, run_workload_program
from .spec import FieldSpec, WorkloadSpec


class WorkloadFamily(abc.ABC):
    """One declarative workload family (collective, hpl, opal, ...)."""

    #: registry name, the serve ``family`` field value
    name: str = ""
    #: one-line description for docs and error messages
    summary: str = ""
    #: the schema: every parameter a spec of this family may set
    fields: Tuple[FieldSpec, ...] = ()

    # ---- schema ------------------------------------------------------
    def field_names(self) -> Tuple[str, ...]:
        """The schema field names in declaration order."""
        return tuple(f.name for f in self.fields)

    def default_params(self) -> Dict[str, Any]:
        """Every schema field mapped to its default value."""
        return {f.name: f.default for f in self.fields}

    def validate_params(self, raw: Mapping[str, Any]) -> Dict[str, Any]:
        """Defaults + overrides -> canonical params (schema field order).

        Raises :class:`WorkloadError` with the family, field and value
        for every rejection; unknown fields list the accepted ones.
        """
        known = self.field_names()
        unknown = sorted(set(raw) - set(known) - {"family"})
        if unknown:
            raise WorkloadError(
                f"{self.name}: unknown spec field(s) "
                f"{', '.join(repr(u) for u in unknown)}; "
                f"accepted fields are {', '.join(known)}"
            )
        if "family" in raw and raw["family"] != self.name:
            raise WorkloadError(
                f"{self.name}: spec names a different family "
                f"{raw['family']!r}"
            )
        params = {}
        for fld in self.fields:
            value = raw.get(fld.name, fld.default)
            params[fld.name] = fld.validate(self.name, value)
        self.check(params)
        return params

    def check(self, params: Dict[str, Any]) -> None:
        """Cross-field validation hook (raise WorkloadError)."""

    def spec(self, **overrides: Any) -> WorkloadSpec:
        """Build a validated spec from defaults plus ``overrides``."""
        return self.spec_from_params(overrides)

    def spec_from_params(self, raw: Mapping[str, Any]) -> WorkloadSpec:
        """Validate a raw mapping into this family's frozen spec."""
        params = self.validate_params(raw)
        return WorkloadSpec(
            family=self.name,
            params=tuple((f.name, params[f.name]) for f in self.fields),
        )

    def spec_label(self, spec: WorkloadSpec) -> str:
        """A compact human label for campaign tables and telemetry."""
        parts = []
        defaults = self.default_params()
        for key, value in spec.params:
            if value != defaults.get(key):
                parts.append(f"{key}={value}")
        return ",".join(parts) if parts else "default"

    # ---- lowering ----------------------------------------------------
    @abc.abstractmethod
    def compile(self, spec: WorkloadSpec, servers: int) -> Tuple[PhaseStep, ...]:
        """Lower one (spec, servers) cell into the phase-step program."""

    def terms(self, spec: WorkloadSpec, servers: int) -> FamilyWorkloadTerms:
        """Closed-form regressors of the cell, derived from the program.

        The default sums the compiled steps, so model and simulator
        agree by construction on the work a cell contains.  Families
        with an exact analytical form (Opal) override this.
        """
        steps = self.compile(spec, servers)
        p = float(servers)
        return FamilyWorkloadTerms(
            update_ops=0.0,
            pair_ops=sum(s.server_flops for s in steps),
            seq_ops=sum(s.client_flops for s in steps),
            comm_bytes=sum(p * (s.send_bytes + s.reply_bytes) for s in steps),
            comm_msgs=sum(2.0 * p for _ in steps),
            sync_ops=2.0 * len(steps),
        )

    def simulate(
        self,
        spec: WorkloadSpec,
        servers: int,
        platform,
        seed: int = 0,
        jitter_sigma: float = 0.0,
        faults: Optional[FaultSpec] = None,
    ) -> WorkloadRunResult:
        """Measure one cell on the DES via the generic program."""
        return run_workload_program(
            self.name,
            spec,
            self.compile(spec, servers),
            servers,
            platform,
            seed=seed,
            jitter_sigma=jitter_sigma,
            faults=faults,
        )

    # ---- model plumbing ----------------------------------------------
    def key_data_params(self, platform_spec) -> ModelPlatformParams:
        """Uncalibrated coefficients from a platform's technical key data.

        Family terms count compute work in flops, so every compute
        coefficient is simply the reciprocal compute rate; communication
        and synchronization figures come straight from the spec.
        """
        rate = platform_spec.cpu_rate
        return ModelPlatformParams(
            name=platform_spec.name,
            a1=platform_spec.net_bw,
            b1=platform_spec.net_latency,
            a2=1.0 / rate,
            a3=1.0 / rate,
            a4=1.0 / rate,
            b5=platform_spec.sync_cost,
        )

    # ---- campaign / serving surfaces ---------------------------------
    @abc.abstractmethod
    def campaign_specs(
        self, base: Optional[WorkloadSpec] = None
    ) -> Tuple[WorkloadSpec, ...]:
        """The factorial spec axis of this family's campaign design."""

    def calibration_design(self) -> Tuple[Tuple[WorkloadSpec, int], ...]:
        """(spec, servers) cells the serve calibration fit measures."""
        return tuple(
            (spec, servers)
            for spec in self.campaign_specs(None)
            for servers in (2, 4)
        )

    def example_params(self) -> Tuple[Dict[str, Any], ...]:
        """Parameter draws the load generator samples from."""
        return (self.default_params(),)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WorkloadFamily {self.name}>"


_FAMILIES: Dict[str, WorkloadFamily] = {}


def register_family(cls: Type[WorkloadFamily]) -> Type[WorkloadFamily]:
    """Class decorator: instantiate and register one family."""
    instance = cls()
    if not instance.name:
        raise WorkloadError(f"{cls.__name__} has no family name")
    _FAMILIES[instance.name] = instance
    return cls


def family_names() -> List[str]:
    """Registered family names, sorted."""
    return sorted(_FAMILIES)


def get_family(name: str) -> WorkloadFamily:
    """Resolve one family by name; unknown names list what exists."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload family {name!r}; registered families: "
            f"{', '.join(family_names())}"
        ) from None


def parse_spec(
    data: Mapping[str, Any], family: Optional[str] = None
) -> WorkloadSpec:
    """Bind one raw spec mapping to its family and validate it.

    The family comes from ``family=`` or the mapping's ``"family"``
    key; both present must agree.
    """
    named = data.get("family")
    if family is None:
        family = named
    if family is None:
        raise WorkloadError(
            "spec names no workload family; add a 'family' key "
            f"(one of {', '.join(family_names())})"
        )
    if named is not None and named != family:
        raise WorkloadError(
            f"spec file names family {named!r} but {family!r} was requested"
        )
    return get_family(str(family)).spec_from_params(data)
