"""Factorial campaigns over declarative workload families.

The family-generic mirror of :mod:`repro.experiments`: a design is the
cross product of a family's ``campaign_specs`` with a server-count
axis; every cell measures through the family's DES program, results
feed :func:`~repro.core.calibration.calibrate_terms`, and the fitted
coefficients predict execution-time curves for candidate platforms
from their technical key data.

Determinism contract (same as the Opal campaign): cache keys are
content addresses that include each spec's ``spec_digest``; per-cell
seeds derive from cell content, not design position; the pooled runner
probes the cache before submitting, stores in completion order and
reassembles in design order — so serial and pooled campaigns are
bit-identical and a warm cache executes zero simulations.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.breakdown import TimeBreakdown
from ..core.calibration import CalibrationResult, calibrate_terms
from ..core.model import terms_breakdown
from ..core.prediction import PredictionSeries
from ..core.speedup import speedup_curve
from ..errors import DesignError
from ..experiments.cache import (
    CacheStats,
    ResultCache,
    platform_key_data,
    stats_from_dict,
    stats_to_dict,
)
from ..experiments.measurement import MeasurementStats, summarize
from ..experiments.parallel import default_workers
from ..experiments.runner import DEFAULT_JITTER, derive_cell_seed
from .base import WorkloadFamily, get_family
from .spec import WorkloadSpec, spec_digest


@dataclass(frozen=True)
class WorkloadCell:
    """One (spec, servers) design cell; pickle-able and cache-addressable."""

    spec: WorkloadSpec
    servers: int

    def key_data(self) -> dict:
        """Content that determines this cell's simulated results.

        Duck-typed into :func:`derive_cell_seed`, and the cell portion
        of the cache-key payload; includes the spec digest so a spec
        schema bump invalidates cached cells.
        """
        return {
            "family": self.spec.family,
            "spec": self.spec.params_dict(),
            "spec_digest": spec_digest(self.spec),
            "servers": self.servers,
        }

    @property
    def label(self) -> str:
        """Compact ``family:spec/p=N`` label for tables and telemetry."""
        family = get_family(self.spec.family)
        return f"{self.spec.family}:{family.spec_label(self.spec)}/p={self.servers}"


@dataclass
class WorkloadRecord:
    """One workload cell with its measured outcome."""

    cell: WorkloadCell
    breakdown: TimeBreakdown
    wall_stats: MeasurementStats


def workload_record_to_dict(record: WorkloadRecord) -> dict:
    """The JSON-able cache form of one measured record."""
    return {
        "workload_cell": record.cell.key_data(),
        "breakdown": record.breakdown.as_dict(),
        "wall_stats": stats_to_dict(record.wall_stats),
    }


def workload_record_from_dict(d: dict) -> WorkloadRecord:
    """Rebuild a record from its cache form (inverse of ``to_dict``)."""
    cell_data = d["workload_cell"]
    family = get_family(cell_data["family"])
    cell = WorkloadCell(
        spec=family.spec_from_params(cell_data["spec"]),
        servers=int(cell_data["servers"]),
    )
    b = d["breakdown"]
    return WorkloadRecord(
        cell=cell,
        breakdown=TimeBreakdown(
            update=b["update"], nbint=b["nbint"], seq_comp=b["seq_comp"],
            comm=b["comm"], sync=b["sync"], idle=b["idle"],
        ),
        wall_stats=stats_from_dict(d["wall_stats"]),
    )


def workload_cell_key_payload(
    cell: WorkloadCell,
    platform,
    jitter_sigma: float,
    seed: int,
    repetitions: int,
    faults=None,
) -> dict:
    """Canonical cache-key payload for one workload cell.

    Mirrors :func:`~repro.experiments.cache.cell_key_payload`: the
    serial and pooled runners must produce identical keys, and a chaos
    spec joins the key only when present.
    """
    payload = {
        "kind": "workload-cell",
        "cell": cell.key_data(),
        "platform": platform_key_data(platform),
        "sync_mode": "accounted",
        "jitter_sigma": jitter_sigma,
        "seed": seed,
        "repetitions": repetitions,
    }
    if faults is not None:
        payload["chaos"] = faults.as_dict()
    return payload


def measure_workload_cell(
    platform,
    cell: WorkloadCell,
    jitter_sigma: float = DEFAULT_JITTER,
    repetitions: int = 1,
    base_seed: int = 0,
    faults=None,
) -> WorkloadRecord:
    """Measure one cell (module-level: serial runner == pool worker)."""
    family = get_family(cell.spec.family)
    walls: List[float] = []
    breakdowns: List[TimeBreakdown] = []
    for rep in range(repetitions):
        seed = derive_cell_seed(base_seed, cell, rep, salt="workload")
        result = family.simulate(
            cell.spec,
            cell.servers,
            platform,
            seed=seed,
            jitter_sigma=jitter_sigma,
            faults=faults,
        )
        walls.append(result.wall_time)
        breakdowns.append(result.breakdown)
    return WorkloadRecord(
        cell=cell,
        breakdown=TimeBreakdown.mean(breakdowns),
        wall_stats=summarize(walls),
    )


@dataclass(frozen=True)
class WorkloadCellJob:
    """One workload cell as a pickle-able pool work unit."""

    index: int
    cell: WorkloadCell
    platform: object
    jitter_sigma: float
    repetitions: int
    base_seed: int
    faults: object = None


def run_workload_cell(job: WorkloadCellJob):
    """Pool worker entry point (module-level so it pickles)."""
    record = measure_workload_cell(
        job.platform,
        job.cell,
        jitter_sigma=job.jitter_sigma,
        repetitions=job.repetitions,
        base_seed=job.base_seed,
        faults=job.faults,
    )
    return job.index, record


def run_workload_design(
    cells: Sequence[WorkloadCell],
    platform,
    jitter_sigma: float = DEFAULT_JITTER,
    repetitions: int = 1,
    base_seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    faults=None,
    progress=None,
) -> Tuple[List[WorkloadRecord], int]:
    """Measure every cell, serially or over a process pool.

    Returns ``(records, simulated_cells)`` with records in design
    order.  The cache is probed before any pool submission (hits never
    occupy a worker), stores happen in completion order, records
    reassemble in design order — serial ≡ pooled bit-identical.
    """
    if not cells:
        raise DesignError("empty workload design")
    if workers is not None and workers < 1:
        raise DesignError("workers must be >= 1")
    total = len(cells)
    records: List[Optional[WorkloadRecord]] = [None] * total
    done = 0

    pending: List[Tuple[int, Optional[str]]] = []
    for i, cell in enumerate(cells):
        key = None
        if cache is not None:
            key = ResultCache.key_for(
                workload_cell_key_payload(
                    cell,
                    platform,
                    jitter_sigma=jitter_sigma,
                    seed=base_seed,
                    repetitions=repetitions,
                    faults=faults,
                )
            )
            cached = cache.load(key)
            if cached is not None:
                records[i] = workload_record_from_dict(cached)
                done += 1
                if progress is not None:
                    progress(done, total, records[i])
                continue
        pending.append((i, key))

    if pending and (workers is None or workers == 1):
        for i, key in pending:
            record = measure_workload_cell(
                platform,
                cells[i],
                jitter_sigma=jitter_sigma,
                repetitions=repetitions,
                base_seed=base_seed,
                faults=faults,
            )
            records[i] = record
            if cache is not None and key is not None:
                cache.store(key, workload_record_to_dict(record))
            done += 1
            if progress is not None:
                progress(done, total, record)
    elif pending:
        n_workers = min(workers or default_workers(), len(pending))
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            futures = {}
            for i, key in pending:
                job = WorkloadCellJob(
                    index=i,
                    cell=cells[i],
                    platform=platform,
                    jitter_sigma=jitter_sigma,
                    repetitions=repetitions,
                    base_seed=base_seed,
                    faults=faults,
                )
                futures[executor.submit(run_workload_cell, job)] = key
            for future in as_completed(futures):
                index, record = future.result()
                records[index] = record
                key = futures[future]
                if cache is not None and key is not None:
                    cache.store(key, workload_record_to_dict(record))
                done += 1
                if progress is not None:
                    progress(done, total, record)
    return records, len(pending)  # type: ignore[return-value]


# ----------------------------------------------------------------------
@dataclass
class WorkloadCampaignReport:
    """Everything one family campaign produced."""

    family: str
    reference_platform: str
    calibration: CalibrationResult
    #: design-order (cell label, measured total, predicted total)
    rows: List[Tuple[str, float, float]] = field(default_factory=list)
    #: candidate platform -> spec label -> predicted series
    predictions: Dict[str, Dict[str, PredictionSeries]] = field(
        default_factory=dict
    )
    simulations_run: int = 0
    cache_stats: Optional[CacheStats] = None


def run_workload_campaign(
    family_name: str,
    platform,
    base_spec: Optional[WorkloadSpec] = None,
    servers: Sequence[int] = (1, 2, 4),
    candidates: Sequence[object] = (),
    seed: int = 0,
    jitter_sigma: float = DEFAULT_JITTER,
    repetitions: int = 1,
    workers: Optional[int] = None,
    cache_dir=None,
    faults=None,
    store_dir=None,
    progress=None,
) -> WorkloadCampaignReport:
    """Measure -> calibrate -> predict for one workload family.

    ``platform`` is the reference :class:`PlatformSpec` the factorial
    design measures on; ``candidates`` are further specs predicted from
    their key data with the fitted compute/communication coefficients.
    With ``store_dir`` the records and residuals land in a telemetry
    store under the family's name.
    """
    family: WorkloadFamily = get_family(family_name)
    specs = family.campaign_specs(base_spec)
    cells = [WorkloadCell(spec, p) for spec in specs for p in servers]
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    records, simulated = run_workload_design(
        cells,
        platform,
        jitter_sigma=jitter_sigma,
        repetitions=repetitions,
        base_seed=seed,
        workers=workers,
        cache=cache,
        faults=faults,
        progress=progress,
    )
    observations = [
        (family.terms(r.cell.spec, r.cell.servers), r.breakdown)
        for r in records
    ]
    calibration = calibrate_terms(
        observations, name=f"{platform.name}-{family_name}-fit"
    )

    rows = [
        (r.cell.label, r.breakdown.total, terms_breakdown(
            calibration.params, family.terms(r.cell.spec, r.cell.servers)
        ).total)
        for r in records
    ]

    server_axis = tuple(sorted(set(int(p) for p in servers)))
    predictions: Dict[str, Dict[str, PredictionSeries]] = {}
    for candidate in (platform, *candidates):
        params = (
            calibration.params
            if candidate is platform
            else family.key_data_params(candidate)
        )
        per_spec: Dict[str, PredictionSeries] = {}
        for spec in specs:
            times = tuple(
                terms_breakdown(params, family.terms(spec, p)).total
                for p in server_axis
            )
            per_spec[family.spec_label(spec)] = PredictionSeries(
                platform=candidate.name,
                servers=server_axis,
                times=times,
                speedups=tuple(speedup_curve(list(times))),
            )
        predictions[candidate.name] = per_spec

    if store_dir is not None:
        from ..obs.ingest import ingest_workload_records
        from ..obs.store import TelemetryStore

        ingest_workload_records(
            TelemetryStore(store_dir),
            records,
            params=calibration.params,
            meta={"family": family_name, "platform": platform.name},
        )

    return WorkloadCampaignReport(
        family=family_name,
        reference_platform=platform.name,
        calibration=calibration,
        rows=rows,
        predictions=predictions,
        simulations_run=simulated * repetitions,
        cache_stats=cache.stats if cache is not None else None,
    )


def render_workload_campaign(report: WorkloadCampaignReport) -> str:
    """The campaign as the study a human would read (deterministic)."""
    lines: List[str] = []
    lines.append(
        f"=== workload campaign: {report.family} on "
        f"{report.reference_platform} ==="
    )
    line = f"simulations executed: {report.simulations_run}"
    if report.cache_stats is not None:
        line += f" (cache: {report.cache_stats})"
    lines.append(line)
    lines.append(
        "calibration fit: "
        + ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(report.calibration.r2.items())
        )
    )
    lines.append(
        f"mean relative error: {report.calibration.mean_relative_error():.2%}"
    )
    lines.append("")
    lines.append("cell                                   measured    predicted")
    for label, measured, predicted in report.rows:
        lines.append(f"{label:<38} {measured:>9.4f}s  {predicted:>9.4f}s")
    for platform_name, per_spec in report.predictions.items():
        lines.append("")
        lines.append(f"predicted on {platform_name}:")
        for spec_label, series in per_spec.items():
            times = ", ".join(f"{t:.4f}" for t in series.times)
            lines.append(
                f"  {spec_label:<30} p={list(series.servers)} -> [{times}] "
                f"(best {series.best_time:.4f}s at p={series.saturation})"
            )
    return "\n".join(lines)
