"""Phase accounting built on counter snapshots and virtual wall clocks.

This is the piece the paper argues belongs *inside the middleware*
(Section 3.2): bracket every middleware-level phase with a counter
snapshot and a clock reading, and accumulate per-category wall time and
flop counts.  The Sciddle layer drives one :class:`PhaseAccountant` per
process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..errors import SimulationError
from .counters import HpmCounter, HpmSnapshot

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


@dataclass
class PhaseTotals:
    """Accumulated totals for one accounting category."""

    seconds: float = 0.0
    flops_counted: float = 0.0
    flops_algorithmic: float = 0.0
    intervals: int = 0

    def rate(self) -> float:
        """Counted flop rate over the accumulated wall time."""
        if self.seconds <= 0:
            return 0.0
        return self.flops_counted / self.seconds


class PhaseAccountant:
    """Accumulates wall time and counter deltas per named category.

    ``clock`` is any zero-argument callable returning the current time —
    in simulated runs it is ``lambda: cluster.engine.now``.

    When constructed with ``tracer=`` and ``proc=``, every begin/end
    bracket also opens/closes a span on that tracer, so the raw netsim
    records emitted inside the phase (compute, send, recv_wait) become
    its children — the hierarchy the observability layer exports.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        counter: Optional[HpmCounter] = None,
        tracer: Optional["SpanTracer"] = None,
        proc: str = "",
    ):
        self._clock = clock
        self._counter = counter
        self._open: Optional[tuple] = None
        self.totals: Dict[str, PhaseTotals] = {}
        self._tracer = tracer
        self._proc = proc

    def begin(self, category: str) -> None:
        """Open a phase: record the clock and a counter snapshot."""
        if self._open is not None:
            raise SimulationError(
                f"phase {self._open[0]!r} still open when beginning {category!r}"
            )
        snap = self._counter.snapshot() if self._counter is not None else None
        self._open = (category, self._clock(), snap)
        if self._tracer is not None:
            self._tracer.begin(self._proc, category, time=self._open[1])

    def end(self, category: Optional[str] = None) -> float:
        """Close the open phase, returning its wall duration."""
        if self._open is None:
            raise SimulationError("no phase is open")
        open_cat, start, snap0 = self._open
        if category is not None and category != open_cat:
            raise SimulationError(
                f"closing phase {category!r} but {open_cat!r} is open"
            )
        self._open = None
        duration = self._clock() - start
        if self._tracer is not None:
            self._tracer.end(self._proc, time=start + duration, category=open_cat)
        totals = self.totals.setdefault(open_cat, PhaseTotals())
        totals.seconds += duration
        totals.intervals += 1
        if self._counter is not None and snap0 is not None:
            delta: HpmSnapshot = self._counter.snapshot() - snap0
            totals.flops_counted += delta.flops_counted
            totals.flops_algorithmic += delta.flops_algorithmic
        return duration

    def seconds(self, category: str) -> float:
        """Accumulated wall seconds of one category (0 if unseen)."""
        t = self.totals.get(category)
        return 0.0 if t is None else t.seconds

    def as_dict(self) -> Dict[str, float]:
        """Category -> accumulated seconds."""
        return {k: v.seconds for k, v in self.totals.items()}
