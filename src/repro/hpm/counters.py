"""Simulated hardware performance counters.

The paper reads the Cray J90's low-overhead counter device ``/dev/hpm``
(and the corresponding facilities on the T3E and Pentium) to count
floating point operations and cycles.  Two observations from Section 3.2
drive this model:

* counters are per-CPU and cheap to read (a snapshot, not a sample);
* *the number of floating point operations counted for identical results
  differs across platforms* because vectorizing transformations and
  intrinsic implementations (sqrt, exponentiate) expand to different
  operation counts.  We model this with a per-platform ``flop_inflation``
  multiplier applied to the algorithmic flop count.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HpmSnapshot:
    """An immutable reading of one counter set."""

    flops_counted: float
    flops_algorithmic: float
    busy_seconds: float

    def __sub__(self, other: "HpmSnapshot") -> "HpmSnapshot":
        return HpmSnapshot(
            self.flops_counted - other.flops_counted,
            self.flops_algorithmic - other.flops_algorithmic,
            self.busy_seconds - other.busy_seconds,
        )

    def rate(self) -> float:
        """Counted flop rate (flop/s) over the busy time of this reading."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.flops_counted / self.busy_seconds


@dataclass
class HpmCounter:
    """Accumulating per-CPU (or per-node) counter bank.

    ``flop_inflation`` is how many *counted* hardware operations the
    platform executes per algorithmic operation (>= 1 on vector machines,
    1.0 for the best scalar compiler in the paper's normalization).
    """

    flop_inflation: float = 1.0
    flops_counted: float = field(default=0.0, init=False)
    flops_algorithmic: float = field(default=0.0, init=False)
    busy_seconds: float = field(default=0.0, init=False)
    reads: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.flop_inflation < 1.0:
            raise ValueError(
                "flop_inflation must be >= 1 (the best compiler's count is "
                "the lower bound, Section 4.1)"
            )

    def add(self, flops: float, busy: float) -> None:
        """Account ``flops`` algorithmic operations taking ``busy`` seconds."""
        if flops < 0 or busy < 0:
            raise ValueError("counter increments must be >= 0")
        self.flops_algorithmic += flops
        self.flops_counted += flops * self.flop_inflation
        self.busy_seconds += busy

    def snapshot(self) -> HpmSnapshot:
        """Read the counters (models a read of ``/dev/hpm``)."""
        self.reads += 1
        return HpmSnapshot(self.flops_counted, self.flops_algorithmic, self.busy_seconds)

    def reset(self) -> None:
        """Zero the accumulators (flop inflation is retained)."""
        self.flops_counted = 0.0
        self.flops_algorithmic = 0.0
        self.busy_seconds = 0.0
