"""Sampling-based rate estimation — and why the paper distrusts it.

Section 3.2: "Sampling based tools give a direct estimate for the
compute rate in MFlop/s and are easy to use, but they are extremely
complex to understand.  Sampled computation rates are no substitute for
the simple ratio of operations counted divided by the cycles used."

This module implements the sampling profiler the paper argues against:
it probes the execution trace at fixed wall-clock intervals, classifies
each sample by the phase executing at that instant, and estimates rates
and fractions from sample counts.  Comparing its estimates against the
counter-ratio ground truth (``bench_ablation_sampling.py``) reproduces
the paper's point quantitatively: sampling is biased by phase
granularity and aliasing, counters are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import SimulationError
from ..netsim.trace import Tracer


@dataclass(frozen=True)
class SamplingEstimate:
    """What a sampling profiler reports for one run."""

    samples: int
    interval: float
    #: category -> fraction of samples landing in it
    fractions: Dict[str, float]
    #: estimated busy (compute) fraction
    busy_fraction: float

    def estimated_rate(self, flops_counted: float, wall_time: float) -> float:
        """The naive sampled MFlop/s: counted flops spread over the
        sampled busy time."""
        busy_time = self.busy_fraction * wall_time
        if busy_time <= 0:
            return 0.0
        return flops_counted / busy_time


class SamplingMonitor:
    """Probe a finished run's trace at fixed intervals."""

    def __init__(self, tracer: Tracer, proc: Optional[str] = None) -> None:
        if not tracer.records:
            raise SimulationError("cannot sample an empty trace")
        self.tracer = tracer
        self.proc = proc

    def sample(self, interval: float, phase: float = 0.0) -> SamplingEstimate:
        """Classify one probe per ``interval`` seconds of the run.

        ``phase`` offsets the probe grid — varying it exposes aliasing
        against periodic application structure.
        """
        if interval <= 0:
            raise SimulationError("sampling interval must be positive")
        lo, hi = self.tracer.span()
        if interval >= hi - lo:
            raise SimulationError("interval longer than the run")
        probes = np.arange(lo + phase, hi, interval)
        if len(probes) == 0:
            raise SimulationError("no probes fall inside the run")
        records = [
            r
            for r in self.tracer.records
            if self.proc is None or r.proc == self.proc
        ]
        starts = np.array([r.start for r in records])
        ends = np.array([r.end for r in records])
        counts: Dict[str, int] = {}
        hits = 0
        for t in probes:
            mask = (starts <= t) & (t < ends)
            idx = np.nonzero(mask)[0]
            if len(idx) == 0:
                counts["(unattributed)"] = counts.get("(unattributed)", 0) + 1
                continue
            # ties (phase boundaries): the later-starting record wins,
            # like a real profiler attributing to the current PC
            best = idx[np.argmax(starts[idx])]
            cat = records[best].category
            counts[cat] = counts.get(cat, 0) + 1
            hits += 1
        total = len(probes)
        fractions = {k: v / total for k, v in counts.items()}
        busy = fractions.get("compute", 0.0)
        return SamplingEstimate(
            samples=total,
            interval=interval,
            fractions=fractions,
            busy_fraction=busy,
        )


def counter_rate(flops_counted: float, busy_seconds: float) -> float:
    """The paper's preferred metric: operations counted / cycles used."""
    if busy_seconds <= 0:
        raise SimulationError("no busy time recorded")
    return flops_counted / busy_seconds
