"""Simulated hardware performance monitoring (``/dev/hpm`` substitute)."""

from .accounting import PhaseAccountant, PhaseTotals
from .counters import HpmCounter, HpmSnapshot
from .sampling import SamplingEstimate, SamplingMonitor, counter_rate

__all__ = [
    "HpmCounter",
    "HpmSnapshot",
    "PhaseAccountant",
    "PhaseTotals",
    "SamplingEstimate",
    "SamplingMonitor",
    "counter_rate",
]
