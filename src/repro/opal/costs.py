"""Operation-cost constants of the Opal kernels.

The bridge between the *algorithmic* work of the application (pairs
generated, pairs evaluated, atoms post-processed) and platform-neutral
flop counts.  The anchor is the paper's Table 1: the isolated Opal
kernel — one non-bonded energy evaluation of the medium complex
(n = 4289 mass centers, no cutoff, hence n(n-1)/2 = 9,195,616 pairs) —
executes 325.80 MFlop with the best scalar compiler (PGI on the 400 MHz
Pentium, flop inflation 1.0).  That fixes the algorithmic cost of one
non-bonded pair evaluation; the other constants are consistent estimates
for the cheaper loops (a distance check is a handful of operations, the
client's per-atom bonded work is of order 10^2).

Platform-specific *counted* flops are obtained by multiplying these by
the platform's ``flop_inflation`` (vectorization and intrinsic expansion,
Section 3.2).
"""

from __future__ import annotations

#: Mass centers of the paper's medium complex (Antennapedia + DNA + water).
MEDIUM_N = 4289

#: Pairs in one no-cutoff energy evaluation of the medium complex.
MEDIUM_PAIRS = MEDIUM_N * (MEDIUM_N - 1) // 2  # 9,195,616

#: Algorithmic flops of the Table 1 kernel (best-compiler count).
KERNEL_FLOPS = 325.80e6

#: Algorithmic flops to evaluate the non-bonded energy contribution (van
#: der Waals + Coulomb + gradients) of one pair of mass centers.  This is
#: the per-pair cost behind the model's a3.
NB_PAIR_FLOPS = KERNEL_FLOPS / MEDIUM_PAIRS  # ~35.43

#: Effective algorithmic flops to generate one candidate pair and test its
#: distance against the cutoff during a list update (behind a2).  The raw
#: operation count is ~12 (three subtractions, three squares, two adds, a
#: compare), but the distance filter is a branch-light streaming kernel
#: that runs at several times the throughput of the gather/sqrt-heavy
#: energy kernel, so its *time* cost per pair is equivalent to ~3 energy-
#: kernel flops.  This ratio is what puts the update/energy crossover at
#: the "unrealistic" problem sizes the paper reports (Section 2.2).
UPDATE_PAIR_FLOPS = 3.0

#: Algorithmic flops per mass center of the client's sequential work —
#: the bonded terms (bond, angle, dihedral, improper) plus the reduction
#: of partial energies into total energy/volume/pressure/temperature
#: (behind a4).
SEQ_ATOM_FLOPS = 90.0

#: Bytes to represent the coordinates of one mass center (paper's alpha).
ALPHA_BYTES = 24

#: Bytes of one stored pair-list entry (two 4-byte indices, Section 2.6).
PAIR_ENTRY_BYTES = 8
