"""Molecular topology: the bonded-interaction terms of the potential V.

Holds the index arrays and force-field constants for the first four
terms of the paper's atomic interaction function (Section 2.1):

* covalent bond stretching         ``1/2 K_b (b - b0)^2``
* bond-angle bending               ``1/2 K_theta (theta - theta0)^2``
* improper (harmonic) dihedrals    ``1/2 K_xi (xi - xi0)^2``
* proper (sinusoidal) dihedrals    ``K_phi (1 + cos(n phi - delta))``

All arrays are NumPy; energies/gradients over them are evaluated in
:mod:`repro.opal.forcefield`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import WorkloadError


def _as_index_array(rows: List[Tuple[int, ...]], width: int) -> np.ndarray:
    if not rows:
        return np.zeros((0, width), dtype=np.int64)
    arr = np.asarray(rows, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != width:
        raise WorkloadError(f"expected index tuples of width {width}")
    return arr


@dataclass
class Topology:
    """Bonded terms of one molecular system."""

    n_atoms: int
    #: (nb, 2) atom indices
    bonds: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), dtype=np.int64))
    bond_k: np.ndarray = field(default_factory=lambda: np.zeros(0))
    bond_b0: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: (na, 3) indices; the angle is at the middle atom
    angles: np.ndarray = field(default_factory=lambda: np.zeros((0, 3), dtype=np.int64))
    angle_k: np.ndarray = field(default_factory=lambda: np.zeros(0))
    angle_theta0: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: (nd, 4) proper dihedrals (may make full turns)
    dihedrals: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 4), dtype=np.int64)
    )
    dihedral_k: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dihedral_mult: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dihedral_delta: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: (ni, 4) improper dihedrals (harmonically restrained)
    impropers: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 4), dtype=np.int64)
    )
    improper_k: np.ndarray = field(default_factory=lambda: np.zeros(0))
    improper_xi0: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check index ranges and parameter-array lengths."""
        if self.n_atoms < 1:
            raise WorkloadError("topology needs at least one atom")
        for name, idx, params in (
            ("bonds", self.bonds, (self.bond_k, self.bond_b0)),
            ("angles", self.angles, (self.angle_k, self.angle_theta0)),
            (
                "dihedrals",
                self.dihedrals,
                (self.dihedral_k, self.dihedral_mult, self.dihedral_delta),
            ),
            ("impropers", self.impropers, (self.improper_k, self.improper_xi0)),
        ):
            if idx.size and (idx.min() < 0 or idx.max() >= self.n_atoms):
                raise WorkloadError(f"{name}: atom index out of range")
            for parr in params:
                if len(parr) != len(idx):
                    raise WorkloadError(
                        f"{name}: parameter array length {len(parr)} != {len(idx)}"
                    )
            if idx.size:
                # no repeated atom within one term
                for row in range(idx.shape[0]):
                    if len(set(idx[row].tolist())) != idx.shape[1]:
                        raise WorkloadError(f"{name}: repeated atom in term {row}")

    # ------------------------------------------------------------------
    @property
    def n_bonded_terms(self) -> int:
        """Total count of bonded interaction terms."""
        return (
            len(self.bonds)
            + len(self.angles)
            + len(self.dihedrals)
            + len(self.impropers)
        )

    def excluded_pairs(self) -> np.ndarray:
        """(m, 2) sorted unique pairs excluded from non-bonded terms.

        Standard 1-2 (bond) and 1-3 (angle end atoms) exclusions.
        """
        rows = []
        if len(self.bonds):
            rows.append(np.sort(self.bonds, axis=1))
        if len(self.angles):
            rows.append(np.sort(self.angles[:, [0, 2]], axis=1))
        if not rows:
            return np.zeros((0, 2), dtype=np.int64)
        allpairs = np.vstack(rows)
        return np.unique(allpairs, axis=0)


# ----------------------------------------------------------------------
def chain_topology(
    n_atoms: int,
    offset: int = 0,
    bond_k: float = 300.0,
    bond_b0: float = 1.5,
    angle_k: float = 50.0,
    angle_theta0: float = 1.911,  # ~109.5 degrees
    dihedral_k: float = 1.4,
    dihedral_mult: int = 3,
    dihedral_delta: float = 0.0,
    improper_every: int = 5,
    improper_k: float = 20.0,
) -> Topology:
    """Topology of a linear polymer chain of ``n_atoms`` atoms.

    The synthetic stand-in for a protein backbone: bonds between
    neighbours, angles over consecutive triples, a proper dihedral on
    every consecutive quadruple and a harmonic improper on every
    ``improper_every``-th quadruple (modelling rings/chirality).
    ``offset`` shifts all indices (the chain may sit inside a larger
    system).
    """
    if n_atoms < 2:
        raise WorkloadError("a chain needs at least two atoms")
    bonds = [(offset + i, offset + i + 1) for i in range(n_atoms - 1)]
    angles = [(offset + i, offset + i + 1, offset + i + 2) for i in range(n_atoms - 2)]
    quads = [
        (offset + i, offset + i + 1, offset + i + 2, offset + i + 3)
        for i in range(n_atoms - 3)
    ]
    impropers = quads[::improper_every] if improper_every > 0 else []
    return Topology(
        n_atoms=offset + n_atoms,
        bonds=_as_index_array(bonds, 2),
        bond_k=np.full(len(bonds), bond_k),
        bond_b0=np.full(len(bonds), bond_b0),
        angles=_as_index_array(angles, 3),
        angle_k=np.full(len(angles), angle_k),
        angle_theta0=np.full(len(angles), angle_theta0),
        dihedrals=_as_index_array(quads, 4),
        dihedral_k=np.full(len(quads), dihedral_k),
        dihedral_mult=np.full(len(quads), float(dihedral_mult)),
        dihedral_delta=np.full(len(quads), dihedral_delta),
        impropers=_as_index_array(list(impropers), 4),
        improper_k=np.full(len(impropers), improper_k),
        improper_xi0=np.full(len(impropers), 0.6),
    )
