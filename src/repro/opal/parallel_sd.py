"""Space-decomposition Opal: the SPMD alternative, simulated.

:mod:`repro.opal.decomposition` models the Section 2.1 alternatives
analytically; this module *runs* one of them.  The program is the
standard slab-decomposed MD main loop:

* ``p`` peers own contiguous slabs of the box (1-D decomposition along
  x); there is no client — the coordination pattern is neighbour halo
  exchange plus a tree reduction of the partial energies;
* per step each peer sends its boundary region (one cutoff deep,
  ``alpha * halo`` bytes) to each slab neighbour, computes the pair work
  of its slab + halo, and joins an energy reduction;
* on update steps the peer additionally rebuilds its local pair list
  (quadratic in its slab+halo population).

With a 1-D decomposition the halo is a slab face — its size is
*independent of p* — so per-peer communication stays constant while
compute shrinks: the scalability the replicated-data client/server
structure cannot offer.  (The 3-D analytic model in ``decomposition``
has still smaller halos; 1-D is the honest-to-implement variant and is
what the simulated-vs-analytic comparison in the EXT6 bench uses.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.breakdown import TimeBreakdown
from ..core.parameters import ApplicationParams
from ..errors import WorkloadError
from ..hpm import PhaseAccountant
from ..netsim import Barrier, Compute, Recv, Send
from ..pvm import PvmSystem
from . import costs

#: message tags
_TAG_HALO = 31
_TAG_REDUCE = 32
_TAG_BCAST = 33


@dataclass
class SdRunResult:
    """Outcome of one simulated space-decomposition run."""

    app: ApplicationParams
    platform_name: str
    wall_time: float
    breakdown: TimeBreakdown
    halo_atoms: float
    peer_compute_seconds: List[float] = field(default_factory=list)


def sd_halo_atoms(app: ApplicationParams) -> float:
    """Mass centers in one slab's halo (both faces, one cutoff deep)."""
    if app.cutoff is None:
        return float(app.n)  # degenerate: everyone is a neighbour
    box = app.molecule.box_edge
    slab_width = box / app.p
    if app.cutoff >= slab_width:
        return float(app.n)
    density = app.molecule.density
    return min(2.0 * app.cutoff * box * box * density, float(app.n))


def _sd_peer(
    task,
    app: ApplicationParams,
    index: int,
    peers: List[int],
    accountant: PhaseAccountant,
    sync_cost: float,
    work_noise: float,
    rng: np.random.Generator,
    result_slot: dict,
):
    """One SPMD peer of the slab-decomposed main loop."""
    p = app.p
    halo = sd_halo_atoms(app)
    local_n = app.n / p + halo

    # per-step pair work: this slab's share of the global active pairs
    from ..core.parameters import energy_pair_work, update_pair_work
    from ..core.space import SpaceModel

    # memory: the slab's pair-list share plus halo-augmented local arrays
    space = SpaceModel(app.molecule)
    working_set = (
        space.pair_list_total() * (local_n / app.n)
        + 48.0 * local_n
        + space.interaction_tables()
    )
    energy_pairs = energy_pair_work(app.n, app.n_tilde) / p
    # update work: quadratic scan over the slab + halo population
    update_pairs = max(
        update_pair_work(app.n, app.gamma) * (local_n / app.n) ** 2 * p, local_n
    )
    halo_bytes = app.alpha * halo / 2.0  # one face per neighbour

    left = peers[index - 1] if index > 0 else None
    right = peers[index + 1] if index < p - 1 else None
    t0 = task.now

    for step in range(app.steps):
        # ---- halo exchange --------------------------------------------
        accountant.begin("comm")
        for neighbour in (left, right):
            if neighbour is not None:
                yield Send(neighbour, nbytes=halo_bytes, tag=_TAG_HALO + step % 2)
        for neighbour in (left, right):
            if neighbour is not None:
                yield Recv(source=neighbour, tag=_TAG_HALO + step % 2)
        accountant.end()

        # ---- local computation -----------------------------------------
        noise = 1.0 + work_noise * float(rng.standard_normal())
        flops = energy_pairs * costs.NB_PAIR_FLOPS * max(noise, 0.5)
        if step % app.update_interval == 0:
            flops += update_pairs * costs.UPDATE_PAIR_FLOPS
        flops += costs.SEQ_ATOM_FLOPS * local_n  # local bonded terms
        accountant.begin("compute")
        yield Compute(flops=flops, working_set=working_set)
        accountant.end()

        # ---- energy reduction (binomial tree to 0, then broadcast) ------
        accountant.begin("reduce")
        tag_r = _TAG_REDUCE + 10 * (step % 2)
        mask = 1
        while mask < p:
            if index & mask:
                yield Send(peers[index - mask], nbytes=64, tag=tag_r)
                break
            partner = index + mask
            if partner < p:
                yield Recv(source=peers[partner], tag=tag_r)
            mask <<= 1
        tag_b = _TAG_BCAST + 10 * (step % 2)
        top = 1
        while top < p:
            top <<= 1
        mask = top >> 1
        while mask > 0:
            if index % (mask * 2) == 0 and index + mask < p:
                yield Send(peers[index + mask], nbytes=64, tag=tag_b)
            elif index % (mask * 2) == mask:
                yield Recv(source=peers[index - mask], tag=tag_b)
            mask >>= 1
        accountant.end()
        yield Barrier(f"sd-step{step}", count=p, cost=sync_cost)

    if index == 0:
        result_slot["wall"] = task.now - t0


def run_parallel_opal_sd(
    app: ApplicationParams,
    platform,
    seed: int = 0,
    jitter_sigma: float = 0.0,
    work_noise: float = 0.01,
) -> SdRunResult:
    """Simulate the slab-decomposed Opal on ``platform``.

    Unlike the client/server RD driver this is a flat SPMD program: no
    coordinator, neighbour messages only, one small reduction per step.
    """
    p = app.servers
    if p < 1:
        raise WorkloadError("servers must be >= 1")
    cluster = platform.build_cluster(p, seed=seed, jitter_sigma=jitter_sigma)
    pvm = PvmSystem(cluster, barrier_cost=platform.sync_cost)

    clock = lambda: cluster.engine.now  # noqa: E731
    accountants = [PhaseAccountant(clock) for _ in range(p)]
    slot: dict = {}

    # spawn with placeholder tid lists, patch after spawning
    peers: List[int] = []
    procs = []
    for i in range(p):
        proc = pvm.spawn(
            f"sd-peer{i}",
            platform.place(cluster, i),
            _sd_peer,
            app,
            i,
            peers,  # shared list, filled below before t=0 runs
            accountants[i],
            platform.sync_cost,
            work_noise,
            cluster.rng.stream(f"sd/peer{i}/work-noise"),
            slot,
        )
        procs.append(proc)
    peers.extend(proc.tid for proc in procs)
    pvm.run()
    wall = slot["wall"]

    compute = [a.seconds("compute") for a in accountants]
    comm = [a.seconds("comm") + a.seconds("reduce") for a in accountants]
    mean_compute = float(np.mean(compute))
    mean_comm = float(np.mean(comm))
    sync = app.steps * platform.sync_cost
    idle = max(wall - mean_compute - mean_comm - sync, 0.0)
    breakdown = TimeBreakdown(
        update=0.0,
        nbint=mean_compute,
        seq_comp=0.0,
        comm=mean_comm,
        sync=sync,
        idle=idle,
    )
    return SdRunResult(
        app=app,
        platform_name=platform.name,
        wall_time=wall,
        breakdown=breakdown,
        halo_atoms=sd_halo_atoms(app),
        peer_compute_seconds=compute,
    )
