"""Pseudo-random distribution of pair work among servers.

Opal deals the non-bonded atom pairs to servers with a "pseudo-random
strategy" meant to balance the workload.  The paper's instrumentation
revealed, "to the surprise of the Opal implementors", a load-balancing
problem for runs with an **even number of servers** (Section 2.4).  The
paper gives no mechanism; we reconstruct a historically plausible one
(documented in DESIGN.md):

The dealer hands out fixed-size *blocks* of pairs.  Most blocks are
routed by a well-mixed hash, but a fraction of the traffic goes through
a cheap parity-based fast path (`block & 1` folded into the server
index) — a classic weak-randomizer defect.  For odd ``p`` the parity
classes sweep all servers and the defect is invisible; for even ``p``
the fast path can only ever reach the even-indexed servers, so they
receive a systematically larger share.

The resulting imbalance is moderate (default ~10% excess on half the
servers), matching a paper whose model — which assumes perfect balance —
still fits measurements "excellently" while the breakdown charts show
visible idle time at even server counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

#: Pairs per dealt block.
DEFAULT_BLOCK = 256

#: Fraction of blocks routed through the parity-defective fast path.
DEFAULT_DEFECT = 0.10


def _mix(x: np.ndarray) -> np.ndarray:
    """A 64-bit multiplicative mixer (splitmix64 finalizer, vectorized)."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(
        0xFFFFFFFFFFFFFFFF
    )
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(
        0xFFFFFFFFFFFFFFFF
    )
    return x ^ (x >> np.uint64(31))


@dataclass(frozen=True)
class PairDistribution:
    """Deterministic dealer of pair blocks to ``servers`` servers."""

    servers: int
    seed: int = 0
    block: int = DEFAULT_BLOCK
    defect: float = DEFAULT_DEFECT

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise WorkloadError("servers must be >= 1")
        if self.block < 1:
            raise WorkloadError("block must be >= 1")
        if not 0.0 <= self.defect <= 1.0:
            raise WorkloadError("defect fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    def assign_blocks(self, n_blocks: int) -> np.ndarray:
        """Server index of each block, shape (n_blocks,)."""
        if n_blocks < 0:
            raise WorkloadError("n_blocks must be >= 0")
        p = self.servers
        if p == 1 or n_blocks == 0:
            return np.zeros(n_blocks, dtype=np.int64)
        b = np.arange(n_blocks, dtype=np.uint64)
        seed_mix = np.uint64((self.seed * 0x5851F42D4C957F2D) % (1 << 64))
        h = _mix(b + seed_mix)
        good = (h % np.uint64(p)).astype(np.int64)
        # defective fast path: parity of the raw block index folded into
        # an even server slot — only reachable slots are the even ones.
        takes_fast_path = (_mix(b ^ np.uint64(0xD6E8FEB86659FD93)) % np.uint64(1000)) < np.uint64(
            int(self.defect * 1000)
        )
        if p % 2 == 0:
            fast = (2 * ((h >> np.uint64(32)) % np.uint64(p // 2))).astype(np.int64)
        else:
            # odd p: the same fold still reaches every server
            fast = ((2 * ((h >> np.uint64(32)) % np.uint64(p))) % np.uint64(p)).astype(
                np.int64
            )
        return np.where(takes_fast_path, fast, good)

    def shares(self, total_pairs: float) -> np.ndarray:
        """Pairs per server, shape (servers,); sums to ``total_pairs``.

        Whole blocks are dealt; the final fractional block goes to the
        server owning it.
        """
        if total_pairs < 0:
            raise WorkloadError("total_pairs must be >= 0")
        p = self.servers
        if total_pairs == 0:
            return np.zeros(p)
        n_blocks = int(np.ceil(total_pairs / self.block))
        owners = self.assign_blocks(n_blocks)
        counts = np.bincount(owners, minlength=p).astype(float) * self.block
        # trim the overshoot of the last partial block from its owner
        overshoot = n_blocks * self.block - total_pairs
        counts[owners[-1]] -= overshoot
        return counts

    # ------------------------------------------------------------------
    def imbalance(self, total_pairs: float) -> float:
        """max/mean share ratio (1.0 = perfectly balanced)."""
        s = self.shares(total_pairs)
        mean = s.mean()
        if mean <= 0:
            return 1.0
        return float(s.max() / mean)

    def expected_imbalance(self) -> float:
        """Asymptotic max/mean ratio implied by the defect fraction.

        Even p: even servers get (1-d)/p + d/(p/2) of the work ->
        ratio 1 + d.  Odd p: 1.0.
        """
        if self.servers == 1 or self.servers % 2 == 1:
            return 1.0
        return 1.0 + self.defect
