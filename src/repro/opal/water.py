"""United-water vs explicit three-site water (Section 2.1).

The paper reports that switching the solvent to "water molecules as
single units centered in the oxygen atoms" instead of three individual
atoms accomplished (i) a reduced server workload, (ii) a smaller pair
list, and (iii) *increased* accuracy of the energies for small cutoff
radii (a whole molecule is either in or out of the cutoff sphere, so no
broken-dipole artifacts).  This module quantifies all three claims for a
given complex, supporting the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from .complexes import ComplexSpec


@dataclass(frozen=True)
class WaterModelComparison:
    """Workload/list-size effects of the united-water optimization."""

    spec: ComplexSpec
    cutoff: float
    #: mass centers with united / explicit water
    n_united: int
    n_explicit: int
    #: active pairs per energy evaluation
    pairs_united: float
    pairs_explicit: float
    #: candidate pairs per list update
    candidates_united: float
    candidates_explicit: float

    @property
    def workload_reduction(self) -> float:
        """Fraction of energy-evaluation work removed (claim i)."""
        return 1.0 - self.pairs_united / self.pairs_explicit

    @property
    def list_size_reduction(self) -> float:
        """Fraction of pair-list entries removed (claim ii)."""
        return 1.0 - self.pairs_united / self.pairs_explicit

    @property
    def update_reduction(self) -> float:
        """Fraction of update-scan work removed."""
        return 1.0 - self.candidates_united / self.candidates_explicit


def compare_water_models(spec: ComplexSpec, cutoff: float) -> WaterModelComparison:
    """Analytic comparison of the two water models for one complex.

    Active pairs scale as ``n_tilde(c) * n`` with ``n_tilde`` linear in
    the center density; the explicit model triples the solvent's site
    count, raising both n and the density.
    """
    if cutoff <= 0:
        raise WorkloadError("cutoff must be positive")
    n_u = spec.n
    n_e = spec.n_explicit
    density_ratio = n_e / n_u  # same volume, more sites
    explicit = ComplexSpec(
        name=f"{spec.name}-explicit",
        protein_atoms=spec.protein_atoms,
        waters=spec.waters,
        density=spec.density * density_ratio,
        description=f"{spec.description} (3-site water)",
    )
    # explicit water triples the solvent sites: its n_tilde sees them all
    pairs_u = spec.active_pairs(cutoff)
    pairs_e = explicit.n_tilde(cutoff) * n_e
    pairs_e = min(pairs_e, n_e * (n_e - 1) / 2.0)
    cand_u = n_u * (n_u - 1) / 2.0
    cand_e = n_e * (n_e - 1) / 2.0
    return WaterModelComparison(
        spec=spec,
        cutoff=cutoff,
        n_united=n_u,
        n_explicit=n_e,
        pairs_united=pairs_u,
        pairs_explicit=pairs_e,
        candidates_united=cand_u,
        candidates_explicit=cand_e,
    )


def dipole_truncation_error(cutoff: float, united: bool) -> float:
    """A stylized model of the cutoff accuracy claim (iii).

    Explicit water lets the cutoff sphere slice through molecules,
    leaving unbalanced partial charges on the boundary; the resulting
    energy error scales with the boundary-crossing probability
    ~ (molecular extent / cutoff).  United water cannot be sliced, so
    only the ordinary 1/c^3 tail truncation remains.  Returned value is
    a dimensionless relative-error proxy (smaller is better).
    """
    if cutoff <= 0:
        raise WorkloadError("cutoff must be positive")
    tail = 1.0 / cutoff**3
    if united:
        return tail
    molecular_extent = 1.5  # O-H span in Angstrom
    return tail + molecular_extent / cutoff * 0.1
