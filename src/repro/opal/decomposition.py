"""Parallelization alternatives: replicated-data vs space vs force
decomposition.

The paper (Section 2.1, "Parallelization Alternatives") notes that
Opal's replicated-data method is not the only option: "the
geometric- or space-decomposition (SD) method, in which each processor
considers the mass centers in its sub-domain", and "the force-
decomposition (FD) method in which the force matrix F_ij is partitioned
by blocks among the processors" [Plimpton & Hendrickson].  This module
extends the analytical model to all three, with the standard
communication-volume results:

=====  =====================================  =========================
RD     all-coordinates exchange per server    comm ~ p * alpha * n
SD     halo exchange with spatial neighbours  comm ~ alpha * surface
FD     row/column fold over sqrt(p) blocks    comm ~ alpha * n / sqrt(p)
=====  =====================================  =========================

Computation divides by p in all three (same pair work); memory differs:
RD replicates O(n) per node, SD holds O(n/p + halo), FD O(n/sqrt(p)).
The comparison quantifies when Opal's RD choice stops being reasonable —
a question the paper raises and leaves open.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.parameters import (
    ApplicationParams,
    ModelPlatformParams,
    energy_pair_work,
    update_pair_work,
)
from ..errors import ModelError


@dataclass(frozen=True)
class DecompositionPrediction:
    """Predicted per-run times and per-node memory for one method."""

    method: str
    t_comp: float
    t_comm: float
    t_other: float  # sequential + sync
    memory_bytes: float

    @property
    def total(self) -> float:
        """Predicted total execution time, seconds."""
        return self.t_comp + self.t_comm + self.t_other


class DecompositionModel:
    """Base: shared computation/sequential/sync structure."""

    method = "base"

    def __init__(self, platform: ModelPlatformParams) -> None:
        self.platform = platform

    # -- shared parts ---------------------------------------------------
    def t_comp(self, app: ApplicationParams) -> float:
        """Parallel computation time (identical for all methods)."""
        pl = self.platform
        per_update = update_pair_work(app.n, app.gamma)
        pairs = energy_pair_work(app.n, app.n_tilde)
        return app.s * (
            pl.a2 * app.update_rate * per_update + pl.a3 * pairs
        ) / app.p

    def t_other(self, app: ApplicationParams) -> float:
        """Sequential + synchronization time."""
        pl = self.platform
        return pl.a4 * app.s * app.n + 2.0 * app.s * (app.update_rate + 1.0) * pl.b5

    # -- per-method parts --------------------------------------------------
    def t_comm(self, app: ApplicationParams) -> float:
        """Per-run communication time of this method."""
        raise NotImplementedError

    def memory_bytes(self, app: ApplicationParams) -> float:
        """Per-node memory footprint of this method."""
        raise NotImplementedError

    def predict(self, app: ApplicationParams) -> DecompositionPrediction:
        """Full prediction for one configuration."""
        return DecompositionPrediction(
            method=self.method,
            t_comp=self.t_comp(app),
            t_comm=self.t_comm(app),
            t_other=self.t_other(app),
            memory_bytes=self.memory_bytes(app),
        )


class ReplicatedData(DecompositionModel):
    """Opal's method: client-serialized coordinate scatter + gradient
    gather to/from every server (the model's eq. (6))."""

    method = "RD"

    def t_comm(self, app: ApplicationParams) -> float:
        """Client-serialized scatter/gather traffic (eq. 6)."""
        pl = self.platform
        u = app.update_rate
        return app.s * (
            app.p * (app.alpha / pl.a1) * (u + 2.0) * app.n
            + 2.0 * app.p * pl.b1 * (u + 1.0)
        )

    def memory_bytes(self, app: ApplicationParams) -> float:
        """Full replicas plus 1/p of the pair list."""
        # full coordinate/gradient replicas plus 1/p of the pair list
        g = abs(1.0 - 2.0 * app.gamma)
        return 48.0 * app.n + 8.0 * g * app.n * app.n / app.p


class SpaceDecomposition(DecompositionModel):
    """Geometric domains with halo exchange.

    Each of p cubic subdomains (edge ``L = (V/p)^(1/3)``) imports a halo
    one cutoff deep from its six face neighbours; exchanges proceed
    concurrently on a switched fabric (three sequential phases, one per
    dimension).  Without a cutoff the halo is the whole box and SD
    degenerates to an all-gather of everything — which is why SD only
    makes sense for cutoff simulations.
    """

    method = "SD"

    def halo_atoms(self, app: ApplicationParams) -> float:
        """Mass centers imported from the six face neighbours."""
        volume = app.molecule.volume
        density = app.molecule.density
        sub_edge = (volume / app.p) ** (1.0 / 3.0)
        if app.cutoff is None or app.cutoff >= sub_edge:
            return float(app.n)  # degenerate: import everyone
        halo_volume = 6.0 * sub_edge * sub_edge * app.cutoff
        return min(density * halo_volume, float(app.n))

    def t_comm(self, app: ApplicationParams) -> float:
        """Halo exchanges plus a log-depth energy reduction."""
        if app.p == 1:
            return 0.0  # a single domain has no neighbours
        pl = self.platform
        u = app.update_rate
        halo = self.halo_atoms(app)
        # per step: three exchange phases (x, y, z), each two messages of
        # a third of the halo; plus the same again on update steps for
        # list building; plus a small global reduction for the energies
        per_step = 6.0 * (pl.b1 + (app.alpha / pl.a1) * halo / 3.0)
        reduction = math.ceil(math.log2(max(app.p, 2))) * (pl.b1 + 64.0 / pl.a1)
        return app.s * ((1.0 + u) * per_step + reduction)

    def memory_bytes(self, app: ApplicationParams) -> float:
        """Owned subdomain plus halo plus 1/p of the pair list."""
        g = abs(1.0 - 2.0 * app.gamma)
        # an atom is stored once even when the halo degenerates to the
        # whole box, so the resident set never exceeds the full system
        owned = min(app.n / app.p + self.halo_atoms(app), float(app.n))
        return 48.0 * owned + 8.0 * g * app.n * app.n / app.p


class ForceDecomposition(DecompositionModel):
    """Plimpton-Hendrickson block decomposition of the force matrix.

    Processors form a sqrt(p) x sqrt(p) grid; each step every processor
    expands a coordinate slice of n/sqrt(p) across its row and folds a
    force slice of n/sqrt(p) down its column — communication volume
    O(n/sqrt(p)) with O(log p) latency terms.
    """

    method = "FD"

    def t_comm(self, app: ApplicationParams) -> float:
        """Row expand + column fold over the sqrt(p) grid."""
        if app.p == 1:
            return 0.0  # the full force matrix lives on one processor
        pl = self.platform
        u = app.update_rate
        root_p = math.sqrt(app.p)
        slice_bytes = app.alpha * app.n / root_p
        stages = math.ceil(math.log2(max(app.p, 2)))
        per_step = 2.0 * (stages * pl.b1 + 2.0 * slice_bytes / pl.a1)
        return app.s * (1.0 + u / 2.0) * per_step

    def memory_bytes(self, app: ApplicationParams) -> float:
        """O(n/sqrt(p)) slices plus 1/p of the pair list."""
        g = abs(1.0 - 2.0 * app.gamma)
        return 48.0 * app.n / math.sqrt(app.p) + 8.0 * g * app.n * app.n / app.p


ALL_METHODS = (ReplicatedData, SpaceDecomposition, ForceDecomposition)


def compare_decompositions(
    platform: ModelPlatformParams,
    app: ApplicationParams,
    servers: Iterable[int] = tuple(range(1, 8)),
) -> Dict[str, List[DecompositionPrediction]]:
    """Predictions of all three methods over a range of server counts."""
    out: Dict[str, List[DecompositionPrediction]] = {}
    for cls in ALL_METHODS:
        model = cls(platform)
        rows = []
        for p in servers:
            if p < 1:
                raise ModelError("server counts must be >= 1")
            rows.append(model.predict(app.with_(servers=p)))
        out[cls.method] = rows
    return out


def best_method(
    platform: ModelPlatformParams, app: ApplicationParams
) -> str:
    """The fastest method for one configuration."""
    preds = {
        cls.method: cls(platform).predict(app).total for cls in ALL_METHODS
    }
    return min(preds, key=preds.get)
