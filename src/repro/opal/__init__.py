"""The Opal molecular dynamics application, rebuilt from scratch.

Two coupled faces of the same application:

* the **physics engine** (:mod:`~repro.opal.system`,
  :mod:`~repro.opal.forcefield`, :mod:`~repro.opal.pairlist`,
  :mod:`~repro.opal.minimize`, :mod:`~repro.opal.dynamics`,
  :mod:`~repro.opal.serial`) — a real, numerically verified
  implementation of the paper's interaction function V with cut-off pair
  lists, periodic updates and the united-water model;
* the **performance face** (:mod:`~repro.opal.costs`,
  :mod:`~repro.opal.workload`, :mod:`~repro.opal.distribution`,
  :mod:`~repro.opal.parallel`) — the same application expressed as
  operation counts and driven as a client/server program over
  Sciddle/PVM on the simulated cluster.

The performance-face entry points (``OpalWorkload``,
``run_parallel_opal``, ``OpalRunResult``, ``make_opal_interface``) are
loaded lazily via PEP 562 to keep the ``repro.core`` <-> ``repro.opal``
import graph acyclic (the core model needs only :mod:`costs` and
:mod:`complexes` from here).
"""

from . import costs
from .complexes import (
    LARGE,
    MEDIUM,
    NAMED_COMPLEXES,
    SMALL,
    ComplexSpec,
    get_complex,
)
from .distribution import PairDistribution
from .dynamics import KB, MDResult, StepRecord, VelocityVerlet
from .forcefield import (
    EnergyReport,
    angle_energy,
    bond_energy,
    dihedral_energy,
    improper_energy,
    nonbonded_energy,
    total_energy,
)
from .minimize import MinimizationResult, minimize_lbfgs, steepest_descent
from .observables import (
    MsdResult,
    RdfResult,
    mean_square_displacement,
    radial_distribution,
    running_averages,
)
from .pairlist import PairListBuilder, PairListStats, VerletPairList
from .serial import OpalSerial, SerialRunStats
from .system import COULOMB_K, MolecularSystem, build_system
from .topology import Topology, chain_topology
from .trajectory import Trajectory, record_dynamics
from .water import WaterModelComparison, compare_water_models, dipole_truncation_error

_LAZY = {
    "OpalWorkload": ("repro.opal.workload", "OpalWorkload"),
    "OpalRunResult": ("repro.opal.parallel", "OpalRunResult"),
    "run_parallel_opal": ("repro.opal.parallel", "run_parallel_opal"),
    "make_opal_interface": ("repro.opal.parallel", "make_opal_interface"),
    "PhysicsRunResult": ("repro.opal.parallel_physics", "PhysicsRunResult"),
    "run_parallel_opal_physics": (
        "repro.opal.parallel_physics",
        "run_parallel_opal_physics",
    ),
    "partition_candidate_pairs": (
        "repro.opal.parallel_physics",
        "partition_candidate_pairs",
    ),
    "compare_decompositions": ("repro.opal.decomposition", "compare_decompositions"),
    "best_method": ("repro.opal.decomposition", "best_method"),
    "ReplicatedData": ("repro.opal.decomposition", "ReplicatedData"),
    "SpaceDecomposition": ("repro.opal.decomposition", "SpaceDecomposition"),
    "ForceDecomposition": ("repro.opal.decomposition", "ForceDecomposition"),
    "run_parallel_opal_sd": ("repro.opal.parallel_sd", "run_parallel_opal_sd"),
    "SdRunResult": ("repro.opal.parallel_sd", "SdRunResult"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module, attr = _LAZY[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "COULOMB_K",
    "ComplexSpec",
    "EnergyReport",
    "KB",
    "LARGE",
    "MDResult",
    "MEDIUM",
    "MinimizationResult",
    "MsdResult",
    "RdfResult",
    "MolecularSystem",
    "NAMED_COMPLEXES",
    "OpalRunResult",
    "OpalSerial",
    "OpalWorkload",
    "PairDistribution",
    "PairListBuilder",
    "PairListStats",
    "SMALL",
    "SerialRunStats",
    "StepRecord",
    "Topology",
    "Trajectory",
    "VelocityVerlet",
    "VerletPairList",
    "WaterModelComparison",
    "angle_energy",
    "bond_energy",
    "build_system",
    "chain_topology",
    "compare_water_models",
    "costs",
    "dihedral_energy",
    "dipole_truncation_error",
    "get_complex",
    "improper_energy",
    "make_opal_interface",
    "mean_square_displacement",
    "minimize_lbfgs",
    "nonbonded_energy",
    "radial_distribution",
    "record_dynamics",
    "running_averages",
    "run_parallel_opal",
    "steepest_descent",
    "total_energy",
]
