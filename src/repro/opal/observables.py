"""Structural and dynamical observables of MD trajectories.

The real Opal is used for "energy minimization and molecular dynamics"
of biomolecules; its users judge a simulation by physical observables,
not timings.  This module provides the standard ones over our engine's
output — the radial distribution function g(r), mean square
displacement / diffusion, and running-average reporting of the per-step
quantities — completing the application side of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from .dynamics import MDResult
from .system import MolecularSystem


@dataclass(frozen=True)
class RdfResult:
    """Radial distribution function g(r) on a fixed radial grid."""

    r: np.ndarray  # bin centers [Angstrom]
    g: np.ndarray  # g(r), dimensionless
    n_pairs: int

    def first_peak(self) -> Tuple[float, float]:
        """(position, height) of the first maximum of g(r)."""
        i = int(np.argmax(self.g))
        return float(self.r[i]), float(self.g[i])

    def coordination_number(self, r_max: float, density: float) -> float:
        """Average neighbours within ``r_max`` implied by g(r)."""
        mask = self.r <= r_max
        dr = self.r[1] - self.r[0]
        shell = 4.0 * np.pi * self.r[mask] ** 2 * dr
        return float(density * np.sum(self.g[mask] * shell))


def radial_distribution(
    system: MolecularSystem,
    coords: Optional[np.ndarray] = None,
    selection: Optional[np.ndarray] = None,
    r_max: Optional[float] = None,
    bins: int = 80,
) -> RdfResult:
    """g(r) over the selected atoms (default: the water mass centers).

    Normalizes against the *ideal gas* pair count at the selection's own
    density inside the analysis sphere, the standard estimator for a
    non-periodic cluster of particles.
    """
    x = system.coords if coords is None else coords
    if selection is None:
        selection = system.is_water
    sel = x[np.asarray(selection, dtype=bool)]
    m = len(sel)
    if m < 2:
        raise WorkloadError("need at least two selected atoms for g(r)")
    if r_max is None:
        r_max = system.box_edge / 2.0
    if r_max <= 0 or bins < 2:
        raise WorkloadError("need positive r_max and >= 2 bins")
    d = sel[:, None, :] - sel[None, :, :]
    r = np.sqrt(np.einsum("ijk,ijk->ij", d, d))
    iu = np.triu_indices(m, k=1)
    distances = r[iu]
    distances = distances[distances <= r_max]
    hist, edges = np.histogram(distances, bins=bins, range=(0.0, r_max))
    centers = 0.5 * (edges[:-1] + edges[1:])
    dr = edges[1] - edges[0]
    # ideal-gas normalization at the selection's density in the box
    # (r_max <= box/2 keeps finite-domain edge suppression moderate)
    density = m / system.volume
    ideal = density * 4.0 * np.pi * centers**2 * dr * m / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, hist / ideal, 0.0)
    return RdfResult(r=centers, g=g, n_pairs=len(distances))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MsdResult:
    """Mean square displacement over a trajectory."""

    time: np.ndarray
    msd: np.ndarray

    def diffusion_coefficient(self) -> float:
        """Einstein relation: D = slope(MSD)/6 from a linear fit."""
        if len(self.time) < 2:
            raise WorkloadError("need at least two trajectory frames")
        slope, _ = np.polyfit(self.time, self.msd, 1)
        return float(slope / 6.0)


def mean_square_displacement(
    frames: Sequence[np.ndarray],
    dt: float,
    selection: Optional[np.ndarray] = None,
) -> MsdResult:
    """MSD relative to the first frame (no averaging over origins)."""
    if len(frames) < 2:
        raise WorkloadError("need at least two frames")
    if dt <= 0:
        raise WorkloadError("dt must be positive")
    ref = frames[0]
    sel = (
        np.ones(len(ref), dtype=bool)
        if selection is None
        else np.asarray(selection, dtype=bool)
    )
    msd = []
    for frame in frames:
        disp = frame[sel] - ref[sel]
        msd.append(float(np.mean(np.einsum("ij,ij->i", disp, disp))))
    time = np.arange(len(frames)) * dt
    return MsdResult(time=time, msd=np.array(msd))


# ----------------------------------------------------------------------
def running_averages(result: MDResult, window: int = 5) -> dict:
    """Windowed means of the per-step observables Opal displays."""
    if window < 1:
        raise WorkloadError("window must be >= 1")
    if not result.records:
        raise WorkloadError("empty MD result")

    def roll(values: List[float]) -> np.ndarray:
        arr = np.asarray(values)
        if len(arr) < window:
            return arr.cumsum() / np.arange(1, len(arr) + 1)
        kernel = np.ones(window) / window
        return np.convolve(arr, kernel, mode="valid")

    return {
        "energy_total": roll([r.energy_total for r in result.records]),
        "temperature": roll([r.temperature for r in result.records]),
        "pressure": roll([r.pressure for r in result.records]),
    }
