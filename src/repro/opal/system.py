"""Molecular systems: coordinates + parameters + topology.

Builds concrete, simulation-ready systems from the statistical
:class:`~repro.opal.complexes.ComplexSpec` descriptors.  The paper's
real structures (Antennapedia/DNA, LFB homeodomain) are not available,
so the builder synthesizes a protein-like self-avoiding chain solvated
in a water box with the same (n, gamma, density) statistics — which is
all the performance machinery observes, while the physics engine gets a
real, well-defined potential-energy surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .complexes import ComplexSpec
from .topology import Topology, chain_topology

#: Coulomb constant in kcal mol^-1 Angstrom e^-2.
COULOMB_K = 332.0636

#: Default Lennard-Jones well depth [kcal/mol] and radius [Angstrom]
#: for protein-like united atoms.
PROTEIN_EPS, PROTEIN_SIGMA = 0.12, 3.3
#: TIP3P-oxygen-like parameters for the united water mass center.
WATER_EPS, WATER_SIGMA = 0.1521, 3.1507
#: Partial charge magnitude assigned to protein atoms (alternating).
PROTEIN_CHARGE = 0.20


@dataclass
class MolecularSystem:
    """A concrete simulation system (positions in Angstrom)."""

    spec: ComplexSpec
    coords: np.ndarray  # (n, 3) float64
    charges: np.ndarray  # (n,)
    eps: np.ndarray  # (n,) LJ well depth
    sigma: np.ndarray  # (n,) LJ radius
    masses: np.ndarray  # (n,) amu
    is_water: np.ndarray  # (n,) bool
    topology: Topology
    box_edge: float
    united_water: bool = True
    rng_seed: int = 0

    def __post_init__(self) -> None:
        n = len(self.coords)
        for name in ("charges", "eps", "sigma", "masses", "is_water"):
            if len(getattr(self, name)) != n:
                raise WorkloadError(f"{name} length != number of atoms")
        if self.coords.shape != (n, 3):
            raise WorkloadError("coords must be (n, 3)")
        if self.box_edge <= 0:
            raise WorkloadError("box edge must be positive")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of mass centers."""
        return len(self.coords)

    @property
    def n_protein(self) -> int:
        """Number of solute atoms."""
        return int((~self.is_water).sum())

    @property
    def n_waters(self) -> int:
        """Number of water sites."""
        return int(self.is_water.sum())

    @property
    def volume(self) -> float:
        """Box volume, cubic Angstrom."""
        return self.box_edge**3

    def density(self) -> float:
        """Mass centers per cubic Angstrom actually realized."""
        return self.n / self.volume

    def lj_c12_c6(self, i: np.ndarray, j: np.ndarray):
        """Pairwise C12/C6 via Lorentz-Berthelot combination."""
        eps = np.sqrt(self.eps[i] * self.eps[j])
        sig = 0.5 * (self.sigma[i] + self.sigma[j])
        s6 = sig**6
        c6 = 4.0 * eps * s6
        c12 = 4.0 * eps * s6 * s6
        return c12, c6

    def copy(self) -> "MolecularSystem":
        """A deep copy (topology shared, arrays copied)."""
        return MolecularSystem(
            spec=self.spec,
            coords=self.coords.copy(),
            charges=self.charges.copy(),
            eps=self.eps.copy(),
            sigma=self.sigma.copy(),
            masses=self.masses.copy(),
            is_water=self.is_water.copy(),
            topology=self.topology,
            box_edge=self.box_edge,
            united_water=self.united_water,
            rng_seed=self.rng_seed,
        )


# ----------------------------------------------------------------------
def _protein_chain_coords(
    n_atoms: int, bond_length: float, rng: np.random.Generator
) -> np.ndarray:
    """A compact self-avoiding-ish random walk (the synthetic protein)."""
    coords = np.zeros((n_atoms, 3))
    direction = np.array([1.0, 0.0, 0.0])
    for i in range(1, n_atoms):
        # biased random turn keeps the chain compact but non-overlapping
        turn = rng.standard_normal(3)
        direction = 0.6 * direction + 0.8 * turn
        direction /= np.linalg.norm(direction)
        # keep the chain compact: when the next step would leave the
        # allowed radius, bend the direction inward (never shorten the
        # bond — bond lengths must stay exactly bond_length)
        com = coords[:i].mean(axis=0)
        candidate = coords[i - 1] + bond_length * direction
        max_r = bond_length * max(3.0, (i ** (1.0 / 2.0)))
        if np.linalg.norm(candidate - com) > max_r:
            inward = com - coords[i - 1]
            inward /= max(np.linalg.norm(inward), 1e-12)
            direction = 0.3 * direction + inward
            direction /= np.linalg.norm(direction)
            candidate = coords[i - 1] + bond_length * direction
        coords[i] = candidate
    return coords


def _water_grid(n_waters: int, box_edge: float, rng: np.random.Generator) -> np.ndarray:
    """Waters on a jittered cubic grid filling the box."""
    if n_waters == 0:
        return np.zeros((0, 3))
    per_edge = int(np.ceil(n_waters ** (1.0 / 3.0)))
    spacing = box_edge / per_edge
    idx = np.arange(per_edge)
    gx, gy, gz = np.meshgrid(idx, idx, idx, indexing="ij")
    grid = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3).astype(float)
    grid = (grid + 0.5) * spacing
    grid += rng.uniform(-0.18, 0.18, size=grid.shape) * spacing
    order = rng.permutation(len(grid))[:n_waters]
    return grid[order]


def _relieve_overlaps(
    waters: np.ndarray,
    protein: np.ndarray,
    box_edge: float,
    rng: np.random.Generator,
    min_dist: float = 2.6,
    max_rounds: int = 20,
) -> np.ndarray:
    """Resample water positions that clash with the solute.

    The grid ignores the protein; without this step the initial
    configuration has astronomically high LJ energies.  Works in blocks
    to bound memory for the paper-size complexes.
    """
    if len(waters) == 0 or len(protein) == 0:
        return waters
    waters = waters.copy()
    d2_min = min_dist * min_dist
    # relocated waters must also keep a (modest) water-water spacing —
    # large floors are infeasible for uniform redraws at liquid packing
    ww_min = 1.25
    ww2 = ww_min * ww_min

    def protein_clash(idx: np.ndarray) -> np.ndarray:
        d = waters[idx][:, None, :] - protein[None, :, :]
        r2 = np.einsum("bij,bij->bi", d, d)
        return r2.min(axis=1) < d2_min

    def water_clash(idx: np.ndarray) -> np.ndarray:
        dw = waters[idx][:, None, :] - waters[None, :, :]
        rw2 = np.einsum("bij,bij->bi", dw, dw)
        rw2[rw2 < 1e-12] = np.inf  # mask self-distances
        return rw2.min(axis=1) < ww2

    # initial offenders: waters clashing with the solute
    moving = np.nonzero(
        np.concatenate(
            [
                protein_clash(np.arange(s, min(s + 1024, len(waters))))
                for s in range(0, len(waters), 1024)
            ]
        )
    )[0]
    for _ in range(max_rounds * 2):
        if len(moving) == 0:
            break
        waters[moving] = rng.uniform(0.0, box_edge, size=(len(moving), 3))
        still = protein_clash(moving) | water_clash(moving)
        moving = moving[still]
    return waters


def build_system(
    spec: ComplexSpec,
    seed: int = 0,
    united_water: bool = True,
    bond_length: float = 1.5,
) -> MolecularSystem:
    """Synthesize a simulation-ready system matching ``spec``'s statistics.

    With ``united_water=False`` each water contributes three explicit
    atoms (the pre-optimization Opal model) — the mass-center count then
    equals ``spec.n_explicit``.
    """
    rng = np.random.default_rng(seed)
    box = spec.box_edge
    n_protein = spec.protein_atoms

    protein = _protein_chain_coords(n_protein, bond_length, rng)
    protein += box / 2.0 - protein.mean(axis=0)  # center in the box

    sites_per_water = 1 if united_water else 3
    n_water_sites = spec.waters * sites_per_water
    water_centers = _water_grid(spec.waters, box, rng)
    water_centers = _relieve_overlaps(water_centers, protein, box, rng)
    if united_water:
        waters = water_centers
    else:
        # three collinear-ish sites per molecule: O and two H
        offs = np.array([[0.0, 0.0, 0.0], [0.9572, 0.0, 0.0], [-0.24, 0.9266, 0.0]])
        waters = (water_centers[:, None, :] + offs[None, :, :]).reshape(-1, 3)

    coords = np.vstack([protein, waters])
    n_total = n_protein + n_water_sites
    is_water = np.zeros(n_total, dtype=bool)
    is_water[n_protein:] = True

    charges = np.zeros(n_total)
    charges[:n_protein] = PROTEIN_CHARGE * np.where(
        np.arange(n_protein) % 2 == 0, 1.0, -1.0
    )
    if n_protein % 2 == 1:
        charges[n_protein - 1] = 0.0  # keep the solute neutral
    if not united_water:
        # neutral triads: O carries -0.834, H carry +0.417 (TIP3P-like)
        wq = np.tile([-0.834, 0.417, 0.417], spec.waters)
        charges[n_protein:] = wq

    eps = np.where(is_water, WATER_EPS, PROTEIN_EPS)
    sigma = np.where(is_water, WATER_SIGMA, PROTEIN_SIGMA)
    if not united_water:
        # hydrogens: tiny LJ so the triads don't blow up
        h_mask = np.zeros(n_total, dtype=bool)
        h_sites = np.arange(n_protein, n_total)
        h_mask[h_sites[(h_sites - n_protein) % 3 != 0]] = True
        eps[h_mask] = 0.01
        sigma[h_mask] = 1.0

    masses = np.where(is_water, 18.015, 13.0)
    if not united_water:
        masses = masses.copy()
        masses[is_water] = 16.0
        masses[h_mask] = 1.008

    topo = chain_topology(n_protein)
    # widen n_atoms so exclusion machinery covers the full system
    topo.n_atoms = n_total

    return MolecularSystem(
        spec=spec,
        coords=coords,
        charges=charges,
        eps=eps,
        sigma=sigma,
        masses=masses,
        is_water=is_water,
        topology=topo,
        box_edge=box,
        united_water=united_water,
        rng_seed=seed,
    )
