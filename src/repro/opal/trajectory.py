"""Trajectory recording and XYZ-format I/O.

Opal's users inspect trajectories with molecular viewers; the venerable
XYZ text format (count line, comment line, one ``<element> x y z`` line
per atom, frames concatenated) is the least common denominator.  The
recorder plugs into any stepping loop; the writer/reader round-trip
exactly (to the printed precision) and feed the observables module.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..errors import WorkloadError
from .system import MolecularSystem

PathLike = Union[str, pathlib.Path]


@dataclass
class Trajectory:
    """An in-memory sequence of coordinate frames."""

    element_labels: List[str]
    frames: List[np.ndarray] = field(default_factory=list)
    comments: List[str] = field(default_factory=list)

    @property
    def n_atoms(self) -> int:
        """Atoms per frame."""
        return len(self.element_labels)

    def __len__(self) -> int:
        return len(self.frames)

    def append(self, coords: np.ndarray, comment: str = "") -> None:
        """Add one coordinate frame (copied, shape-checked)."""
        coords = np.asarray(coords, dtype=float)
        if coords.shape != (self.n_atoms, 3):
            raise WorkloadError(
                f"frame shape {coords.shape} != ({self.n_atoms}, 3)"
            )
        self.frames.append(coords.copy())
        self.comments.append(comment)

    # ------------------------------------------------------------------
    @classmethod
    def for_system(cls, system: MolecularSystem) -> "Trajectory":
        """Labels waters 'O' (united center) and solute atoms 'C'."""
        labels = ["O" if w else "C" for w in system.is_water]
        return cls(element_labels=labels)

    # ------------------------------------------------------------------
    def write_xyz(self, path: PathLike) -> None:
        """Write all frames in XYZ text format."""
        if not self.frames:
            raise WorkloadError("cannot write an empty trajectory")
        with open(path, "w") as fh:
            for frame, comment in zip(self.frames, self.comments):
                fh.write(f"{self.n_atoms}\n{comment}\n")
                for label, (x, y, z) in zip(self.element_labels, frame):
                    fh.write(f"{label} {x:.6f} {y:.6f} {z:.6f}\n")

    @classmethod
    def read_xyz(cls, path: PathLike) -> "Trajectory":
        lines = pathlib.Path(path).read_text().splitlines()
        pos = 0
        traj: Optional[Trajectory] = None
        while pos < len(lines):
            if not lines[pos].strip():
                pos += 1
                continue
            try:
                n = int(lines[pos].strip())
            except ValueError:
                raise WorkloadError(
                    f"expected atom count at line {pos + 1}, got "
                    f"{lines[pos]!r}"
                ) from None
            comment = lines[pos + 1] if pos + 1 < len(lines) else ""
            body = lines[pos + 2 : pos + 2 + n]
            if len(body) < n:
                raise WorkloadError("truncated XYZ frame")
            labels, coords = [], []
            for line in body:
                parts = line.split()
                if len(parts) != 4:
                    raise WorkloadError(f"bad XYZ atom line {line!r}")
                labels.append(parts[0])
                coords.append([float(v) for v in parts[1:]])
            if traj is None:
                traj = cls(element_labels=labels)
            elif labels != traj.element_labels:
                raise WorkloadError("inconsistent atom labels across frames")
            traj.append(np.asarray(coords), comment=comment)
            pos += 2 + n
        if traj is None:
            raise WorkloadError("no frames in XYZ file")
        return traj


def record_dynamics(
    system: MolecularSystem,
    pairlist,
    steps: int,
    dt: float = 0.001,
    temperature: Optional[float] = None,
    stride: int = 1,
    seed: int = 0,
) -> Trajectory:
    """Run MD and record every ``stride``-th frame (plus the initial one)."""
    from .dynamics import VelocityVerlet

    if stride < 1:
        raise WorkloadError("stride must be >= 1")
    traj = Trajectory.for_system(system)
    traj.append(system.coords, comment="step 0")
    md = VelocityVerlet(
        system, pairlist, dt=dt, temperature=temperature, seed=seed
    )
    for step in range(1, steps + 1):
        record = md.step()
        if step % stride == 0:
            traj.append(
                system.coords,
                comment=f"step {step} E={record.energy_total:.4f}",
            )
    return traj
