"""The parallel Opal client/server program over Sciddle on the simulator.

Faithful to the structure in Section 2.1 of the paper:

* one **client** coordinates the run and computes the few remaining
  (bonded) interactions plus the reduction of the partial results into
  total energy / volume / pressure / temperature;
* ``p`` **servers** own a pseudo-random share of the pair work, keep the
  replicated global interaction data, and per step service two RPCs:
  ``update_lists`` (when the step is an update step) and
  ``eval_nonbonded``;
* the client sends only the atom coordinates (``alpha * n`` bytes); the
  energy reply returns the two partial energies plus the gradients
  (``alpha * n`` bytes again, eq. 9); the update reply is a bare
  completion message (eq. 8).

With ``sync_mode='accounted'`` the run uses the paper's modified
middleware: explicit barriers bracket every phase so communication,
computation, synchronization and idle time separate exactly (Section
3.3).  With ``sync_mode='overlapped'`` the original Sciddle behaviour is
simulated: no barriers, maximal overlap, and only the wall-clock time is
trustworthy — running both quantifies the <5% accounting overhead the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.breakdown import TimeBreakdown
from ..core.parameters import ApplicationParams
from ..hpm import PhaseAccountant
from ..netsim import Cluster
from ..obs.session import ObsSession
from ..obs.session import run_label as _make_run_label
from ..pvm import PvmSystem, PvmTask
from ..sciddle import (
    RpcReply,
    SciddleClient,
    SciddleInterface,
    SciddleServer,
    SyncDiscipline,
)
from .workload import OpalWorkload


def make_opal_interface() -> SciddleInterface:
    """The remote interface the Sciddle stub generator would compile."""
    iface = SciddleInterface("opal")
    iface.procedure(
        "update_lists",
        doc="rebuild this server's list of active pairs from fresh coordinates",
    )
    iface.procedure(
        "eval_nonbonded",
        doc="evaluate partial Van der Waals / Coulomb energies and gradients",
    )
    return iface


@dataclass
class OpalRunResult:
    """Everything measured during one simulated Opal run."""

    app: ApplicationParams
    platform_name: str
    sync_mode: str
    wall_time: float
    #: the paper's response variables (client-perspective, additive)
    breakdown: TimeBreakdown
    #: per-server compute seconds for the two routines
    server_update_seconds: List[float] = field(default_factory=list)
    server_energy_seconds: List[float] = field(default_factory=list)
    #: client accountant categories -> seconds
    client_phases: Dict[str, float] = field(default_factory=dict)
    #: counted flops summed over all nodes
    flops_counted: float = 0.0
    barriers_executed: int = 0
    cluster: Optional[Cluster] = None

    @property
    def imbalance(self) -> float:
        """max/mean of per-server energy compute time."""
        if not self.server_energy_seconds:
            return 1.0
        arr = np.asarray(self.server_energy_seconds)
        return float(arr.max() / arr.mean()) if arr.mean() > 0 else 1.0


# ----------------------------------------------------------------------
def _server_body(
    task: PvmTask,
    iface: SciddleInterface,
    sync: SyncDiscipline,
    workload: OpalWorkload,
    index: int,
    accountant: PhaseAccountant,
):
    """One Opal server: replicate global data, then serve RPCs."""
    update_flops = float(workload.server_update_flops()[index])
    energy_flops = float(workload.server_energy_flops()[index])
    working_set = workload.server_working_set()

    def update_lists(t: PvmTask, args):
        # start-of-phase barrier (paper's instrumentation discipline),
        # then the pure compute interval is what the accountant brackets
        yield from sync.phase_barrier(t, f"upd_start@{args['step']}")
        accountant.begin("par:update_lists")
        yield from t.compute(flops=update_flops, working_set=working_set)
        accountant.end()
        yield from sync.phase_barrier(t, f"upd_end@{args['step']}")
        return RpcReply(nbytes=workload.ack_nbytes)

    def eval_nonbonded(t: PvmTask, args):
        yield from sync.phase_barrier(t, f"nbi_start@{args['step']}")
        accountant.begin("par:eval_nonbonded")
        yield from t.compute(flops=energy_flops, working_set=working_set)
        accountant.end()
        yield from sync.phase_barrier(t, f"nbi_end@{args['step']}")
        return RpcReply(
            nbytes=workload.result_nbytes,
            payload={"evdw": 0.0, "ecoul": 0.0},
        )

    server = SciddleServer(task, iface)
    server.bind("update_lists", update_lists)
    server.bind("eval_nonbonded", eval_nonbonded)
    yield from server.run()


def _client_body(
    task: PvmTask,
    iface: SciddleInterface,
    sync: SyncDiscipline,
    workload: OpalWorkload,
    server_tids: List[int],
    accountant: PhaseAccountant,
    result_slot: dict,
):
    """The Opal client: drive s simulation steps, then shut servers down."""
    app = workload.app
    client = SciddleClient(task, iface, server_tids, accountant=accountant)
    t_start = task.now

    for step in range(app.steps):
        is_update_step = step % app.update_interval == 0

        if is_update_step:
            # ---- pair-list update phase ------------------------------
            # calls go out first (servers must have their request in
            # hand before anyone can reach the phase barrier), then the
            # start barrier separates communication from computation,
            # the end barrier separates computation from the returns.
            handles = yield from client.call_all(
                "update_lists",
                args_for=lambda i, tid: {"step": step},
                nbytes=workload.coords_nbytes,
                category="comm:call_upd",
            )
            yield from sync.phase_barrier(task, f"upd_start@{step}")
            yield from sync.phase_barrier(task, f"upd_end@{step}")
            yield from client.wait_all(handles, category="comm:return_upd")

        # ---- non-bonded energy evaluation phase ----------------------
        handles = yield from client.call_all(
            "eval_nonbonded",
            args_for=lambda i, tid: {"step": step},
            nbytes=workload.coords_nbytes,
            category="comm:call_nbi",
        )
        yield from sync.phase_barrier(task, f"nbi_start@{step}")
        yield from sync.phase_barrier(task, f"nbi_end@{step}")
        yield from client.wait_all(handles, category="comm:return_nbi")

        # ---- sequential work: bonded terms + reduction ----------------
        accountant.begin("seq_comp")
        yield from task.compute(
            flops=workload.seq_flops_per_step,
            working_set=workload.client_working_set(),
        )
        accountant.end()

    yield from client.shutdown()
    result_slot["wall"] = task.now - t_start


# ----------------------------------------------------------------------
def run_parallel_opal(
    app: ApplicationParams,
    platform,
    sync_mode: str = "accounted",
    seed: int = 0,
    jitter_sigma: float = 0.0,
    defect: float = 0.1,
    share_noise: float = 0.01,
    keep_cluster: bool = False,
    obs: Optional[ObsSession] = None,
    run_label: Optional[str] = None,
) -> OpalRunResult:
    """Simulate one full Opal run on ``platform`` (a PlatformSpec).

    Returns the measured :class:`OpalRunResult`; the breakdown is
    reconstructed exactly as the paper's instrumentation does it —
    middleware accountants on every process plus the barrier discipline
    (see module docstring).  In ``overlapped`` mode the per-category
    breakdown degenerates: everything un-attributable lands in ``idle``
    (which is precisely the paper's complaint about plain Sciddle).

    With ``obs=`` the run's trace, flow edges, metrics and measured
    breakdown are folded into that :class:`~repro.obs.ObsSession` under
    ``run_label`` (a deterministic label is derived when omitted).
    """
    p = app.servers
    workload = OpalWorkload(app, seed=seed, defect=defect, share_noise=share_noise)
    cluster = platform.build_cluster(p + 1, seed=seed, jitter_sigma=jitter_sigma)
    pvm = PvmSystem(cluster, barrier_cost=platform.sync_cost)
    iface = make_opal_interface()
    sync = SyncDiscipline(sync_mode, group="opal", count=p + 1)

    clock = lambda: cluster.engine.now  # noqa: E731
    client_node = platform.place(cluster, 0)
    client_acct = PhaseAccountant(
        clock, client_node.hpm, tracer=cluster.tracer, proc="opal-client"
    )
    server_accts = []
    server_procs = []
    for i in range(p):
        node = platform.place(cluster, i + 1)
        acct = PhaseAccountant(
            clock, node.hpm, tracer=cluster.tracer, proc=f"server{i}"
        )
        server_accts.append(acct)
        proc = pvm.spawn(
            f"server{i}", node, _server_body, iface, sync, workload, i, acct
        )
        server_procs.append(proc)
    result_slot: dict = {}
    pvm.spawn(
        "opal-client",
        client_node,
        _client_body,
        iface,
        sync,
        workload,
        [sp.tid for sp in server_procs],
        client_acct,
        result_slot,
    )
    pvm.run()
    wall = result_slot["wall"]

    # ---- reconstruct the paper's response variables -------------------
    upd_secs = [a.seconds("par:update_lists") for a in server_accts]
    nbi_secs = [a.seconds("par:eval_nonbonded") for a in server_accts]
    t_update = float(np.mean(upd_secs)) if upd_secs else 0.0
    t_nbint = float(np.mean(nbi_secs)) if nbi_secs else 0.0
    t_seq = client_acct.seconds("seq_comp")
    t_comm = sum(
        v for k, v in client_acct.as_dict().items() if k.startswith("comm:")
    )
    if sync.accounted:
        # barrier cost paid by the client: cost portion only (the wait
        # portion is idle); the tracer separates them exactly.
        client_rows = cluster.tracer.by_process().get("opal-client", {})
        t_sync = client_rows.get("sync", 0.0)
    else:
        t_sync = 0.0
    t_idle = max(wall - (t_update + t_nbint + t_seq + t_comm + t_sync), 0.0)

    breakdown = TimeBreakdown(
        update=t_update,
        nbint=t_nbint,
        seq_comp=t_seq,
        comm=t_comm,
        sync=t_sync,
        idle=t_idle,
    )
    flops_counted = sum(n.hpm.flops_counted for n in cluster.nodes)
    result = OpalRunResult(
        app=app,
        platform_name=platform.name,
        sync_mode=sync_mode,
        wall_time=wall,
        breakdown=breakdown,
        server_update_seconds=upd_secs,
        server_energy_seconds=nbi_secs,
        client_phases=client_acct.as_dict(),
        flops_counted=flops_counted,
        barriers_executed=sync.barriers_executed,
        cluster=cluster if keep_cluster else None,
    )
    if obs is not None:
        label = run_label or _make_run_label(platform.name, app, seed)
        obs.absorb_opal_run(label, cluster, result)
    return result
