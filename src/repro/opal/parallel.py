"""The parallel Opal client/server program over Sciddle on the simulator.

Faithful to the structure in Section 2.1 of the paper:

* one **client** coordinates the run and computes the few remaining
  (bonded) interactions plus the reduction of the partial results into
  total energy / volume / pressure / temperature;
* ``p`` **servers** own a pseudo-random share of the pair work, keep the
  replicated global interaction data, and per step service two RPCs:
  ``update_lists`` (when the step is an update step) and
  ``eval_nonbonded``;
* the client sends only the atom coordinates (``alpha * n`` bytes); the
  energy reply returns the two partial energies plus the gradients
  (``alpha * n`` bytes again, eq. 9); the update reply is a bare
  completion message (eq. 8).

With ``sync_mode='accounted'`` the run uses the paper's modified
middleware: explicit barriers bracket every phase so communication,
computation, synchronization and idle time separate exactly (Section
3.3).  With ``sync_mode='overlapped'`` the original Sciddle behaviour is
simulated: no barriers, maximal overlap, and only the wall-clock time is
trustworthy — running both quantifies the <5% accounting overhead the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.breakdown import TimeBreakdown
from ..core.parameters import ApplicationParams
from ..errors import FaultError, RpcTimeoutError, ServerDeadError, SimulationError
from ..hpm import PhaseAccountant
from ..netsim import Cluster, FaultPlan, FaultSpec
from ..obs.session import ObsSession
from ..obs.session import run_label as _make_run_label
from ..pvm import PvmSystem, PvmTask
from ..sciddle import (
    ResilientSciddleClient,
    RetryPolicy,
    RpcReply,
    SciddleClient,
    SciddleInterface,
    SciddleServer,
    ServerHealth,
    SyncDiscipline,
)
from .workload import OpalWorkload


def make_opal_interface() -> SciddleInterface:
    """The remote interface the Sciddle stub generator would compile."""
    iface = SciddleInterface("opal")
    iface.procedure(
        "update_lists",
        doc="rebuild this server's list of active pairs from fresh coordinates",
    )
    iface.procedure(
        "eval_nonbonded",
        doc="evaluate partial Van der Waals / Coulomb energies and gradients",
    )
    return iface


@dataclass
class OpalRunResult:
    """Everything measured during one simulated Opal run."""

    app: ApplicationParams
    platform_name: str
    sync_mode: str
    wall_time: float
    #: the paper's response variables (client-perspective, additive)
    breakdown: TimeBreakdown
    #: per-server compute seconds for the two routines
    server_update_seconds: List[float] = field(default_factory=list)
    server_energy_seconds: List[float] = field(default_factory=list)
    #: client accountant categories -> seconds
    client_phases: Dict[str, float] = field(default_factory=dict)
    #: counted flops summed over all nodes
    flops_counted: float = 0.0
    barriers_executed: int = 0
    #: graceful-degradation record: original indices of servers that died
    #: mid-run and had their partition redistributed across survivors
    servers_failed: List[int] = field(default_factory=list)
    failovers: int = 0
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    cluster: Optional[Cluster] = None

    @property
    def imbalance(self) -> float:
        """max/mean of per-server energy compute time."""
        if not self.server_energy_seconds:
            return 1.0
        arr = np.asarray(self.server_energy_seconds)
        return float(arr.max() / arr.mean()) if arr.mean() > 0 else 1.0


# ----------------------------------------------------------------------
def _server_body(
    task: PvmTask,
    iface: SciddleInterface,
    sync: SyncDiscipline,
    workload: OpalWorkload,
    index: int,
    accountant: PhaseAccountant,
):
    """One Opal server: replicate global data, then serve RPCs."""
    update_flops = float(workload.server_update_flops()[index])
    energy_flops = float(workload.server_energy_flops()[index])
    working_set = workload.server_working_set()

    # ``bar`` labels the barrier round: the resilient client re-issues a
    # phase's remaining work under fresh labels ("{step}.r{n}") after a
    # failover, so recovery barriers never collide with the original
    # round's.  ``scale`` stretches this server's share when it absorbs a
    # dead peer's partition.  The plain client sends neither key, and the
    # defaults reproduce today's labels and flops exactly.
    def update_lists(t: PvmTask, args):
        bar = args.get("bar", args["step"])
        scale = float(args.get("scale", 1.0))
        # start-of-phase barrier (paper's instrumentation discipline),
        # then the pure compute interval is what the accountant brackets
        yield from sync.phase_barrier(t, f"upd_start@{bar}")
        accountant.begin("par:update_lists")
        yield from t.compute(flops=update_flops * scale, working_set=working_set)
        accountant.end()
        yield from sync.phase_barrier(t, f"upd_end@{bar}")
        return RpcReply(nbytes=workload.ack_nbytes)

    def eval_nonbonded(t: PvmTask, args):
        bar = args.get("bar", args["step"])
        scale = float(args.get("scale", 1.0))
        yield from sync.phase_barrier(t, f"nbi_start@{bar}")
        accountant.begin("par:eval_nonbonded")
        yield from t.compute(flops=energy_flops * scale, working_set=working_set)
        accountant.end()
        yield from sync.phase_barrier(t, f"nbi_end@{bar}")
        return RpcReply(
            nbytes=workload.result_nbytes,
            payload={"evdw": 0.0, "ecoul": 0.0},
        )

    server = SciddleServer(task, iface)
    server.bind("update_lists", update_lists)
    server.bind("eval_nonbonded", eval_nonbonded)
    yield from server.run()


def _client_body(
    task: PvmTask,
    iface: SciddleInterface,
    sync: SyncDiscipline,
    workload: OpalWorkload,
    server_tids: List[int],
    accountant: PhaseAccountant,
    result_slot: dict,
    retry_policy: Optional[RetryPolicy] = None,
    health: Optional[ServerHealth] = None,
):
    """The Opal client: drive s simulation steps, then shut servers down.

    Without a retry policy this is the classic fragile client (exactly
    the paper's program).  With one, RPCs are deadline-bounded and
    retried, and a server declared dead triggers graceful degradation:
    its partition is redistributed across the survivors (via the
    ``scale`` argument) in recovery rounds with fresh barrier labels,
    and the run continues on the shrunk group.
    """
    app = workload.app
    t_start = task.now

    if retry_policy is None:
        client = SciddleClient(task, iface, server_tids, accountant=accountant)

        for step in range(app.steps):
            is_update_step = step % app.update_interval == 0
            # one shared payload shell per phase: the handlers only read
            # the args, so every server can carry the same dict instead
            # of p per-call allocations
            phase_args = {"step": step}

            if is_update_step:
                # ---- pair-list update phase ------------------------------
                # calls go out first (servers must have their request in
                # hand before anyone can reach the phase barrier), then the
                # start barrier separates communication from computation,
                # the end barrier separates computation from the returns.
                handles = yield from client.call_all(
                    "update_lists",
                    args_for=lambda i, tid: phase_args,
                    nbytes=workload.coords_nbytes,
                    category="comm:call_upd",
                )
                yield from sync.phase_barrier(task, f"upd_start@{step}")
                yield from sync.phase_barrier(task, f"upd_end@{step}")
                yield from client.wait_all(handles, category="comm:return_upd")

            # ---- non-bonded energy evaluation phase ----------------------
            handles = yield from client.call_all(
                "eval_nonbonded",
                args_for=lambda i, tid: phase_args,
                nbytes=workload.coords_nbytes,
                category="comm:call_nbi",
            )
            yield from sync.phase_barrier(task, f"nbi_start@{step}")
            yield from sync.phase_barrier(task, f"nbi_end@{step}")
            yield from client.wait_all(handles, category="comm:return_nbi")

            # ---- sequential work: bonded terms + reduction ----------------
            accountant.begin("seq_comp")
            yield from task.compute(
                flops=workload.seq_flops_per_step,
                working_set=workload.client_working_set(),
            )
            accountant.end()

        yield from client.shutdown()
        result_slot["wall"] = task.now - t_start
        return

    # ---- resilient path ----------------------------------------------
    client = ResilientSciddleClient(
        task,
        iface,
        server_tids,
        policy=retry_policy,
        health=health,
        accountant=accountant,
    )
    health = client.health
    m_failovers = task.ctx.cluster.metrics.counter("opal.failovers")
    live_idx = list(range(len(server_tids)))
    failed: List[int] = []
    result_slot["failed"] = failed
    upd_shares = [float(f) for f in workload.server_update_flops()]
    nbi_shares = [float(f) for f in workload.server_energy_flops()]

    def _handle_death(idx: int):
        """Ostracize one server and shrink the working group."""
        if idx not in live_idx:
            return
        tid = server_tids[idx]
        start = task.now
        accountant.begin("failover")
        # shrinking health/sync first is safe here: the dead server has
        # no outstanding barrier arrivals (see module protocol notes)
        health.mark_dead(tid)
        yield from client.quarantine(tid)
        accountant.end()
        client.remove_server(tid)
        live_idx.remove(idx)
        failed.append(idx)
        m_failovers.inc()
        task.ctx.trace(
            "failover",
            start,
            task.now,
            detail=f"server{idx} (tid {tid}) removed; {len(live_idx)} survive",
        )

    def _phase(step: int, proc: str, prefix: str, shares: List[float]):
        """Run one phase to completion, redistributing after deaths.

        Round 0 issues each live server its own share (``scale`` 1.0,
        barrier labels identical to the plain client's).  If servers die
        the loop re-issues the *unexecuted* fraction of the phase across
        the survivors under fresh labels until the whole partition has
        been computed.
        """
        total = sum(shares)
        executed = 0.0
        round_no = 0
        while True:
            if not live_idx:
                raise SimulationError(
                    f"all {len(server_tids)} Opal servers died before "
                    f"step {step} ({prefix} phase) could complete"
                )
            remaining = total - executed
            bar = f"{step}" if round_no == 0 else f"{step}.r{round_no}"
            live_sum = sum(shares[i] for i in live_idx)
            scale = remaining / live_sum if live_sum > 0 else 1.0
            handles = []
            for i in list(live_idx):
                try:
                    handle = yield from client.call_async(
                        server_tids[i],
                        proc,
                        {"step": step, "bar": bar, "scale": scale},
                        nbytes=workload.coords_nbytes,
                        category=f"comm:call_{prefix}",
                    )
                    handles.append((i, handle))
                except ServerDeadError:
                    yield from _handle_death(i)
            yield from sync.phase_barrier(task, f"{prefix}_start@{bar}")
            yield from sync.phase_barrier(task, f"{prefix}_end@{bar}")
            for i, handle in handles:
                try:
                    yield from client.wait(handle, category=f"comm:return_{prefix}")
                    executed += shares[i] * scale
                except (RpcTimeoutError, ServerDeadError):
                    # retry budget exhausted or server declared dead:
                    # either way its slice of this round was lost
                    yield from _handle_death(i)
            round_no += 1
            if total - executed <= total * 1e-9:
                return

    for step in range(app.steps):
        if step % app.update_interval == 0:
            yield from _phase(step, "update_lists", "upd", upd_shares)
        yield from _phase(step, "eval_nonbonded", "nbi", nbi_shares)

        accountant.begin("seq_comp")
        yield from task.compute(
            flops=workload.seq_flops_per_step,
            working_set=workload.client_working_set(),
        )
        accountant.end()

    yield from client.shutdown()
    result_slot["wall"] = task.now - t_start


# ----------------------------------------------------------------------
def run_parallel_opal(
    app: ApplicationParams,
    platform,
    sync_mode: str = "accounted",
    seed: int = 0,
    jitter_sigma: float = 0.0,
    defect: float = 0.1,
    share_noise: float = 0.01,
    keep_cluster: bool = False,
    obs: Optional[ObsSession] = None,
    run_label: Optional[str] = None,
    faults: Optional[FaultSpec] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> OpalRunResult:
    """Simulate one full Opal run on ``platform`` (a PlatformSpec).

    Returns the measured :class:`OpalRunResult`; the breakdown is
    reconstructed exactly as the paper's instrumentation does it —
    middleware accountants on every process plus the barrier discipline
    (see module docstring).  In ``overlapped`` mode the per-category
    breakdown degenerates: everything un-attributable lands in ``idle``
    (which is precisely the paper's complaint about plain Sciddle).

    With ``obs=`` the run's trace, flow edges, metrics and measured
    breakdown are folded into that :class:`~repro.obs.ObsSession` under
    ``run_label`` (a deterministic label is derived when omitted).

    ``faults=`` installs a seed-deterministic
    :class:`~repro.netsim.FaultPlan` (message drops / delay spikes /
    outages / crashes / slowdowns) *and* switches the client to the
    resilient Sciddle stub, deriving its :class:`RetryPolicy` from the
    spec unless ``retry_policy=`` overrides it.  Passing only
    ``retry_policy=`` runs resiliently on a healthy cluster (the
    zero-fault overhead measurement).  Crashing the client's own node
    is rejected: the paper's program has a single coordinator.
    """
    p = app.servers
    workload = OpalWorkload(app, seed=seed, defect=defect, share_noise=share_noise)
    cluster = platform.build_cluster(p + 1, seed=seed, jitter_sigma=jitter_sigma)
    pvm = PvmSystem(cluster, barrier_cost=platform.sync_cost)
    iface = make_opal_interface()
    sync = SyncDiscipline(sync_mode, group="opal", count=p + 1)
    # phase barriers count only live group members, so a crashed server
    # can never wedge the survivors (no-op while nobody is dead)
    cluster.barriers.set_count_provider(
        f"pvm:{sync.group}:", lambda: sync.live_count
    )

    resilient = faults is not None or retry_policy is not None
    if resilient and retry_policy is None:
        retry_policy = RetryPolicy.from_spec(faults)

    clock = lambda: cluster.engine.now  # noqa: E731
    client_node = platform.place(cluster, 0)
    if faults is not None:
        for crash in faults.crashes:
            if crash.node == client_node.node_id:
                raise FaultError(
                    f"cannot crash node {crash.node}: it hosts the Opal "
                    "client (the single coordinator)"
                )
        if faults.enabled:
            FaultPlan(faults, cluster.rng).install(cluster)
    client_acct = PhaseAccountant(
        clock, client_node.hpm, tracer=cluster.tracer, proc="opal-client"
    )
    server_accts = []
    server_procs = []
    for i in range(p):
        node = platform.place(cluster, i + 1)
        acct = PhaseAccountant(
            clock, node.hpm, tracer=cluster.tracer, proc=f"server{i}"
        )
        server_accts.append(acct)
        proc = pvm.spawn(
            f"server{i}", node, _server_body, iface, sync, workload, i, acct
        )
        server_procs.append(proc)

    health: Optional[ServerHealth] = None
    if resilient:
        health = ServerHealth(retry_policy.death_threshold)
        health.on_death(sync.mark_dead)
        server_tid_set = {sp.tid for sp in server_procs}

        def _crash_detected(proc) -> None:
            if proc.tid in server_tid_set:
                health.mark_dead(proc.tid)

        cluster.add_death_listener(_crash_detected)

    result_slot: dict = {}
    pvm.spawn(
        "opal-client",
        client_node,
        _client_body,
        iface,
        sync,
        workload,
        [sp.tid for sp in server_procs],
        client_acct,
        result_slot,
        retry_policy=retry_policy,
        health=health,
    )
    pvm.run()
    wall = result_slot["wall"]

    # ---- reconstruct the paper's response variables -------------------
    upd_secs = [a.seconds("par:update_lists") for a in server_accts]
    nbi_secs = [a.seconds("par:eval_nonbonded") for a in server_accts]
    t_update = float(np.mean(upd_secs)) if upd_secs else 0.0
    t_nbint = float(np.mean(nbi_secs)) if nbi_secs else 0.0
    t_seq = client_acct.seconds("seq_comp")
    t_comm = sum(
        v for k, v in client_acct.as_dict().items() if k.startswith("comm:")
    )
    if sync.accounted:
        # barrier cost paid by the client: cost portion only (the wait
        # portion is idle); the tracer separates them exactly.
        client_rows = cluster.tracer.by_process().get("opal-client", {})
        t_sync = client_rows.get("sync", 0.0)
    else:
        t_sync = 0.0
    t_idle = max(wall - (t_update + t_nbint + t_seq + t_comm + t_sync), 0.0)

    breakdown = TimeBreakdown(
        update=t_update,
        nbint=t_nbint,
        seq_comp=t_seq,
        comm=t_comm,
        sync=t_sync,
        idle=t_idle,
    )
    flops_counted = sum(n.hpm.flops_counted for n in cluster.nodes)

    def _counted(name: str) -> int:
        # peek without creating: plain runs must not grow zero-valued
        # resilience rows in their metric dumps
        counter = cluster.metrics.counters.get(name)
        return int(counter.value) if counter is not None else 0

    result = OpalRunResult(
        app=app,
        platform_name=platform.name,
        sync_mode=sync_mode,
        wall_time=wall,
        breakdown=breakdown,
        server_update_seconds=upd_secs,
        server_energy_seconds=nbi_secs,
        client_phases=client_acct.as_dict(),
        flops_counted=flops_counted,
        barriers_executed=sync.barriers_executed,
        servers_failed=list(result_slot.get("failed", [])),
        failovers=_counted("opal.failovers"),
        rpc_retries=_counted("sciddle.retries"),
        rpc_timeouts=_counted("sciddle.rpc_timeouts"),
        cluster=cluster if keep_cluster else None,
    )
    if obs is not None:
        label = run_label or _make_run_label(platform.name, app, seed)
        obs.absorb_opal_run(label, cluster, result)
    return result
