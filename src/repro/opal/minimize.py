"""Energy minimization (Opal's primary mode: "energy refinement").

Two minimizers over the full potential V:

* :func:`steepest_descent` — the classic fixed-form minimizer with a
  backtracking line search, dependency-free and fully observable;
* :func:`minimize_lbfgs` — scipy's L-BFGS-B driven by our analytic
  gradient, as a stronger reference optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.optimize

from ..errors import WorkloadError
from .forcefield import total_energy
from .pairlist import VerletPairList
from .system import MolecularSystem


@dataclass
class MinimizationResult:
    """Trajectory of one minimization run."""

    energies: List[float] = field(default_factory=list)
    final_coords: Optional[np.ndarray] = None
    converged: bool = False
    iterations: int = 0
    gradient_norm: float = float("nan")

    @property
    def initial_energy(self) -> float:
        """Energy before the first step."""
        return self.energies[0]

    @property
    def final_energy(self) -> float:
        """Energy after the last accepted step."""
        return self.energies[-1]


def steepest_descent(
    system: MolecularSystem,
    pairlist: VerletPairList,
    max_steps: int = 200,
    initial_step: float = 0.01,
    gtol: float = 1e-3,
    apply: bool = True,
) -> MinimizationResult:
    """Steepest descent with a doubling/halving step-size heuristic.

    Each iteration uses the pair list for that step (so list updates
    happen at the configured interval, like the real code).  When
    ``apply`` is true the system's coordinates are updated in place to
    the minimized configuration.
    """
    if max_steps < 1:
        raise WorkloadError("max_steps must be >= 1")
    x = system.coords.copy()
    step = initial_step
    result = MinimizationResult()
    pairs = pairlist.pairs_for_step(0, x)
    report, grad = total_energy(system, pairs, x)
    energy = report.total
    result.energies.append(energy)

    for it in range(1, max_steps + 1):
        gnorm = float(np.linalg.norm(grad))
        if gnorm < gtol:
            result.converged = True
            break
        direction = -grad / max(gnorm, 1e-30)
        x_new = x + step * direction
        pairs = pairlist.pairs_for_step(it, x_new)
        report_new, grad_new = total_energy(system, pairs, x_new)
        if report_new.total < energy:
            x, grad, energy = x_new, grad_new, report_new.total
            step *= 1.2  # accept and grow
        else:
            step *= 0.5  # reject and shrink
            if step < 1e-12:
                break
        result.energies.append(energy)
        result.iterations = it

    result.final_coords = x
    result.gradient_norm = float(np.linalg.norm(grad))
    if apply:
        system.coords[:] = x
    return result


def minimize_lbfgs(
    system: MolecularSystem,
    pairlist: VerletPairList,
    max_steps: int = 200,
    gtol: float = 1e-5,
    apply: bool = True,
) -> MinimizationResult:
    """L-BFGS-B minimization with a frozen pair list (rebuilt once)."""
    x0 = system.coords.copy()
    pairs = pairlist.pairs_for_step(0, x0)
    shape = x0.shape
    energies: List[float] = []

    def fun(flat: np.ndarray):
        x = flat.reshape(shape)
        report, grad = total_energy(system, pairs, x)
        energies.append(report.total)
        return report.total, grad.ravel()

    res = scipy.optimize.minimize(
        fun,
        x0.ravel(),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_steps, "gtol": gtol},
    )
    out = MinimizationResult(
        energies=energies or [float(res.fun)],
        final_coords=res.x.reshape(shape),
        converged=bool(res.success),
        iterations=int(res.nit),
        gradient_norm=float(np.linalg.norm(res.jac)),
    )
    if apply:
        system.coords[:] = out.final_coords
    return out
