"""Molecular dynamics: velocity-Verlet integration of Newton's equations.

Integrates ``m_i d^2/dt^2 r_i(t) = F_i(t)`` (eq. 1 of the paper) and
reports per step the quantities the real Opal displays at the end of
each simulation step: total energy, volume, pressure and temperature.

Units: kcal/mol, Angstrom, amu; the time unit that makes these
consistent is 1 ~ 48.888 fs, so ``dt=0.01`` is about half a femtosecond.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError
from .forcefield import EnergyReport, total_energy
from .pairlist import VerletPairList
from .system import MolecularSystem

#: Boltzmann constant in kcal mol^-1 K^-1.
KB = 1.987204259e-3


@dataclass(frozen=True)
class StepRecord:
    """What Opal prints at the end of one simulation step."""

    step: int
    energy_total: float
    energy_potential: float
    energy_kinetic: float
    volume: float
    pressure: float
    temperature: float
    report: EnergyReport


@dataclass
class MDResult:
    records: List[StepRecord] = field(default_factory=list)
    final_coords: Optional[np.ndarray] = None
    final_velocities: Optional[np.ndarray] = None

    @property
    def energies(self) -> np.ndarray:
        """Total energy per recorded step."""
        return np.array([r.energy_total for r in self.records])

    @property
    def temperatures(self) -> np.ndarray:
        """Instantaneous temperature per recorded step."""
        return np.array([r.temperature for r in self.records])

    def energy_drift(self) -> float:
        """Relative drift of total energy over the run (conservation check)."""
        e = self.energies
        scale = max(abs(e[0]), 1e-10)
        return float((e[-1] - e[0]) / scale)


class VelocityVerlet:
    """NVE integrator with optional velocity-rescaling thermostat."""

    def __init__(
        self,
        system: MolecularSystem,
        pairlist: VerletPairList,
        dt: float = 0.005,
        temperature: Optional[float] = None,
        thermostat: bool = False,
        seed: int = 0,
    ) -> None:
        if dt <= 0:
            raise WorkloadError("dt must be positive")
        self.system = system
        self.pairlist = pairlist
        self.dt = dt
        self.target_temperature = temperature
        self.thermostat = thermostat
        self.velocities = np.zeros_like(system.coords)
        if temperature is not None and temperature > 0:
            rng = np.random.default_rng(seed)
            sigma = np.sqrt(KB * temperature / self.system.masses)[:, None]
            self.velocities = sigma * rng.standard_normal(system.coords.shape)
            self._remove_drift()
        self._step_index = 0
        pairs = self.pairlist.pairs_for_step(0, system.coords)
        self._report, self._grad = total_energy(system, pairs, system.coords)

    # ------------------------------------------------------------------
    def _remove_drift(self) -> None:
        m = self.system.masses[:, None]
        self.velocities -= (m * self.velocities).sum(axis=0) / m.sum()

    def kinetic_energy(self) -> float:
        """Total kinetic energy, kcal/mol."""
        v2 = np.einsum("ij,ij->i", self.velocities, self.velocities)
        return float(0.5 * np.sum(self.system.masses * v2))

    def temperature(self) -> float:
        """Instantaneous temperature from equipartition, Kelvin."""
        dof = max(3 * self.system.n - 3, 1)
        return 2.0 * self.kinetic_energy() / (dof * KB)

    def pressure(self) -> float:
        """Instantaneous pressure from the virial (kcal/mol/A^3)."""
        virial = -float(
            np.einsum("ij,ij->", self.system.coords, self._grad)
        )
        v = self.system.volume
        return (2.0 * self.kinetic_energy() + virial) / (3.0 * v)

    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Advance one velocity-Verlet step and report observables."""
        sys_ = self.system
        m = sys_.masses[:, None]
        dt = self.dt
        forces = -self._grad
        self.velocities += 0.5 * dt * forces / m
        sys_.coords += dt * self.velocities
        self._step_index += 1
        pairs = self.pairlist.pairs_for_step(self._step_index, sys_.coords)
        self._report, self._grad = total_energy(sys_, pairs, sys_.coords)
        self.velocities += 0.5 * dt * (-self._grad) / m

        if self.thermostat and self.target_temperature:
            t_now = self.temperature()
            if t_now > 0:
                self.velocities *= np.sqrt(self.target_temperature / t_now)

        # one kinetic-energy pass per step: temperature and pressure are
        # derived from the same ke with exactly the formulas of
        # temperature() / pressure(), so the record is bit-identical to
        # calling each method (which would redo the v^2 reduction).
        ke = self.kinetic_energy()
        pe = self._report.total
        dof = max(3 * sys_.n - 3, 1)
        virial = -float(np.einsum("ij,ij->", sys_.coords, self._grad))
        return StepRecord(
            step=self._step_index,
            energy_total=pe + ke,
            energy_potential=pe,
            energy_kinetic=ke,
            volume=sys_.volume,
            pressure=(2.0 * ke + virial) / (3.0 * sys_.volume),
            temperature=2.0 * ke / (dof * KB),
            report=self._report,
        )

    def run(self, steps: int) -> MDResult:
        """Advance ``steps`` steps and collect the records."""
        if steps < 1:
            raise WorkloadError("steps must be >= 1")
        result = MDResult()
        for _ in range(steps):
            result.records.append(self.step())
        result.final_coords = self.system.coords.copy()
        result.final_velocities = self.velocities.copy()
        return result
