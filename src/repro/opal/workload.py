"""Operation-count workload model of one Opal run.

Bridges the application configuration (:class:`ApplicationParams`) to
the quantities the simulated client/server program needs each phase:
per-server flop counts for the update and energy routines (through the
pseudo-random pair distribution, including its even-p anomaly), message
sizes, the client's sequential work and per-server working sets.

The *total* work amounts follow the complexities the paper measured for
the real code (eqs. (3)-(5)); the per-server split, the communication
and everything temporal emerge from the discrete-event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parameters import (
    ApplicationParams,
    energy_pair_work,
    update_pair_work,
)
from ..core.space import SpaceModel
from ..errors import WorkloadError
from ..netsim.rng import spawn_generator
from ..sciddle import HEADER_BYTES
from . import costs
from .distribution import DEFAULT_DEFECT, PairDistribution


@dataclass(frozen=True)
class OpalWorkload:
    """All work/size quantities of one configured Opal run."""

    app: ApplicationParams
    seed: int = 0
    defect: float = DEFAULT_DEFECT
    #: per-server multiplicative randomization noise of the pair shares
    share_noise: float = 0.01
    _dist: PairDistribution = field(init=False, repr=False)
    _shares: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.share_noise < 0 or self.share_noise >= 0.5:
            raise WorkloadError("share_noise must be in [0, 0.5)")
        object.__setattr__(
            self,
            "_dist",
            PairDistribution(self.app.servers, seed=self.seed, defect=self.defect),
        )
        object.__setattr__(self, "_shares", {})

    # -- totals (paper complexities) --------------------------------------
    @property
    def update_pairs_total(self) -> float:
        """Candidate pairs processed by ONE pair-list update."""
        return update_pair_work(self.app.n, self.app.gamma)

    @property
    def energy_pairs_total(self) -> float:
        """Active pairs evaluated by ONE energy evaluation."""
        return energy_pair_work(self.app.n, self.app.n_tilde)

    @property
    def updates_total(self) -> int:
        """Number of pair-list updates in the run (one per interval,
        always including step 0)."""
        s, iv = self.app.steps, self.app.update_interval
        return (s + iv - 1) // iv

    # -- per-server splits -------------------------------------------------
    def _noisy(self, shares: np.ndarray, label: str) -> np.ndarray:
        if self.share_noise == 0:
            return shares
        # one-shot stream: the same (seed, label) pair must restart the
        # identical noise every time an accessor recomputes the shares
        rng = spawn_generator(self.seed, label)
        factors = 1.0 + self.share_noise * rng.standard_normal(len(shares))
        noisy = shares * np.clip(factors, 0.5, 1.5)
        total = shares.sum()
        if noisy.sum() > 0:
            noisy *= total / noisy.sum()
        return noisy

    def _split(self, total: float, label: str) -> np.ndarray:
        # the split is a pure function of (app, seed, defect, noise), so
        # every recomputation yields the same array; memoize it — the
        # servers and the resilient client each ask per run, and the
        # distribution walk dominates an accessor call.  The cached
        # array is shared, hence frozen against mutation.
        cached = self._shares.get(label)
        if cached is None:
            cached = self._noisy(self._dist.shares(total), label)
            cached.setflags(write=False)
            self._shares[label] = cached
        return cached

    def server_update_pairs(self) -> np.ndarray:
        """Per-server candidate pairs for one update, shape (p,).

        The returned array is cached and read-only; copy before writing.
        """
        return self._split(self.update_pairs_total, "update")

    def server_energy_pairs(self) -> np.ndarray:
        """Per-server active pairs for one energy evaluation, shape (p,).

        The returned array is cached and read-only; copy before writing.
        """
        return self._split(self.energy_pairs_total, "energy")

    def server_update_flops(self) -> np.ndarray:
        """Per-server update flops for one list rebuild."""
        return self.server_update_pairs() * costs.UPDATE_PAIR_FLOPS

    def server_energy_flops(self) -> np.ndarray:
        """Per-server energy flops for one evaluation."""
        return self.server_energy_pairs() * costs.NB_PAIR_FLOPS

    def imbalance(self) -> float:
        """max/mean energy-work ratio across servers."""
        s = self.server_energy_pairs()
        return float(s.max() / s.mean()) if s.mean() > 0 else 1.0

    # -- client work ---------------------------------------------------------
    @property
    def seq_flops_per_step(self) -> float:
        """Client's bonded terms + reduction per step (behind a4)."""
        return costs.SEQ_ATOM_FLOPS * self.app.n

    # -- message sizes --------------------------------------------------------
    @property
    def coords_nbytes(self) -> int:
        """Coordinates message, client -> server (paper's alpha * n)."""
        return self.app.alpha * self.app.n

    @property
    def result_nbytes(self) -> int:
        """Energy reply: Van der Waals + Coulomb energies (2 doubles) plus
        the gradients of the interaction potential (alpha * n), eq. (9)."""
        return 16 + self.app.alpha * self.app.n

    @property
    def ack_nbytes(self) -> int:
        """Update reply: bare completion message (eq. 8)."""
        return 0  # the RPC header itself is accounted by the middleware

    @property
    def rpc_header_nbytes(self) -> int:
        """Bytes of the middleware RPC header."""
        return HEADER_BYTES

    # -- memory -----------------------------------------------------------------
    def server_working_set(self) -> float:
        """Bytes one server touches during the energy evaluation."""
        return SpaceModel(self.app.molecule).server_working_set(self.app.servers)

    def client_working_set(self) -> float:
        """Bytes the client touches in its sequential phase."""
        return SpaceModel(self.app.molecule).client_working_set()

    # -- aggregate sanity ----------------------------------------------------------
    def total_algorithmic_flops(self) -> float:
        """Whole-run algorithmic flops (all servers + client)."""
        return (
            self.updates_total * self.update_pairs_total * costs.UPDATE_PAIR_FLOPS
            + self.app.steps * self.energy_pairs_total * costs.NB_PAIR_FLOPS
            + self.app.steps * self.seq_flops_per_step
        )
