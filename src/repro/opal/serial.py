"""Serial Opal: the single-processor reference implementation.

The equivalent of Opal-2.6 — "a single processor runs the whole
computation".  The driver wires together a synthetic molecular system,
the cut-off pair list with its update interval, the force field and the
chosen engine (dynamics or energy minimization), and exposes the
operation counts the complexity model reasons about (candidate pairs
checked per update, active pairs evaluated per step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import WorkloadError
from .complexes import ComplexSpec
from .dynamics import MDResult, VelocityVerlet
from .minimize import MinimizationResult, steepest_descent
from .pairlist import VerletPairList
from .system import MolecularSystem, build_system


@dataclass
class SerialRunStats:
    """Operation counts of one serial run (validates eqs. (3)/(4))."""

    steps: int
    updates: int
    candidates_checked: int
    pairs_evaluated: int
    active_pairs_last: int

    def candidates_per_update(self) -> float:
        """Mean candidate pairs checked per list update."""
        return self.candidates_checked / max(self.updates, 1)

    def active_pairs_per_step(self) -> float:
        """Mean active pairs evaluated per step."""
        return self.pairs_evaluated / max(self.steps, 1)


class OpalSerial:
    """Single-processor Opal driver."""

    def __init__(
        self,
        spec_or_system,
        cutoff: Optional[float] = None,
        update_interval: int = 1,
        united_water: bool = True,
        seed: int = 0,
        pairlist_method: str = "brute",
    ) -> None:
        if isinstance(spec_or_system, MolecularSystem):
            self.system = spec_or_system
        elif isinstance(spec_or_system, ComplexSpec):
            self.system = build_system(
                spec_or_system, seed=seed, united_water=united_water
            )
        else:
            raise WorkloadError(
                "expected a ComplexSpec or MolecularSystem, got "
                f"{type(spec_or_system).__name__}"
            )
        self.cutoff = cutoff
        self.update_interval = update_interval
        self.pairlist = VerletPairList(
            self.system,
            cutoff=cutoff,
            update_interval=update_interval,
            method=pairlist_method,
        )
        self._steps_run = 0

    # ------------------------------------------------------------------
    def run_dynamics(
        self,
        steps: int = 10,
        dt: float = 0.002,
        temperature: Optional[float] = 300.0,
        thermostat: bool = False,
        seed: int = 0,
    ) -> MDResult:
        """Molecular dynamics for ``steps`` steps."""
        engine = VelocityVerlet(
            self.system,
            self.pairlist,
            dt=dt,
            temperature=temperature,
            thermostat=thermostat,
            seed=seed,
        )
        result = engine.run(steps)
        self._steps_run += steps
        return result

    def run_minimization(
        self, max_steps: int = 100, initial_step: float = 0.005
    ) -> MinimizationResult:
        """Energy minimization (Opal's energy-refinement mode)."""
        result = steepest_descent(
            self.system,
            self.pairlist,
            max_steps=max_steps,
            initial_step=initial_step,
        )
        self._steps_run += result.iterations
        return result

    # ------------------------------------------------------------------
    def stats(self) -> SerialRunStats:
        """Operation counts of the run so far."""
        s = self.pairlist.stats
        return SerialRunStats(
            steps=self._steps_run,
            updates=s.updates,
            candidates_checked=s.candidates_checked,
            pairs_evaluated=self.pairlist.pairs_evaluated,
            active_pairs_last=s.active_pairs_last,
        )
