"""Cut-off pair lists with periodic updates (Section 2.1).

The heart of Opal's approximation: "only the pairs of atoms whose
distance is less than a cut-off parameter are taken into account", with
the list rebuilt every ``update_interval`` steps.  Two builders are
provided — an O(n^2) blocked brute-force scan (what the real update
routine does: *all* pairs are checked on every update, which is why the
update cost stays quadratic) and a cell-list builder used as a fast
cross-check for large systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from ..errors import WorkloadError
from .system import MolecularSystem

#: i-block size for the blocked O(n^2) scan (keeps peak memory ~ block*n).
_BLOCK = 512


def _encode(i: np.ndarray, j: np.ndarray, n: int) -> np.ndarray:
    return i.astype(np.int64) * n + j.astype(np.int64)


@dataclass
class PairListStats:
    """Operation counts of pair-list maintenance (validates the a2 term)."""

    updates: int = 0
    candidates_checked: int = 0
    active_pairs_last: int = 0


class PairListBuilder:
    """Builds (m, 2) sorted pair index arrays under a cutoff."""

    def __init__(
        self,
        cutoff: Optional[float] = None,
        exclusions: Optional[np.ndarray] = None,
        method: str = "brute",
    ) -> None:
        if cutoff is not None and cutoff <= 0:
            raise WorkloadError("cutoff must be positive or None")
        if method not in ("brute", "cells"):
            raise WorkloadError("method must be 'brute' or 'cells'")
        self.cutoff = cutoff
        self.method = method
        self._excluded: Optional[Set[int]] = None
        self._exclusions = exclusions
        self.stats = PairListStats()

    # ------------------------------------------------------------------
    def _exclusion_codes(self, n: int) -> Set[int]:
        if self._excluded is None:
            if self._exclusions is None or len(self._exclusions) == 0:
                self._excluded = set()
            else:
                e = np.sort(np.asarray(self._exclusions), axis=1)
                self._excluded = set(_encode(e[:, 0], e[:, 1], n).tolist())
        return self._excluded

    def build(self, coords: np.ndarray) -> np.ndarray:
        """All (i < j) pairs within the cutoff, minus exclusions."""
        n = len(coords)
        if self.method == "cells" and self.cutoff is not None:
            pairs = self._build_cells(coords)
        else:
            pairs = self._build_brute(coords)
        self.stats.updates += 1
        excl = self._exclusion_codes(n)
        if excl and len(pairs):
            codes = _encode(pairs[:, 0], pairs[:, 1], n)
            keep = ~np.isin(codes, np.fromiter(excl, dtype=np.int64))
            pairs = pairs[keep]
        self.stats.active_pairs_last = len(pairs)
        return pairs

    # ------------------------------------------------------------------
    def _build_brute(self, coords: np.ndarray) -> np.ndarray:
        n = len(coords)
        self.stats.candidates_checked += n * (n - 1) // 2
        cutoff2 = None if self.cutoff is None else self.cutoff * self.cutoff
        out_i, out_j = [], []
        for start in range(0, n, _BLOCK):
            stop = min(start + _BLOCK, n)
            block = coords[start:stop]  # (b, 3)
            d = block[:, None, :] - coords[None, :, :]  # (b, n, 3)
            r2 = np.einsum("bij,bij->bi", d, d)
            ii, jj = np.nonzero(
                r2 <= cutoff2 if cutoff2 is not None else np.ones_like(r2, bool)
            )
            gi = ii + start
            keep = jj > gi
            out_i.append(gi[keep])
            out_j.append(jj[keep])
        if not out_i:
            return np.zeros((0, 2), dtype=np.int64)
        return np.stack(
            [np.concatenate(out_i), np.concatenate(out_j)], axis=1
        ).astype(np.int64)

    def _build_cells(self, coords: np.ndarray) -> np.ndarray:
        c = self.cutoff
        lo = coords.min(axis=0)
        cell_idx = np.floor((coords - lo) / c).astype(np.int64)
        dims = cell_idx.max(axis=0) + 1
        flat = (
            cell_idx[:, 0] * dims[1] * dims[2]
            + cell_idx[:, 1] * dims[2]
            + cell_idx[:, 2]
        )
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        # cell -> slice of `order`
        uniq, starts = np.unique(sorted_flat, return_index=True)
        cell_of = {int(u): (int(s), int(e)) for u, s, e in zip(
            uniq, starts, np.append(starts[1:], len(order))
        )}
        neighbour_offsets = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        c2 = c * c
        out_i, out_j = [], []
        for u in uniq:
            s, e = cell_of[int(u)]
            a = order[s:e]
            ux = int(u) // (dims[1] * dims[2])
            uy = (int(u) // dims[2]) % dims[1]
            uz = int(u) % dims[2]
            for dx, dy, dz in neighbour_offsets:
                # explicit 3-D bounds: flat-offset arithmetic would alias
                # neighbours when a grid dimension is 1 or 2 cells wide
                vx, vy, vz = ux + dx, uy + dy, uz + dz
                if not (0 <= vx < dims[0] and 0 <= vy < dims[1] and 0 <= vz < dims[2]):
                    continue
                v = vx * dims[1] * dims[2] + vy * dims[2] + vz
                if v < int(u) or v not in cell_of:
                    continue  # each cell pair handled once
                s2, e2 = cell_of[v]
                b = order[s2:e2]
                d = coords[a][:, None, :] - coords[b][None, :, :]
                r2 = np.einsum("xij,xij->xi", d, d)
                self.stats.candidates_checked += r2.size
                ii, jj = np.nonzero(r2 <= c2)
                gi, gj = a[ii], b[jj]
                if v == int(u):
                    keep = gj > gi
                    gi, gj = gi[keep], gj[keep]
                lo_ = np.minimum(gi, gj)
                hi_ = np.maximum(gi, gj)
                out_i.append(lo_)
                out_j.append(hi_)
        if not out_i:
            return np.zeros((0, 2), dtype=np.int64)
        pairs = np.stack(
            [np.concatenate(out_i), np.concatenate(out_j)], axis=1
        ).astype(np.int64)
        # canonical order for reproducibility
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return pairs[order]


# ----------------------------------------------------------------------
class VerletPairList:
    """A managed pair list: rebuilt every ``update_interval`` steps.

    This is the "list of all active pairs" of the paper, including the
    user-selectable update interval (full update = 1, the paper's
    partial update = 10).
    """

    def __init__(
        self,
        system: MolecularSystem,
        cutoff: Optional[float],
        update_interval: int = 1,
        method: str = "brute",
    ) -> None:
        if update_interval < 1:
            raise WorkloadError("update_interval must be >= 1")
        self.system = system
        self.update_interval = update_interval
        self.builder = PairListBuilder(
            cutoff=cutoff,
            exclusions=system.topology.excluded_pairs(),
            method=method,
        )
        self._pairs: Optional[np.ndarray] = None
        self._last_update_step: Optional[int] = None
        self.pairs_evaluated = 0

    @property
    def stats(self) -> PairListStats:
        """Operation counters of the underlying builder."""
        return self.builder.stats

    def is_update_step(self, step: int) -> bool:
        """Whether the list is rebuilt at this step."""
        return step % self.update_interval == 0

    def pairs_for_step(self, step: int, coords: Optional[np.ndarray] = None) -> np.ndarray:
        """The active pair list for ``step``, rebuilding when due."""
        if self._pairs is None or self.is_update_step(step):
            x = self.system.coords if coords is None else coords
            self._pairs = self.builder.build(x)
            self._last_update_step = step
        self.pairs_evaluated += len(self._pairs)
        return self._pairs
