"""Cut-off pair lists with periodic updates (Section 2.1).

The heart of Opal's approximation: "only the pairs of atoms whose
distance is less than a cut-off parameter are taken into account", with
the list rebuilt every ``update_interval`` steps.  Two builders are
provided — an O(n^2) blocked brute-force scan (what the real update
routine does: *all* pairs are checked on every update, which is why the
update cost stays quadratic) and a cell-list builder used as a fast
cross-check for large systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from .system import MolecularSystem

#: i-block size for the blocked O(n^2) scan (keeps peak memory ~ block*n).
_BLOCK = 512

#: The 13 lexicographically positive cell offsets.  Together with the
#: self cell they cover each cell pair exactly once: for in-bounds
#: neighbours the flat-index delta of a lexicographically positive
#: offset is strictly positive, so "visit only v > u" reduces to this
#: half stencil.
_HALF_STENCIL = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) > (0, 0, 0)
]


def _encode(i: np.ndarray, j: np.ndarray, n: int) -> np.ndarray:
    return i.astype(np.int64) * n + j.astype(np.int64)


def _cross_blocks(
    a_start: np.ndarray,
    a_len: np.ndarray,
    b_start: np.ndarray,
    b_len: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Index arrays of every (A x B) combination over K aligned blocks.

    Given K blocks where block k spans ``a_start[k] : a_start[k]+a_len[k]``
    on one side and ``b_start[k] : b_start[k]+b_len[k]`` on the other,
    returns ``(ia, ib)`` enumerating all ``sum(a_len*b_len)`` cross
    combinations without a Python-level loop over blocks.
    """
    if a_len.sum() == 0 or (a_len * b_len).sum() == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    k = len(a_len)
    # every A slot, blocks concatenated (ranges via the arange-offset
    # trick: integer add/subtract only, no per-element division)
    na = int(a_len.sum())
    a_block = np.repeat(np.arange(k), a_len)
    a_cum = np.concatenate(([0], np.cumsum(a_len)[:-1]))
    a_slots = np.arange(na, dtype=np.int64) - a_cum[a_block] + a_start[a_block]
    # each A slot meets its block's whole B range
    ia = np.repeat(a_slots, b_len[a_block])
    # B ranges, one copy per A slot of the same block
    nb_rep = b_len[a_block]
    total = int(nb_rep.sum())
    b_cum = np.concatenate(([0], np.cumsum(nb_rep)[:-1]))
    rep_block = np.repeat(a_block, nb_rep)
    slot_of = np.repeat(np.arange(na), nb_rep)
    ib = (
        np.arange(total, dtype=np.int64)
        - b_cum[slot_of]
        + b_start[rep_block]
    )
    return ia, ib


@dataclass
class PairListStats:
    """Operation counts of pair-list maintenance (validates the a2 term)."""

    updates: int = 0
    candidates_checked: int = 0
    active_pairs_last: int = 0


class PairListBuilder:
    """Builds (m, 2) sorted pair index arrays under a cutoff."""

    def __init__(
        self,
        cutoff: Optional[float] = None,
        exclusions: Optional[np.ndarray] = None,
        method: str = "brute",
    ) -> None:
        if cutoff is not None and cutoff <= 0:
            raise WorkloadError("cutoff must be positive or None")
        if method not in ("brute", "cells"):
            raise WorkloadError("method must be 'brute' or 'cells'")
        self.cutoff = cutoff
        self.method = method
        #: sorted, unique encoded exclusion codes (int64), built lazily —
        #: an array rather than a Python set so the membership test in
        #: :meth:`build` is one vectorized ``np.isin`` over sorted input
        self._excluded: Optional[np.ndarray] = None
        self._exclusions = exclusions
        self.stats = PairListStats()

    # ------------------------------------------------------------------
    def _exclusion_codes(self, n: int) -> np.ndarray:
        if self._excluded is None:
            if self._exclusions is None or len(self._exclusions) == 0:
                self._excluded = np.zeros(0, dtype=np.int64)
            else:
                e = np.sort(np.asarray(self._exclusions), axis=1)
                self._excluded = np.unique(_encode(e[:, 0], e[:, 1], n))
        return self._excluded

    def build(self, coords: np.ndarray) -> np.ndarray:
        """All (i < j) pairs within the cutoff, minus exclusions."""
        n = len(coords)
        if self.method == "cells" and self.cutoff is not None:
            pairs = self._build_cells(coords)
        else:
            pairs = self._build_brute(coords)
        self.stats.updates += 1
        excl = self._exclusion_codes(n)
        if excl.size and len(pairs):
            codes = _encode(pairs[:, 0], pairs[:, 1], n)
            # both sides are unique: codes come from distinct (i < j)
            # pairs and the exclusion table is deduplicated above
            keep = ~np.isin(codes, excl, assume_unique=True)
            pairs = pairs[keep]
        self.stats.active_pairs_last = len(pairs)
        return pairs

    # ------------------------------------------------------------------
    def _build_brute(self, coords: np.ndarray) -> np.ndarray:
        n = len(coords)
        self.stats.candidates_checked += n * (n - 1) // 2
        cutoff2 = None if self.cutoff is None else self.cutoff * self.cutoff
        out_i, out_j = [], []
        for start in range(0, n, _BLOCK):
            stop = min(start + _BLOCK, n)
            block = coords[start:stop]  # (b, 3)
            d = block[:, None, :] - coords[None, :, :]  # (b, n, 3)
            r2 = np.einsum("bij,bij->bi", d, d)
            ii, jj = np.nonzero(
                r2 <= cutoff2 if cutoff2 is not None else np.ones_like(r2, bool)
            )
            gi = ii + start
            keep = jj > gi
            out_i.append(gi[keep])
            out_j.append(jj[keep])
        if not out_i:
            return np.zeros((0, 2), dtype=np.int64)
        return np.stack(
            [np.concatenate(out_i), np.concatenate(out_j)], axis=1
        ).astype(np.int64)

    def _build_cells(self, coords: np.ndarray) -> np.ndarray:
        """Cell-list scan, vectorized over *all* cells at once.

        Atoms are binned into cubic cells of edge ``cutoff`` and sorted
        by cell; a cell's atoms then form one contiguous slice.  Every
        (cell, neighbour-cell) block — the self cell plus the 13 cells
        of the half stencil — is expanded into candidate index pairs in
        a single :func:`_cross_blocks` call per offset, so no Python
        loop ever runs over individual cells.  The result is identical
        to the brute scan: each unordered pair is generated at most
        once, canonicalized to (min, max), and lexsorted.
        """
        c = self.cutoff
        lo = coords.min(axis=0)
        cell_idx = np.floor((coords - lo) / c).astype(np.int64)
        dims = cell_idx.max(axis=0) + 1
        d1d2 = int(dims[1] * dims[2])
        flat = cell_idx[:, 0] * d1d2 + cell_idx[:, 1] * dims[2] + cell_idx[:, 2]
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        xs = coords[order]  # cell-contiguous coordinates
        # occupied cell -> (start, count) slice of the sorted arrays
        uniq, starts, counts = np.unique(
            sorted_flat, return_index=True, return_counts=True
        )
        occ = np.stack(
            [uniq // d1d2, (uniq // dims[2]) % dims[1], uniq % dims[2]], axis=1
        )
        c2 = c * c
        checked = 0
        out_i, out_j = [], []

        x0, x1, x2 = xs[:, 0].copy(), xs[:, 1].copy(), xs[:, 2].copy()

        def _emit(ia: np.ndarray, ib: np.ndarray, triangular: bool) -> None:
            """Distance-filter candidate slots and record original ids."""
            if triangular:
                # self-cell block: the stable sort keeps original ids
                # ascending within a cell, so ia < ib both picks each
                # unordered pair once and pre-canonicalizes it
                keep = ia < ib
                ia, ib = ia[keep], ib[keep]
            # per-axis arithmetic on contiguous columns: no (m, 3)
            # gather temporaries, same r^2 to the last bit
            d = x0[ia] - x0[ib]
            r2 = d * d
            d = x1[ia] - x1[ib]
            r2 += d * d
            d = x2[ia] - x2[ib]
            r2 += d * d
            hit = r2 <= c2
            gi, gj = order[ia[hit]], order[ib[hit]]
            out_i.append(np.minimum(gi, gj))
            out_j.append(np.maximum(gi, gj))

        # self-cell pairs of every occupied cell at once; the full n*n
        # block is what the per-cell scan checked, hence the counter
        checked += int(np.sum(counts * counts))
        _emit(*_cross_blocks(starts, counts, starts, counts), triangular=True)

        # resolve all 13 offsets' (cell, neighbour) block lists first,
        # then expand every cross-cell block in one _cross_blocks call
        u_blocks, v_blocks = [], []
        for dx, dy, dz in _HALF_STENCIL:
            # explicit 3-D bounds: flat-offset arithmetic would alias
            # neighbours when a grid dimension is 1 or 2 cells wide
            vx = occ[:, 0] + dx
            vy = occ[:, 1] + dy
            vz = occ[:, 2] + dz
            valid = (
                (vx >= 0) & (vx < dims[0])
                & (vy >= 0) & (vy < dims[1])
                & (vz >= 0) & (vz < dims[2])
            )
            if not valid.any():
                continue
            target = vx[valid] * d1d2 + vy[valid] * dims[2] + vz[valid]
            # occupied neighbours only (binary search into the cell table)
            k = np.searchsorted(uniq, target)
            k_ok = k < len(uniq)
            k = k[k_ok]
            hit = uniq[k] == target[k_ok]
            u_blocks.append(np.nonzero(valid)[0][k_ok][hit])
            v_blocks.append(k[hit])
        if u_blocks:
            u_sel = np.concatenate(u_blocks)
            v_sel = np.concatenate(v_blocks)
            if len(u_sel):
                a_start, a_len = starts[u_sel], counts[u_sel]
                b_start, b_len = starts[v_sel], counts[v_sel]
                checked += int(np.sum(a_len * b_len))
                _emit(
                    *_cross_blocks(a_start, a_len, b_start, b_len),
                    triangular=False,
                )

        self.stats.candidates_checked += checked
        pairs_i = np.concatenate(out_i) if out_i else np.zeros(0, dtype=np.int64)
        if len(pairs_i) == 0:
            return np.zeros((0, 2), dtype=np.int64)
        pairs = np.stack([pairs_i, np.concatenate(out_j)], axis=1).astype(np.int64)
        # canonical order for reproducibility
        perm = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return pairs[perm]


# ----------------------------------------------------------------------
class VerletPairList:
    """A managed pair list: rebuilt every ``update_interval`` steps.

    This is the "list of all active pairs" of the paper, including the
    user-selectable update interval (full update = 1, the paper's
    partial update = 10).
    """

    def __init__(
        self,
        system: MolecularSystem,
        cutoff: Optional[float],
        update_interval: int = 1,
        method: str = "brute",
    ) -> None:
        if update_interval < 1:
            raise WorkloadError("update_interval must be >= 1")
        self.system = system
        self.update_interval = update_interval
        self.builder = PairListBuilder(
            cutoff=cutoff,
            exclusions=system.topology.excluded_pairs(),
            method=method,
        )
        self._pairs: Optional[np.ndarray] = None
        self._last_update_step: Optional[int] = None
        self.pairs_evaluated = 0

    @property
    def stats(self) -> PairListStats:
        """Operation counters of the underlying builder."""
        return self.builder.stats

    def is_update_step(self, step: int) -> bool:
        """Whether the list is rebuilt at this step."""
        return step % self.update_interval == 0

    def pairs_for_step(self, step: int, coords: Optional[np.ndarray] = None) -> np.ndarray:
        """The active pair list for ``step``, rebuilding when due."""
        if self._pairs is None or self.is_update_step(step):
            x = self.system.coords if coords is None else coords
            self._pairs = self.builder.build(x)
            self._last_update_step = step
        self.pairs_evaluated += len(self._pairs)
        return self._pairs
