"""Parallel Opal with real physics through the simulated middleware.

Where :mod:`repro.opal.parallel` drives the client/server program with
*operation counts* (for paper-scale problems), this module runs the
replicated-data parallelization with **actual numbers**: coordinates
travel in the RPC payloads, each server evaluates the Van der Waals and
Coulomb contributions of its pseudo-randomly assigned pair share, the
client reduces the partial energies and gradients, computes the bonded
terms and advances a velocity-Verlet step — a genuine parallel molecular
dynamics simulation executing inside the discrete-event cluster.

Its twin purposes:

* correctness: the parallel decomposition must produce the serial
  engine's energies and trajectories bit-for-bit up to floating point
  reassociation (asserted in tests and usable as an example);
* fidelity: virtual time still advances through the same Compute/Send
  cost models, so the run yields a breakdown exactly like the cost-model
  driver — the physics and performance faces share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError
from ..pvm import PvmSystem, PvmTask
from ..sciddle import (
    RpcReply,
    SciddleClient,
    SciddleServer,
    SyncDiscipline,
)
from . import costs
from .distribution import PairDistribution
from .dynamics import KB
from .forcefield import (
    angle_energy,
    bond_energy,
    dihedral_energy,
    improper_energy,
    nonbonded_energy,
)
from .parallel import make_opal_interface
from .system import MolecularSystem


def partition_candidate_pairs(
    system: MolecularSystem,
    servers: int,
    seed: int = 0,
    defect: float = 0.1,
) -> List[np.ndarray]:
    """Split ALL candidate pairs among servers (replicated-data method).

    Uses the same pseudo-random block dealer as the cost model — the
    even-p anomaly therefore exists in the physics runs too.  Excluded
    (bonded) pairs are removed before dealing.
    """
    n = system.n
    iu, ju = np.triu_indices(n, k=1)
    pairs = np.stack([iu, ju], axis=1)
    excl = system.topology.excluded_pairs()
    if len(excl):
        codes = pairs[:, 0] * n + pairs[:, 1]
        excl_codes = excl[:, 0] * n + excl[:, 1]
        pairs = pairs[~np.isin(codes, excl_codes)]
    dist = PairDistribution(servers, seed=seed, defect=defect)
    n_blocks = -(-len(pairs) // dist.block)
    owners_per_block = dist.assign_blocks(n_blocks)
    owner = np.repeat(owners_per_block, dist.block)[: len(pairs)]
    return [pairs[owner == s] for s in range(servers)]


@dataclass
class PhysicsStepRecord:
    """Observables reduced by the client at the end of one step."""

    step: int
    e_vdw: float
    e_coul: float
    e_bonded: float
    e_kinetic: float
    temperature: float

    @property
    def e_potential(self) -> float:
        """Bonded + non-bonded potential energy."""
        return self.e_vdw + self.e_coul + self.e_bonded

    @property
    def e_total(self) -> float:
        """Potential + kinetic energy."""
        return self.e_potential + self.e_kinetic


@dataclass
class PhysicsRunResult:
    """Outcome of one physics-mode parallel run."""

    records: List[PhysicsStepRecord] = field(default_factory=list)
    wall_time: float = 0.0
    final_coords: Optional[np.ndarray] = None
    server_pair_counts: List[int] = field(default_factory=list)

    @property
    def energies(self) -> np.ndarray:
        """Total energy per recorded step."""
        return np.array([r.e_total for r in self.records])


# ----------------------------------------------------------------------
def _physics_server(task: PvmTask, iface, sync, system, candidates, working_set):
    """One server: keep replicated data, filter and evaluate its pairs."""
    state = {"active": candidates}

    def update_lists(t, args):
        yield from sync.phase_barrier(t, f"upd_start@{args['step']}")
        coords = args["coords"]
        if args["cutoff"] is None:
            state["active"] = candidates
        else:
            d = coords[candidates[:, 0]] - coords[candidates[:, 1]]
            r2 = np.einsum("ij,ij->i", d, d)
            state["active"] = candidates[r2 <= args["cutoff"] ** 2]
        yield from t.compute(
            flops=len(candidates) * costs.UPDATE_PAIR_FLOPS,
            working_set=working_set,
        )
        yield from sync.phase_barrier(t, f"upd_end@{args['step']}")
        return RpcReply(nbytes=0)

    def eval_nonbonded(t, args):
        yield from sync.phase_barrier(t, f"nbi_start@{args['step']}")
        coords = args["coords"]
        e_vdw, e_coul, grad = nonbonded_energy(system, state["active"], coords)
        yield from t.compute(
            flops=max(len(state["active"]), 1) * costs.NB_PAIR_FLOPS,
            working_set=working_set,
        )
        yield from sync.phase_barrier(t, f"nbi_end@{args['step']}")
        return RpcReply(
            nbytes=16 + 24 * system.n,
            payload={"e_vdw": e_vdw, "e_coul": e_coul, "grad": grad,
                     "pairs": len(state["active"])},
        )

    server = SciddleServer(task, iface)
    server.bind("update_lists", update_lists)
    server.bind("eval_nonbonded", eval_nonbonded)
    yield from server.run()


def _physics_client(
    task: PvmTask,
    iface,
    sync,
    system: MolecularSystem,
    server_tids,
    steps,
    dt,
    cutoff,
    update_interval,
    temperature,
    seed,
    result: PhysicsRunResult,
):
    client = SciddleClient(task, iface, server_tids)
    coords = system.coords.copy()
    masses = system.masses[:, None]
    rng = np.random.default_rng(seed)
    if temperature and temperature > 0:
        sigma = np.sqrt(KB * temperature / system.masses)[:, None]
        velocities = sigma * rng.standard_normal(coords.shape)
        velocities -= (masses * velocities).sum(axis=0) / masses.sum()
    else:
        velocities = np.zeros_like(coords)
    coords_nbytes = 24 * system.n
    t0 = task.now
    grad = None

    def gather_forces(step):
        """update (if due) + energy RPCs; returns total gradient/energies."""
        nonlocal grad
        if step % update_interval == 0:
            handles = yield from client.call_all(
                "update_lists",
                args_for=lambda i, tid: {
                    "step": step, "coords": coords, "cutoff": cutoff,
                },
                nbytes=coords_nbytes,
            )
            yield from sync.phase_barrier(task, f"upd_start@{step}")
            yield from sync.phase_barrier(task, f"upd_end@{step}")
            yield from client.wait_all(handles)
        handles = yield from client.call_all(
            "eval_nonbonded",
            args_for=lambda i, tid: {"step": step, "coords": coords},
            nbytes=coords_nbytes,
        )
        yield from sync.phase_barrier(task, f"nbi_start@{step}")
        yield from sync.phase_barrier(task, f"nbi_end@{step}")
        replies = yield from client.wait_all(handles)
        e_vdw = sum(r["e_vdw"] for r in replies)
        e_coul = sum(r["e_coul"] for r in replies)
        grad_nb = sum(r["grad"] for r in replies)
        result.server_pair_counts = [r["pairs"] for r in replies]
        # client: the few remaining (bonded) interactions + reduction
        e_b, g_b = bond_energy(system, coords)
        e_a, g_a = angle_energy(system, coords)
        e_d, g_d = dihedral_energy(system, coords)
        e_i, g_i = improper_energy(system, coords)
        yield from task.compute(flops=costs.SEQ_ATOM_FLOPS * system.n)
        grad = grad_nb + g_b + g_a + g_d + g_i
        return e_vdw, e_coul, e_b + e_a + e_d + e_i

    e_vdw, e_coul, e_bonded = yield from gather_forces(0)
    for step in range(1, steps + 1):
        forces = -grad
        velocities += 0.5 * dt * forces / masses
        coords += dt * velocities
        e_vdw, e_coul, e_bonded = yield from gather_forces(step)
        velocities += 0.5 * dt * (-grad) / masses
        ke = float(0.5 * np.sum(system.masses * np.einsum("ij,ij->i", velocities, velocities)))
        dof = max(3 * system.n - 3, 1)
        result.records.append(
            PhysicsStepRecord(
                step=step,
                e_vdw=e_vdw,
                e_coul=e_coul,
                e_bonded=e_bonded,
                e_kinetic=ke,
                temperature=2.0 * ke / (dof * KB),
            )
        )

    yield from client.shutdown()
    result.wall_time = task.now - t0
    result.final_coords = coords


# ----------------------------------------------------------------------
def run_parallel_opal_physics(
    system: MolecularSystem,
    servers: int,
    platform,
    steps: int = 5,
    dt: float = 0.0005,
    cutoff: Optional[float] = None,
    update_interval: int = 1,
    temperature: Optional[float] = None,
    sync_mode: str = "accounted",
    seed: int = 0,
    defect: float = 0.1,
) -> PhysicsRunResult:
    """Run real parallel MD on the simulated ``platform``.

    Returns per-step observables plus the virtual wall time.  Intended
    for systems of a few hundred mass centers (the physics is O(n^2) in
    host time); paper-scale performance studies use
    :func:`repro.opal.parallel.run_parallel_opal` instead.
    """
    if servers < 1:
        raise WorkloadError("servers must be >= 1")
    if steps < 1:
        raise WorkloadError("steps must be >= 1")
    cluster = platform.build_cluster(servers + 1, seed=seed)
    pvm = PvmSystem(cluster, barrier_cost=platform.sync_cost)
    iface = make_opal_interface()
    sync = SyncDiscipline(sync_mode, group="opal-phys", count=servers + 1)
    partitions = partition_candidate_pairs(system, servers, seed=seed, defect=defect)
    working_set = 8.0 * sum(len(p) for p in partitions) / servers + 48.0 * system.n

    result = PhysicsRunResult()
    tids = []
    for i in range(servers):
        proc = pvm.spawn(
            f"pserver{i}",
            platform.place(cluster, i + 1),
            _physics_server,
            iface,
            sync,
            system,
            partitions[i],
            working_set,
        )
        tids.append(proc.tid)
    pvm.spawn(
        "pclient",
        platform.place(cluster, 0),
        _physics_client,
        iface,
        sync,
        system,
        tids,
        steps,
        dt,
        cutoff,
        update_interval,
        temperature,
        seed,
        result,
    )
    pvm.run()
    return result
