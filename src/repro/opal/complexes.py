"""Molecular complex descriptors and the paper's named workloads.

A :class:`ComplexSpec` carries the statistics the performance model and
the workload generator consume: number of protein (solute) atoms, number
of water molecules, and the number density of mass centers.  The actual
3-D structures used by the physics engine are built from these specs in
:mod:`repro.opal.system` (the paper's real NMR structures are not
available; see DESIGN.md substitutions).

The paper's complexes:

* *medium*: Antennapedia homeodomain / DNA complex, 1575 atoms in 2714
  waters = 4289 mass centers, gamma = 0.6329;
* *large*: LFB homeodomain NMR structure, 1655 atoms in 4634 waters =
  6289 mass centers, gamma = 0.7368;
* *small*: used in the calibration design but not sized in the paper —
  we use a 1000-mass-center complex with a comparable water fraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import WorkloadError

#: Default mass-center number density of a solvated protein complex, in
#: centers per cubic Angstrom (water contributes ~0.0334 molecules/A^3,
#: protein regions are denser in atoms).
DEFAULT_DENSITY = 0.045


@dataclass(frozen=True)
class ComplexSpec:
    """Statistics of one molecular complex (solute + solvent)."""

    name: str
    protein_atoms: int
    waters: int
    #: mass centers per cubic Angstrom
    density: float = DEFAULT_DENSITY
    description: str = ""

    def __post_init__(self) -> None:
        if self.protein_atoms < 2:
            raise WorkloadError("a complex needs at least two solute atoms")
        if self.waters < 0:
            raise WorkloadError("waters must be >= 0")
        if self.density <= 0:
            raise WorkloadError("density must be positive")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Mass centers with the united-water model (paper's n)."""
        return self.protein_atoms + self.waters

    @property
    def n_explicit(self) -> int:
        """Atom count with three-site water (the pre-optimization model)."""
        return self.protein_atoms + 3 * self.waters

    def mass_centers(self, united_water: bool = True) -> int:
        """Mass-center count under either water model."""
        return self.n if united_water else self.n_explicit

    @property
    def gamma(self) -> float:
        """Water fraction of the mass centers (paper's gamma)."""
        return self.waters / self.n

    @property
    def volume(self) -> float:
        """Complex volume in cubic Angstroms implied by the density."""
        return self.n / self.density

    @property
    def box_edge(self) -> float:
        """Edge of the equivalent cubic simulation box, Angstroms."""
        return self.volume ** (1.0 / 3.0)

    # ------------------------------------------------------------------
    def n_tilde(self, cutoff: Optional[float]) -> float:
        """The model's n~: "the average number of neighboring atoms
        considered for their total energy calculation", a function of the
        cutoff radius and the volume density of the complex.

        Taken literally as the paper defines it — the full neighbour
        count ``density * 4/3 pi c^3`` within the cutoff sphere (not the
        per-pair half): for the medium complex at 10 Angstrom this is
        ~190, which reproduces the paper's compute/communication balance
        in Figures 5c/5d (fast and SMP CoPs still ahead of the T3E at
        seven servers, J90 and slow CoPs saturating at ~3).

        ``cutoff=None`` means no cutoff: n~ is infinite.
        """
        if cutoff is None:
            return math.inf
        if cutoff <= 0:
            raise WorkloadError("cutoff must be positive (or None for no cutoff)")
        return self.density * (4.0 / 3.0) * math.pi * cutoff**3

    def cutoff_effective(self, cutoff: Optional[float]) -> bool:
        """Whether ``cutoff`` actually reduces the pair count.

        The paper contrasts an *effective* 10 Angstrom cutoff with a
        "large, ineffective one at 60 Angstrom": when the cutoff sphere
        holds more than (n-1)/2 pairs per center, nothing is saved.
        """
        return self.n_tilde(cutoff) < (self.n - 1) / 2.0

    def active_pairs(self, cutoff: Optional[float]) -> float:
        """Pairs evaluated in one energy evaluation under ``cutoff``."""
        all_pairs = self.n * (self.n - 1) / 2.0
        if cutoff is None:
            return all_pairs
        return min(all_pairs, self.n_tilde(cutoff) * self.n)


# ----------------------------------------------------------------------
#: The paper's medium complex (Sec 2.4).
MEDIUM = ComplexSpec(
    "medium",
    protein_atoms=1575,
    waters=2714,
    description="Antennapedia homeodomain / DNA complex in water",
)

#: The paper's large complex (Sec 2.4).
LARGE = ComplexSpec(
    "large",
    protein_atoms=1655,
    waters=4634,
    description="NMR structure of the LFB homeodomain in water",
)

#: Small calibration complex (size not given in the paper; see module doc).
SMALL = ComplexSpec(
    "small",
    protein_atoms=360,
    waters=640,
    description="small solvated peptide (calibration-design filler size)",
)

NAMED_COMPLEXES: Dict[str, ComplexSpec] = {c.name: c for c in (SMALL, MEDIUM, LARGE)}


def get_complex(name: str) -> ComplexSpec:
    """Look up one of the named complexes ('small' | 'medium' | 'large')."""
    try:
        return NAMED_COMPLEXES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown complex {name!r}; available: {sorted(NAMED_COMPLEXES)}"
        ) from None
