"""Energies and gradients of the Opal interaction function V (Section 2.1).

All evaluators are fully vectorized over their terms and return
``(energy, gradient)`` with ``gradient[i] = dV/dr_i`` (the force is the
negative gradient).  Gradient correctness is enforced by numerical
differentiation tests in ``tests/opal/test_forcefield.py``.

Units: kcal/mol, Angstrom, elementary charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from .system import COULOMB_K, MolecularSystem

_EPS = 1e-12


def _scatter_add(grad: np.ndarray, idx: np.ndarray, g: np.ndarray) -> None:
    """``grad[idx] += g`` row-wise, via per-column ``np.bincount``.

    ``np.ufunc.at`` is unbuffered and an order of magnitude slower than
    a bincount reduction.  Each atom's contributions are still summed in
    pair order (bincount scans the input in order), so the result agrees
    with ``np.add.at`` to floating-point associativity; the vectorized
    vs. scalar equivalence tests pin the agreement at 1e-12.
    """
    n = grad.shape[0]
    grad[:, 0] += np.bincount(idx, weights=g[:, 0], minlength=n)
    grad[:, 1] += np.bincount(idx, weights=g[:, 1], minlength=n)
    grad[:, 2] += np.bincount(idx, weights=g[:, 2], minlength=n)


# ----------------------------------------------------------------------
def bond_energy(system: MolecularSystem, coords: Optional[np.ndarray] = None):
    """Covalent bond stretching: sum 1/2 K_b (b - b0)^2."""
    x = system.coords if coords is None else coords
    topo = system.topology
    grad = np.zeros_like(x)
    if len(topo.bonds) == 0:
        return 0.0, grad
    i, j = topo.bonds[:, 0], topo.bonds[:, 1]
    d = x[i] - x[j]
    b = np.linalg.norm(d, axis=1)
    db = b - topo.bond_b0
    energy = float(0.5 * np.sum(topo.bond_k * db * db))
    g = (topo.bond_k * db / np.maximum(b, _EPS))[:, None] * d
    _scatter_add(grad, i, g)
    _scatter_add(grad, j, -g)
    return energy, grad


# ----------------------------------------------------------------------
def angle_energy(system: MolecularSystem, coords: Optional[np.ndarray] = None):
    """Bond-angle bending: sum 1/2 K_theta (theta - theta0)^2."""
    x = system.coords if coords is None else coords
    topo = system.topology
    grad = np.zeros_like(x)
    if len(topo.angles) == 0:
        return 0.0, grad
    i, j, k = topo.angles[:, 0], topo.angles[:, 1], topo.angles[:, 2]
    u = x[i] - x[j]
    v = x[k] - x[j]
    nu = np.linalg.norm(u, axis=1)
    nv = np.linalg.norm(v, axis=1)
    uh = u / np.maximum(nu, _EPS)[:, None]
    vh = v / np.maximum(nv, _EPS)[:, None]
    c = np.clip(np.einsum("ij,ij->i", uh, vh), -1.0 + 1e-10, 1.0 - 1e-10)
    theta = np.arccos(c)
    dtheta = theta - topo.angle_theta0
    energy = float(0.5 * np.sum(topo.angle_k * dtheta * dtheta))
    s = np.sqrt(1.0 - c * c)
    coef = topo.angle_k * dtheta / np.maximum(s, _EPS)
    gi = -coef[:, None] * (vh - c[:, None] * uh) / np.maximum(nu, _EPS)[:, None]
    gk = -coef[:, None] * (uh - c[:, None] * vh) / np.maximum(nv, _EPS)[:, None]
    _scatter_add(grad, i, gi)
    _scatter_add(grad, k, gk)
    _scatter_add(grad, j, -(gi + gk))
    return energy, grad


# ----------------------------------------------------------------------
def _dihedral_angle_and_grads(x, quads):
    """phi and dphi/dr for each (i,j,k,l) quadruple.

    Blondel & Karplus (1996) formulation: with F = r_i - r_j,
    G = r_j - r_k, H = r_l - r_k, A = F x G, B = H x G,

    ``phi = atan2((B x A) . G/|G|, A . B)`` and the gradients are exact
    and singularity-free away from collinear configurations.
    """
    i, j, k, l = quads[:, 0], quads[:, 1], quads[:, 2], quads[:, 3]
    F = x[i] - x[j]
    G = x[j] - x[k]
    H = x[l] - x[k]
    A = np.cross(F, G)
    B = np.cross(H, G)
    nG = np.maximum(np.linalg.norm(G, axis=1), _EPS)
    xx = np.einsum("ij,ij->i", A, B)
    yy = np.einsum("ij,ij->i", np.cross(B, A), G) / nG
    phi = np.arctan2(yy, xx)

    Asq = np.maximum(np.einsum("ij,ij->i", A, A), _EPS)
    Bsq = np.maximum(np.einsum("ij,ij->i", B, B), _EPS)
    FG = np.einsum("ij,ij->i", F, G)
    HG = np.einsum("ij,ij->i", H, G)
    tA = (nG / Asq)[:, None] * A
    tB = (nG / Bsq)[:, None] * B
    sA = (FG / (Asq * nG))[:, None] * A
    sB = (HG / (Bsq * nG))[:, None] * B
    gi = -tA
    gj = tA + sA - sB
    gk = sB - sA - tB
    gl = tB
    return phi, (i, j, k, l), (gi, gj, gk, gl)


def dihedral_energy(system: MolecularSystem, coords: Optional[np.ndarray] = None):
    """Sinusoidal dihedrals: sum K_phi (1 + cos(n phi - delta))."""
    x = system.coords if coords is None else coords
    topo = system.topology
    grad = np.zeros_like(x)
    if len(topo.dihedrals) == 0:
        return 0.0, grad
    phi, idx, grads = _dihedral_angle_and_grads(x, topo.dihedrals)
    arg = topo.dihedral_mult * phi - topo.dihedral_delta
    energy = float(np.sum(topo.dihedral_k * (1.0 + np.cos(arg))))
    dEdphi = -topo.dihedral_k * topo.dihedral_mult * np.sin(arg)
    for atom_idx, g in zip(idx, grads):
        _scatter_add(grad, atom_idx, dEdphi[:, None] * g)
    return energy, grad


def improper_energy(system: MolecularSystem, coords: Optional[np.ndarray] = None):
    """Harmonic impropers: sum 1/2 K_xi (xi - xi0)^2 (wrapped to [-pi,pi])."""
    x = system.coords if coords is None else coords
    topo = system.topology
    grad = np.zeros_like(x)
    if len(topo.impropers) == 0:
        return 0.0, grad
    xi, idx, grads = _dihedral_angle_and_grads(x, topo.impropers)
    dxi = xi - topo.improper_xi0
    dxi = (dxi + np.pi) % (2.0 * np.pi) - np.pi
    energy = float(0.5 * np.sum(topo.improper_k * dxi * dxi))
    dEdxi = topo.improper_k * dxi
    for atom_idx, g in zip(idx, grads):
        _scatter_add(grad, atom_idx, dEdxi[:, None] * g)
    return energy, grad


# ----------------------------------------------------------------------
def nonbonded_energy(
    system: MolecularSystem,
    pairs: np.ndarray,
    coords: Optional[np.ndarray] = None,
) -> Tuple[float, float, np.ndarray]:
    """Van der Waals + Coulomb over the given (m, 2) pair list.

    Returns ``(E_vdw, E_coul, gradient)`` — the two partial energies a
    server reports separately to the client, plus the gradient of their
    sum.  The last term of the paper's V:

    ``C12(i,j)/r^12 - C6(i,j)/r^6 + q_i q_j / (4 pi eps0 eps_r r)``
    """
    x = system.coords if coords is None else coords
    grad = np.zeros_like(x)
    if len(pairs) == 0:
        return 0.0, 0.0, grad
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise WorkloadError("pairs must be an (m, 2) index array")
    i, j = pairs[:, 0], pairs[:, 1]
    d = x[i] - x[j]
    r2 = np.maximum(np.einsum("ij,ij->i", d, d), _EPS)
    r = np.sqrt(r2)
    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2 * inv_r2 * inv_r2
    c12, c6 = system.lj_c12_c6(i, j)
    e_vdw = float(np.sum(c12 * inv_r6 * inv_r6 - c6 * inv_r6))
    qq = COULOMB_K * system.charges[i] * system.charges[j]
    e_coul = float(np.sum(qq / r))
    # dE/dr for both terms, then project on the separation vector
    dEdr = (-12.0 * c12 * inv_r6 * inv_r6 + 6.0 * c6 * inv_r6) / r - qq * inv_r2
    g = (dEdr / r)[:, None] * d
    _scatter_add(grad, i, g)
    _scatter_add(grad, j, -g)
    return e_vdw, e_coul, grad


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnergyReport:
    """Complete decomposition of one evaluation of V."""

    bond: float
    angle: float
    dihedral: float
    improper: float
    vdw: float
    coulomb: float

    @property
    def bonded(self) -> float:
        """Sum of the four bonded terms."""
        return self.bond + self.angle + self.dihedral + self.improper

    @property
    def nonbonded(self) -> float:
        """Van der Waals + Coulomb."""
        return self.vdw + self.coulomb

    @property
    def total(self) -> float:
        """Total potential energy V."""
        return self.bonded + self.nonbonded


def total_energy(
    system: MolecularSystem,
    pairs: np.ndarray,
    coords: Optional[np.ndarray] = None,
) -> Tuple[EnergyReport, np.ndarray]:
    """All terms of V over the given non-bonded pair list."""
    e_b, g_b = bond_energy(system, coords)
    e_a, g_a = angle_energy(system, coords)
    e_d, g_d = dihedral_energy(system, coords)
    e_i, g_i = improper_energy(system, coords)
    e_v, e_c, g_nb = nonbonded_energy(system, pairs, coords)
    report = EnergyReport(e_b, e_a, e_d, e_i, e_v, e_c)
    return report, g_b + g_a + g_d + g_i + g_nb
