"""Unit constants and conversion helpers shared across the library.

The paper mixes seconds, microseconds, milliseconds, MByte/s and MFlop/s.
All internal computation in this library uses SI base units: seconds,
bytes/second, flop/second.  The constants below are for constructing and
formatting values at the boundaries.
"""

from __future__ import annotations

#: One microsecond in seconds.
MICROSECOND = 1e-6

#: One millisecond in seconds.
MILLISECOND = 1e-3

#: One megabyte (decimal, as used in network data sheets) in bytes.
MBYTE = 1e6

#: One megaflop in floating point operations.
MFLOP = 1e6

#: Bytes used by the paper to encode one atom's coordinates (alpha):
#: three IEEE double precision values.
ALPHA_BYTES_PER_ATOM = 24

#: Avogadro-scale constant is not needed; densities are expressed in
#: mass centers per cubic Angstrom.  Pure water at 300 K contains about
#: 0.0334 molecules per cubic Angstrom.
WATER_NUMBER_DENSITY = 0.0334


def mbyte_per_s(value: float) -> float:
    """Convert MByte/s to bytes/s."""
    return value * MBYTE


def to_mbyte_per_s(value: float) -> float:
    """Convert bytes/s to MByte/s."""
    return value / MBYTE


def mflop_per_s(value: float) -> float:
    """Convert MFlop/s to flop/s."""
    return value * MFLOP


def to_mflop_per_s(value: float) -> float:
    """Convert flop/s to MFlop/s."""
    return value / MFLOP


def usec(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def msec(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND
