"""Parallel campaign execution over a process pool.

Every design cell is an independent, pickle-able unit of work: an
:class:`~repro.experiments.cases.ExperimentCase` plus the platform spec
and the measurement protocol fully determine a simulated run, and the
per-cell seed derives from the cell's content
(:func:`~repro.experiments.runner.derive_cell_seed`), not its position.
A ``ProcessPoolExecutor`` therefore executes cells in any order on any
worker and still reproduces the serial runner bit for bit; results are
re-assembled in design order here.

The optional :class:`~repro.experiments.cache.ResultCache` is consulted
*before* work is submitted — cache hits never occupy a worker — and
freshly simulated cells are stored as they complete, so an interrupted
campaign resumes where it stopped.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import DesignError
from .cache import (
    ResultCache,
    cell_key_payload,
    record_from_dict,
    record_to_dict,
)
from .cases import ExperimentCase


def default_workers() -> int:
    """Worker count when none is requested: one per available CPU."""
    return max(os.cpu_count() or 1, 1)


@dataclass(frozen=True)
class CellJob:
    """One design cell as a pickle-able work unit for a pool worker."""

    index: int
    case: ExperimentCase
    platform: object
    sync_mode: str
    jitter_sigma: float
    repetitions: int
    base_seed: int
    keep_results: bool = False
    #: capture observability in the worker and ship it back as a payload
    capture: bool = False
    #: chaos spec (FaultSpec) to inject during this cell's runs; frozen
    #: and pickle-able, so it travels to pool workers like the rest
    faults: object = None


def run_cell(job: CellJob):
    """Execute one cell (the pool worker entry point; must be
    module-level so it pickles).

    Returns ``(index, record, obs_payload)``; the payload is ``None``
    unless ``job.capture`` — workers hold a local
    :class:`~repro.obs.ObsSession` and serialize it for the parent to
    absorb, so a parallel campaign still exports one merged trace.
    """
    from .runner import measure_case

    obs = None
    if job.capture:
        from ..obs.session import ObsSession

        obs = ObsSession(label=f"cell{job.index}")
    record = measure_case(
        job.platform,
        job.case,
        sync_mode=job.sync_mode,
        jitter_sigma=job.jitter_sigma,
        repetitions=job.repetitions,
        base_seed=job.base_seed,
        keep_results=job.keep_results,
        obs=obs,
        faults=job.faults,
    )
    return job.index, record, None if obs is None else obs.to_payload()


def run_design_parallel(
    cases: Sequence[ExperimentCase],
    platform,
    sync_mode: str = "accounted",
    jitter_sigma: float = 0.004,
    repetitions: int = 1,
    base_seed: int = 0,
    keep_results: bool = False,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress=None,
    obs=None,
    faults=None,
) -> Tuple[List, int]:
    """Measure every cell of a design over a process pool.

    Returns ``(records, simulated_cells)`` with records in design order;
    ``simulated_cells`` counts the cells that actually ran (i.e. were
    not served from ``cache``).  ``progress(done, total, record)`` fires
    in completion order as cells finish.  With ``obs=`` (an
    :class:`~repro.obs.ObsSession`) each worker captures its runs'
    observability locally and the payloads are merged here in design
    order (not completion order, so serial and parallel sessions list
    identical runs) — cache hits skip the simulation and therefore
    contribute no spans.
    """
    if not cases:
        raise DesignError("empty design")
    if workers is not None and workers < 1:
        raise DesignError("workers must be >= 1")
    total = len(cases)
    records: List[Optional[object]] = [None] * total
    done = 0

    # ---- serve what the cache already has -----------------------------
    pending: List[Tuple[int, Optional[str]]] = []
    for i, case in enumerate(cases):
        key = None
        if cache is not None:
            key = ResultCache.key_for(
                cell_key_payload(
                    case,
                    platform,
                    sync_mode=sync_mode,
                    jitter_sigma=jitter_sigma,
                    seed=base_seed,
                    repetitions=repetitions,
                    faults=faults,
                )
            )
            cached = cache.load(key)
            if cached is not None:
                records[i] = record_from_dict(cached)
                done += 1
                if progress is not None:
                    progress(done, total, records[i])
                continue
        pending.append((i, key))

    # ---- fan the misses out over the pool -----------------------------
    if pending:
        n_workers = min(workers or default_workers(), len(pending))
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            futures = {}
            for i, key in pending:
                job = CellJob(
                    index=i,
                    case=cases[i],
                    platform=platform,
                    sync_mode=sync_mode,
                    jitter_sigma=jitter_sigma,
                    repetitions=repetitions,
                    base_seed=base_seed,
                    keep_results=keep_results,
                    capture=obs is not None,
                    faults=faults,
                )
                futures[executor.submit(run_cell, job)] = key
            payloads: List[Tuple[int, object]] = []
            for future in as_completed(futures):
                index, record, payload = future.result()
                records[index] = record
                if payload is not None:
                    payloads.append((index, payload))
                key = futures[future]
                if cache is not None and key is not None:
                    cache.store(key, record_to_dict(record))
                done += 1
                if progress is not None:
                    progress(done, total, record)
        if obs is not None:
            for _index, payload in sorted(payloads, key=lambda item: item[0]):
                obs.absorb_payload(payload)
    return records, len(pending)
