"""Repeated-measurement statistics.

Section 2.3: "In a few preliminary tests, every measurement has been
repeated several times.  The tests have confirmed a low variability and
a good reproducibility of the execution times" — the check that licenses
single ten-step timings.  These helpers reproduce that protocol on the
simulator (whose jitter model stands in for real-machine noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import DesignError

#: two-sided 95% normal quantile (the runs are many and independent)
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MeasurementStats:
    """Summary of repeated measurements of one scalar response."""

    values: tuple
    mean: float
    std: float

    @property
    def n(self) -> int:
        """Number of repetitions summarized."""
        return len(self.values)

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation over the mean (dimensionless noise level)."""
        if self.mean == 0:
            return float("inf")
        return self.std / abs(self.mean)

    @property
    def confidence_halfwidth(self) -> float:
        """Half-width of the ~95% confidence interval of the mean."""
        if self.n < 2:
            return float("inf")
        return _Z95 * self.std / math.sqrt(self.n)

    def reproducible(self, cv_threshold: float = 0.02) -> bool:
        """The paper's criterion: variability low enough for one timing."""
        return self.coefficient_of_variation <= cv_threshold


def summarize(values: Sequence[float]) -> MeasurementStats:
    """Summary statistics of a sequence of measurements."""
    if len(values) == 0:
        raise DesignError("cannot summarize zero measurements")
    arr = np.asarray(values, dtype=float)
    return MeasurementStats(
        values=tuple(arr.tolist()),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
    )


def repeat(fn: Callable[[int], float], repetitions: int) -> MeasurementStats:
    """Run ``fn(rep_index)`` ``repetitions`` times and summarize."""
    if repetitions < 1:
        raise DesignError("repetitions must be >= 1")
    return summarize([fn(i) for i in range(repetitions)])
