"""Repeated-measurement statistics.

Section 2.3: "In a few preliminary tests, every measurement has been
repeated several times.  The tests have confirmed a low variability and
a good reproducibility of the execution times" — the check that licenses
single ten-step timings.  These helpers reproduce that protocol on the
simulator (whose jitter model stands in for real-machine noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import DesignError

#: two-sided 95% normal quantile — the n -> inf limit of the Student-t
#: quantile actually used (kept for reference and as a fallback).
_Z95 = 1.959963984540054


def _t95(df: int) -> float:
    """Two-sided 95% Student-t quantile with ``df`` degrees of freedom.

    Probe repetitions are few (the paper repeats "a few" times), so the
    normal z = 1.96 understates the interval badly: at n = 3 the correct
    multiplier is 4.30.  scipy is already a hard dependency.
    """
    from scipy.stats import t as student_t

    return float(student_t.ppf(0.975, df))


@dataclass(frozen=True)
class MeasurementStats:
    """Summary of repeated measurements of one scalar response."""

    values: tuple
    mean: float
    std: float

    @property
    def n(self) -> int:
        """Number of repetitions summarized."""
        return len(self.values)

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation over the mean (dimensionless noise level)."""
        if self.mean == 0:
            return float("inf")
        return self.std / abs(self.mean)

    @property
    def confidence_halfwidth(self) -> float:
        """Half-width of the 95% confidence interval of the mean.

        Uses the Student-t quantile with n - 1 degrees of freedom, which
        is what small-sample repetitions require; it converges to the
        normal z = 1.96 as n grows.
        """
        if self.n < 2:
            return float("inf")
        return _t95(self.n - 1) * self.std / math.sqrt(self.n)

    def reproducible(self, cv_threshold: float = 0.02) -> bool:
        """The paper's criterion: variability low enough for one timing."""
        return self.coefficient_of_variation <= cv_threshold


def summarize(values: Sequence[float]) -> MeasurementStats:
    """Summary statistics of a sequence of measurements."""
    if len(values) == 0:
        raise DesignError("cannot summarize zero measurements")
    arr = np.asarray(values, dtype=float)
    return MeasurementStats(
        values=tuple(arr.tolist()),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
    )


def repeat(fn: Callable[[int], float], repetitions: int) -> MeasurementStats:
    """Run ``fn(rep_index)`` ``repetitions`` times and summarize."""
    if repetitions < 1:
        raise DesignError("repetitions must be >= 1")
    return summarize([fn(i) for i in range(repetitions)])
