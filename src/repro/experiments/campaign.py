"""The full paper pipeline as one orchestrated campaign.

Section 1 promises "an integrated approach to performance evaluation,
modeling and prediction"; this module is that integration as an API:

1. **reproducibility probe** — repeat one configuration, check the CV
   (Section 2.3's preliminary test);
2. **measurement** — run a factorial design on the reference platform
   with the instrumented middleware;
3. **calibration** — least-squares fit of the analytical model
   (Section 2.5);
4. **prediction** — execution-time/speedup curves for every candidate
   platform from its key data (Section 4);
5. **verdict** — the platform ranking and the headline comparisons.

`run_campaign()` returns a structured `CampaignReport`; `render()` turns
it into the study a human would read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.calibration import CalibrationResult, calibrate
from ..core.parameters import ApplicationParams
from ..core.prediction import (
    CostEffectivenessRow,
    PredictionSeries,
    cost_effectiveness,
    predict_platforms,
)
from ..errors import DesignError
from ..opal.complexes import MEDIUM, ComplexSpec
from .cache import CacheStats
from .cases import CUTOFF_EFFECTIVE, ExperimentCase, reduced_design
from .measurement import MeasurementStats
from .runner import ExperimentRunner


@dataclass
class CampaignReport:
    """Everything the integrated study produced."""

    reference_platform: str
    probe: MeasurementStats
    calibration: CalibrationResult
    #: scenario label -> platform -> series
    predictions: Dict[str, Dict[str, PredictionSeries]] = field(
        default_factory=dict
    )
    cost_ranking: List[CostEffectivenessRow] = field(default_factory=list)
    #: simulated Opal runs actually executed for this report (a warm
    #: cache drives this to zero)
    simulations_run: int = 0
    #: result-cache counters when a cache_dir was used, else None
    cache_stats: Optional[CacheStats] = None

    # ------------------------------------------------------------------
    @property
    def fit_error(self) -> float:
        """Mean relative error of the calibration over its design."""
        return self.calibration.mean_relative_error()

    def best_platform(self, scenario: str) -> str:
        """Fastest platform (best predicted time) in one scenario."""
        series = self.predictions[scenario]
        return min(series, key=lambda name: series[name].best_time)

    def verdict(self) -> str:
        """The campaign's one-line answer to the paper's question."""
        lines = []
        for scenario, series in self.predictions.items():
            best = self.best_platform(scenario)
            ref = self.reference_platform
            if ref in series:
                factor = series[ref].best_time / series[best].best_time
                lines.append(
                    f"{scenario}: {best} "
                    f"({factor:.1f}x faster than the {ref})"
                )
            else:
                lines.append(f"{scenario}: {best}")
        return "; ".join(lines)


def run_campaign(
    reference,
    candidates: Sequence,
    molecule: ComplexSpec = MEDIUM,
    design: Optional[List[ExperimentCase]] = None,
    scenarios: Optional[Dict[str, Optional[float]]] = None,
    servers: Sequence[int] = tuple(range(1, 8)),
    probe_repetitions: int = 6,
    jitter_sigma: float = 0.004,
    seed: int = 0,
    parallel: bool = False,
    workers: Optional[int] = None,
    cache_dir=None,
    progress=None,
    obs=None,
    faults=None,
    store_dir=None,
) -> CampaignReport:
    """Execute the integrated study.

    ``reference`` is the PlatformSpec measured and calibrated against;
    ``candidates`` the PlatformSpecs predicted for (the reference is
    included automatically).  ``scenarios`` maps labels to cutoffs
    (default: the paper's no-cutoff and 10 Angstrom cases).

    ``workers=N`` fans the design out over N processes; ``cache_dir=``
    reuses previously simulated cells, so a repeated campaign performs
    zero new simulations (see ``CampaignReport.simulations_run``).
    Serial and parallel campaigns produce identical reports.

    ``obs=`` (an :class:`~repro.obs.ObsSession`) captures every
    simulated run — probe and design, serial or pooled — into one
    merged trace; the freshly calibrated coefficients are attached so
    ``obs.model_report()`` joins measurement against the model.

    ``faults=`` (a :class:`~repro.netsim.FaultSpec`) turns this into a
    chaos campaign: every design cell runs under fault injection with
    the resilient middleware.  The reproducibility probe always runs
    unfaulted — it certifies the measurement protocol on the dedicated
    system, which is a precondition of, not part of, the experiment.

    ``store_dir=`` appends the campaign's telemetry to the columnar
    store rooted there (:mod:`repro.obs.store`): one ``cells`` segment
    with every measured design cell and one ``residuals`` segment
    joining them against the freshly calibrated model, so ``python -m
    repro.obs query|drift`` can interrogate campaign history.  Because
    records arrive in design order on both execution paths, serial and
    pooled campaigns append bit-identical segments.
    """
    if probe_repetitions < 2:
        raise DesignError("the reproducibility probe needs >= 2 repetitions")
    scenarios = (
        {"no cutoff": None, "10 A cutoff": CUTOFF_EFFECTIVE}
        if scenarios is None
        else scenarios
    )
    design = reduced_design() if design is None else design

    runner = ExperimentRunner(
        reference,
        jitter_sigma=jitter_sigma,
        seed=seed,
        parallel=parallel,
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        obs=obs,
        faults=faults,
    )
    probe_case = ExperimentCase(
        molecule=molecule,
        servers=max(servers) // 2 + 1,
        cutoff=CUTOFF_EFFECTIVE,
        update_interval=1,
    )
    probe = runner.variability_probe(probe_case, repetitions=probe_repetitions)
    if not probe.reproducible(cv_threshold=0.05):
        raise DesignError(
            f"measurements not reproducible (CV {probe.coefficient_of_variation:.1%}); "
            "is the system dedicated?"
        )

    records = runner.run_design(design)
    observations = [r.observation() for r in records]
    calibration = calibrate(observations, name=f"{reference.name}-calibrated")
    if obs is not None:
        obs.set_model_params(calibration.params)
        obs.absorb_cache_stats(runner.cache_stats)
    if store_dir is not None:
        from ..obs.ingest import ingest_records
        from ..obs.store import TelemetryStore

        ingest_records(
            TelemetryStore(store_dir),
            records,
            params=calibration.params,
            meta={"campaign": reference.name, "seed": seed},
        )

    all_platforms = list(candidates)
    if all(p.name != reference.name for p in all_platforms):
        all_platforms.insert(0, reference)

    report = CampaignReport(
        reference_platform=reference.name,
        probe=probe,
        calibration=calibration,
        simulations_run=runner.simulations_run,
        cache_stats=runner.cache_stats,
    )
    for label, cutoff in scenarios.items():
        app = ApplicationParams(
            molecule=molecule, steps=10, cutoff=cutoff, update_interval=1
        )
        # candidate platforms use their own key data; the reference uses
        # its freshly calibrated coefficients (the paper's structure)
        series = predict_platforms(
            [p for p in all_platforms if p.name != reference.name], app, servers
        )
        ref_params = calibration.params.with_(name=reference.name)
        series.update(predict_platforms([ref_params], app, servers))
        report.predictions[label] = series

    costs = {
        p.name: p.approx_cost_kusd
        for p in all_platforms
        if p.approx_cost_kusd is not None
    }
    first_scenario = next(iter(report.predictions.values()))
    report.cost_ranking = cost_effectiveness(first_scenario, costs)
    return report


def render(report: CampaignReport) -> str:
    """The campaign as a readable study."""
    from ..analysis.report import curve_table

    lines = [
        f"Integrated performance study (reference: {report.reference_platform})",
        "",
        f"reproducibility: CV {100 * report.probe.coefficient_of_variation:.2f}% "
        f"over {report.probe.n} repetitions -> single timings licensed",
        f"model fit: mean relative error "
        f"{100 * report.fit_error:.2f}% "
        f"(R^2 {min(report.calibration.r2.values()):.4f} worst component)",
    ]
    line = f"simulations executed: {report.simulations_run}"
    if report.cache_stats is not None:
        line += f" (cache: {report.cache_stats})"
    lines.extend([line, ""])
    for label, series in report.predictions.items():
        servers = next(iter(series.values())).servers
        lines.append(
            curve_table(
                {n: s.times for n, s in series.items()},
                servers,
                f"predicted execution time [s] — {label}",
            )
        )
        lines.append("")
    if report.cost_ranking:
        lines.append("cost effectiveness (time x k$, lower wins):")
        for row in report.cost_ranking:
            lines.append(
                f"  {row.platform:<12s} {row.time_cost_product:12.0f}"
            )
        lines.append("")
    lines.append(f"verdict: {report.verdict()}")
    return "\n".join(lines)
