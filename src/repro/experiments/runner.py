"""Run experiment designs on the simulated reference platform.

Connects the design machinery (:mod:`repro.experiments.cases`) to the
simulated application (:func:`repro.opal.parallel.run_parallel_opal`) and
produces the measured breakdowns the calibration and the breakdown
figures consume.  Runs execute on a dedicated (simulated) system —
"therefore there is no overhead on the measurements due to a
timesharing environment".

Each design cell derives its own seed from a stable hash of the cell's
content (:func:`derive_cell_seed`), so jitter noise is independent
across cells and identical no matter where in a design — or on which
worker process — the cell executes.  ``ExperimentRunner(workers=4)``
fans cells out over a process pool (see
:mod:`repro.experiments.parallel`); ``cache_dir=`` adds a
content-addressed on-disk result cache (:mod:`repro.experiments.cache`)
shared by both execution paths.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.breakdown import TimeBreakdown
from ..core.calibration import Observation
from ..core.parameters import ApplicationParams
from ..errors import DesignError
from ..obs.session import ObsSession
from ..obs.session import run_label as _obs_run_label
from ..opal.parallel import OpalRunResult, run_parallel_opal
from .cache import (
    ResultCache,
    cell_key_payload,
    record_from_dict,
    record_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from .cases import ExperimentCase
from .measurement import MeasurementStats, summarize

#: Default multiplicative timing noise of simulated measurements — the
#: "low variability" the paper confirms on the dedicated J90.
DEFAULT_JITTER = 0.004

#: Callback invoked after each finished cell: ``progress(done, total,
#: record)``.  In parallel runs cells complete out of order; ``done`` is
#: the running completion count, not the cell's design index.
ProgressCallback = Callable[[int, int, "ExperimentRecord"], None]

_SEED_BITS = 63


def derive_cell_seed(
    base_seed: int, case: ExperimentCase, rep: int, salt: str = "cell"
) -> int:
    """Deterministic per-(cell, repetition) seed.

    Hashes the cell's *content* (not its position in the design), so the
    same cell gets the same seed in any design order, in serial and
    parallel execution alike, while distinct cells get independent
    seeds — the correlated-jitter bias of a shared ``seed + 1000*rep``
    sequence cannot recur.
    """
    material = json.dumps(
        {"base": base_seed, "case": case.key_data(), "rep": rep, "salt": salt},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


@dataclass
class ExperimentRecord:
    """One design cell with its measured outcome(s)."""

    case: ExperimentCase
    breakdown: TimeBreakdown
    wall_stats: MeasurementStats
    last_result: Optional[OpalRunResult] = None

    @property
    def app(self) -> ApplicationParams:
        """The cell's ApplicationParams."""
        return self.case.app()

    def observation(self) -> Observation:
        """The (app, breakdown) pair calibration consumes."""
        return (self.app, self.breakdown)


def measure_case(
    platform,
    case: ExperimentCase,
    sync_mode: str = "accounted",
    jitter_sigma: float = DEFAULT_JITTER,
    repetitions: int = 1,
    base_seed: int = 0,
    keep_results: bool = False,
    obs: Optional[ObsSession] = None,
    faults=None,
) -> ExperimentRecord:
    """Measure one design cell (with repetitions).

    Module-level so the serial runner and the process-pool workers in
    :mod:`repro.experiments.parallel` execute the exact same protocol.
    With ``obs=`` every repetition's trace and metrics land in that
    session under a per-repetition run label.  ``faults=`` (a
    :class:`~repro.netsim.FaultSpec`) runs the cell under chaos with
    the resilient middleware; crash specs naming nodes this cell's
    cluster does not have are skipped, so one campaign-wide spec applies
    cleanly across server counts.
    """
    app = case.app()
    walls: List[float] = []
    breakdowns: List[TimeBreakdown] = []
    last: Optional[OpalRunResult] = None
    for rep in range(repetitions):
        seed = derive_cell_seed(base_seed, case, rep)
        result = run_parallel_opal(
            app,
            platform,
            sync_mode=sync_mode,
            seed=seed,
            jitter_sigma=jitter_sigma,
            obs=obs,
            run_label=_obs_run_label(platform.name, app, seed, rep=rep),
            faults=faults,
        )
        walls.append(result.wall_time)
        breakdowns.append(result.breakdown)
        last = result
    return ExperimentRecord(
        case=case,
        breakdown=TimeBreakdown.mean(breakdowns),
        wall_stats=summarize(walls),
        last_result=last if keep_results else None,
    )


class ExperimentRunner:
    """Executes cases on one platform with a fixed measurement protocol.

    ``workers=N`` (N > 1) or ``parallel=True`` runs designs over a
    ``ProcessPoolExecutor``; results are identical to the serial path
    because every cell's seed derives from its content.  ``cache_dir=``
    enables the on-disk result cache for both paths; ``progress`` is
    called after every completed cell.  ``keep_results=True`` bypasses
    the cache (live :class:`OpalRunResult` objects are not cached).
    """

    def __init__(
        self,
        platform,
        sync_mode: str = "accounted",
        jitter_sigma: float = DEFAULT_JITTER,
        repetitions: int = 1,
        seed: int = 0,
        keep_results: bool = False,
        parallel: bool = False,
        workers: Optional[int] = None,
        cache_dir=None,
        progress: Optional[ProgressCallback] = None,
        obs: Optional[ObsSession] = None,
        faults=None,
    ) -> None:
        if repetitions < 1:
            raise DesignError("repetitions must be >= 1")
        if workers is not None and workers < 1:
            raise DesignError("workers must be >= 1")
        self.platform = platform
        #: chaos spec applied to every design cell (the variability
        #: probe always runs unfaulted: it certifies the measurement
        #: protocol, not the fault tolerance)
        self.faults = faults
        #: observability session fed by every simulated run (cache hits
        #: contribute their cell stats but, having skipped the
        #: simulation, no spans)
        self.obs = obs
        self.sync_mode = sync_mode
        self.jitter_sigma = jitter_sigma
        self.repetitions = repetitions
        self.seed = seed
        self.keep_results = keep_results
        self.parallel = parallel or (workers is not None and workers > 1)
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.progress = progress
        #: simulated Opal runs actually executed (cache hits don't count)
        self.simulations_run = 0

    # ------------------------------------------------------------------
    @property
    def cache_stats(self):
        """Hit/miss/store counters of the attached cache (or None)."""
        return self.cache.stats if self.cache is not None else None

    def _key_payload(self, case: ExperimentCase, kind: str, repetitions: int) -> dict:
        return cell_key_payload(
            case,
            self.platform,
            sync_mode=self.sync_mode,
            jitter_sigma=self.jitter_sigma,
            seed=self.seed,
            repetitions=repetitions,
            kind=kind,
            faults=self.faults if kind == "cell" else None,
        )

    def cell_cache_key(self, case: ExperimentCase) -> str:
        """The content address of one cell under this runner's protocol."""
        return ResultCache.key_for(
            self._key_payload(case, "cell", self.repetitions)
        )

    # ------------------------------------------------------------------
    def run_case(self, case: ExperimentCase) -> ExperimentRecord:
        """Measure one design cell (with repetitions), cache-aware."""
        use_cache = self.cache is not None and not self.keep_results
        key = self.cell_cache_key(case) if use_cache else None
        if use_cache:
            cached = self.cache.load(key)
            if cached is not None:
                return record_from_dict(cached)
        record = measure_case(
            self.platform,
            case,
            sync_mode=self.sync_mode,
            jitter_sigma=self.jitter_sigma,
            repetitions=self.repetitions,
            base_seed=self.seed,
            keep_results=self.keep_results,
            obs=self.obs,
            faults=self.faults,
        )
        self.simulations_run += self.repetitions
        if use_cache:
            self.cache.store(key, record_to_dict(record))
        return record

    def run_design(self, cases: Sequence[ExperimentCase]) -> List[ExperimentRecord]:
        """Measure every cell of a design; results are in design order
        regardless of the execution path (serial or process pool)."""
        if not cases:
            raise DesignError("empty design")
        if self.parallel:
            from .parallel import run_design_parallel

            records, simulated_cells = run_design_parallel(
                list(cases),
                self.platform,
                sync_mode=self.sync_mode,
                jitter_sigma=self.jitter_sigma,
                repetitions=self.repetitions,
                base_seed=self.seed,
                keep_results=self.keep_results,
                workers=self.workers,
                cache=None if self.keep_results else self.cache,
                progress=self.progress,
                obs=self.obs,
                faults=self.faults,
            )
            self.simulations_run += simulated_cells * self.repetitions
            self._observe_cells(records)
            return records
        records = []
        for i, case in enumerate(cases):
            record = self.run_case(case)
            records.append(record)
            if self.progress is not None:
                self.progress(i + 1, len(cases), record)
        self._observe_cells(records)
        return records

    def _observe_cells(self, records: Sequence[ExperimentRecord]) -> None:
        if self.obs is None:
            return
        for record in records:
            self.obs.observe_cell(record.wall_stats.mean)
        self.obs.absorb_cache_stats(self.cache_stats)

    def observations(self, cases: Sequence[ExperimentCase]) -> List[Observation]:
        """Measured (app, breakdown) pairs ready for calibration."""
        return [r.observation() for r in self.run_design(cases)]

    # ------------------------------------------------------------------
    def breakdown_series(
        self, panels: Dict[str, Sequence[ExperimentCase]]
    ) -> Dict[str, List[ExperimentRecord]]:
        """Run the four panels of a Figure 1/2 style chart."""
        return {key: self.run_design(cases) for key, cases in panels.items()}

    def variability_probe(
        self, case: ExperimentCase, repetitions: int = 10
    ) -> MeasurementStats:
        """The Section 2.3 reproducibility check for one configuration.

        Probe repetitions use their own salt so they are independent of
        the design measurements of the same cell; the whole probe is one
        cacheable unit.
        """
        key = None
        if self.cache is not None:
            key = ResultCache.key_for(
                self._key_payload(case, "probe", repetitions)
            )
            cached = self.cache.load(key)
            if cached is not None:
                return stats_from_dict(cached)
        walls = []
        for rep in range(repetitions):
            probe_seed = derive_cell_seed(self.seed, case, rep, salt="probe")
            result = run_parallel_opal(
                case.app(),
                self.platform,
                sync_mode=self.sync_mode,
                seed=probe_seed,
                jitter_sigma=self.jitter_sigma,
                obs=self.obs,
                run_label="probe:"
                + _obs_run_label(self.platform.name, case.app(), probe_seed, rep=rep),
            )
            walls.append(result.wall_time)
        self.simulations_run += repetitions
        stats = summarize(walls)
        if key is not None:
            self.cache.store(key, stats_to_dict(stats))
        return stats
