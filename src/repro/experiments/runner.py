"""Run experiment designs on the simulated reference platform.

Connects the design machinery (:mod:`repro.experiments.cases`) to the
simulated application (:func:`repro.opal.parallel.run_parallel_opal`) and
produces the measured breakdowns the calibration and the breakdown
figures consume.  Runs execute on a dedicated (simulated) system —
"therefore there is no overhead on the measurements due to a
timesharing environment".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.breakdown import TimeBreakdown
from ..core.calibration import Observation
from ..core.parameters import ApplicationParams
from ..errors import DesignError
from ..opal.parallel import OpalRunResult, run_parallel_opal
from .cases import ExperimentCase
from .measurement import MeasurementStats, summarize

#: Default multiplicative timing noise of simulated measurements — the
#: "low variability" the paper confirms on the dedicated J90.
DEFAULT_JITTER = 0.004


@dataclass
class ExperimentRecord:
    """One design cell with its measured outcome(s)."""

    case: ExperimentCase
    breakdown: TimeBreakdown
    wall_stats: MeasurementStats
    last_result: Optional[OpalRunResult] = None

    @property
    def app(self) -> ApplicationParams:
        """The cell's ApplicationParams."""
        return self.case.app()

    def observation(self) -> Observation:
        """The (app, breakdown) pair calibration consumes."""
        return (self.app, self.breakdown)


class ExperimentRunner:
    """Executes cases on one platform with a fixed measurement protocol."""

    def __init__(
        self,
        platform,
        sync_mode: str = "accounted",
        jitter_sigma: float = DEFAULT_JITTER,
        repetitions: int = 1,
        seed: int = 0,
        keep_results: bool = False,
    ) -> None:
        if repetitions < 1:
            raise DesignError("repetitions must be >= 1")
        self.platform = platform
        self.sync_mode = sync_mode
        self.jitter_sigma = jitter_sigma
        self.repetitions = repetitions
        self.seed = seed
        self.keep_results = keep_results

    # ------------------------------------------------------------------
    def run_case(self, case: ExperimentCase) -> ExperimentRecord:
        """Measure one design cell (with repetitions)."""
        app = case.app()
        walls: List[float] = []
        breakdowns: List[TimeBreakdown] = []
        last: Optional[OpalRunResult] = None
        for rep in range(self.repetitions):
            result = run_parallel_opal(
                app,
                self.platform,
                sync_mode=self.sync_mode,
                seed=self.seed + 1000 * rep,
                jitter_sigma=self.jitter_sigma,
            )
            walls.append(result.wall_time)
            breakdowns.append(result.breakdown)
            last = result
        return ExperimentRecord(
            case=case,
            breakdown=TimeBreakdown.mean(breakdowns),
            wall_stats=summarize(walls),
            last_result=last if self.keep_results else None,
        )

    def run_design(self, cases: Sequence[ExperimentCase]) -> List[ExperimentRecord]:
        """Measure every cell of a design, in order."""
        if not cases:
            raise DesignError("empty design")
        return [self.run_case(c) for c in cases]

    def observations(self, cases: Sequence[ExperimentCase]) -> List[Observation]:
        """Measured (app, breakdown) pairs ready for calibration."""
        return [r.observation() for r in self.run_design(cases)]

    # ------------------------------------------------------------------
    def breakdown_series(
        self, panels: Dict[str, Sequence[ExperimentCase]]
    ) -> Dict[str, List[ExperimentRecord]]:
        """Run the four panels of a Figure 1/2 style chart."""
        return {key: self.run_design(cases) for key, cases in panels.items()}

    def variability_probe(
        self, case: ExperimentCase, repetitions: int = 10
    ) -> MeasurementStats:
        """The Section 2.3 reproducibility check for one configuration."""
        walls = []
        for rep in range(repetitions):
            result = run_parallel_opal(
                case.app(),
                self.platform,
                sync_mode=self.sync_mode,
                seed=self.seed + 7919 * (rep + 1),
                jitter_sigma=self.jitter_sigma,
            )
            walls.append(result.wall_time)
        return summarize(walls)
