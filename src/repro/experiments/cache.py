"""Content-addressed on-disk cache for simulated experiment results.

Every design cell is fully determined by its inputs: the
:class:`~repro.experiments.cases.ExperimentCase`, the platform's key
data, the measurement protocol (sync mode, jitter, repetitions) and the
base seed.  A stable SHA-256 digest over that content addresses the
cell's measured :class:`~repro.experiments.runner.ExperimentRecord` on
disk, so repeated campaigns, benchmarks and figure scripts skip
already-simulated cells entirely — serial and parallel runners share
the same cache and the same keys.

The cache stores plain JSON (one file per cell under ``cache_dir``),
which doubles as the per-cell record format: :func:`export_jsonl`
writes a design's records as one JSON line each for the analysis layer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from ..core.breakdown import TimeBreakdown
from ..opal.complexes import ComplexSpec
from .cases import ExperimentCase
from .measurement import MeasurementStats

PathLike = Union[str, pathlib.Path]

#: Bump when the cached payload layout changes; invalidates old entries.
SCHEMA_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for reports and JSON)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def __str__(self) -> str:
        return f"{self.hits} hit(s) / {self.misses} miss(es)"


# ----------------------------------------------------------------------
# stable JSON encoding of the record pieces
# ----------------------------------------------------------------------
def platform_key_data(platform) -> dict:
    """The PlatformSpec content that determines simulated results."""
    return dataclasses.asdict(platform)


def cell_key_payload(
    case: ExperimentCase,
    platform,
    sync_mode: str,
    jitter_sigma: float,
    seed: int,
    repetitions: int,
    kind: str = "cell",
    faults=None,
) -> dict:
    """The canonical cache-key payload for one design cell.

    The single source of truth for cell addressing: the serial runner
    and the parallel executor must produce identical keys for the same
    inputs, or warm-cache runs would re-simulate.  A chaos spec
    (``faults``, a :class:`~repro.netsim.FaultSpec`) joins the key only
    when present, so fault-free keys — and any cache populated before
    chaos campaigns existed — stay exactly as they were.
    """
    payload = {
        "kind": kind,
        "case": case.key_data(),
        "platform": platform_key_data(platform),
        "sync_mode": sync_mode,
        "jitter_sigma": jitter_sigma,
        "seed": seed,
        "repetitions": repetitions,
    }
    if faults is not None:
        payload["chaos"] = faults.as_dict()
    return payload


def case_to_dict(case: ExperimentCase) -> dict:
    """An ExperimentCase as JSON-able data.

    The key data plus the molecule's (cosmetic, key-irrelevant)
    description so records round-trip losslessly.
    """
    d = case.key_data()
    d["molecule"]["description"] = case.molecule.description
    return d


def case_from_dict(d: dict) -> ExperimentCase:
    """Rebuild an ExperimentCase from :func:`case_to_dict` output."""
    mol = d["molecule"]
    return ExperimentCase(
        molecule=ComplexSpec(
            name=mol["name"],
            protein_atoms=mol["protein_atoms"],
            waters=mol["waters"],
            density=mol["density"],
            description=mol.get("description", ""),
        ),
        servers=d["servers"],
        cutoff=d["cutoff"],
        update_interval=d["update_interval"],
        steps=d["steps"],
    )


def stats_to_dict(stats: MeasurementStats) -> dict:
    """MeasurementStats as JSON-able data."""
    return {"values": list(stats.values), "mean": stats.mean, "std": stats.std}


def stats_from_dict(d: dict) -> MeasurementStats:
    """Rebuild MeasurementStats from :func:`stats_to_dict` output."""
    return MeasurementStats(
        values=tuple(d["values"]), mean=d["mean"], std=d["std"]
    )


def record_to_dict(record) -> dict:
    """An ExperimentRecord as plain JSON-able data.

    ``last_result`` is deliberately dropped: it may reference a live
    cluster and only exists for ``keep_results=True`` debugging runs,
    which bypass the cache.
    """
    return {
        "case": case_to_dict(record.case),
        "breakdown": record.breakdown.as_dict(),
        "wall_stats": stats_to_dict(record.wall_stats),
    }


def record_from_dict(d: dict):
    """Rebuild an ExperimentRecord from :func:`record_to_dict` output."""
    from .runner import ExperimentRecord  # avoid an import cycle

    return ExperimentRecord(
        case=case_from_dict(d["case"]),
        breakdown=TimeBreakdown(**d["breakdown"]),
        wall_stats=stats_from_dict(d["wall_stats"]),
        last_result=None,
    )


# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of simulated cell results.

    Keys are SHA-256 digests over a canonical JSON rendering of the
    inputs (plus :data:`SCHEMA_VERSION`); values are JSON files named by
    their key.  The cache never invalidates by time — changing any
    input, including the base seed or the platform's key data, changes
    the key and therefore misses.

    ``max_entries`` bounds the on-disk entry count with least-recently
    used eviction: a hit refreshes an entry's recency, a store of a new
    entry beyond the bound evicts the coldest one(s) (counted in
    ``stats.evictions``).  Recency is seeded from file modification
    times on open, so a bounded cache keeps behaving LRU across
    processes.  Corrupt entries (truncated writes, garbage payloads)
    are treated as misses, never as errors; stats updates are guarded
    by a lock so concurrent readers observe consistent hit/miss counts.
    """

    def __init__(self, root: PathLike, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.Lock()
        #: key -> None, in least-recently-used-first order
        self._recency: "OrderedDict[str, None]" = OrderedDict()
        for path in sorted(
            self.root.glob("*.json"), key=lambda p: (p.stat().st_mtime, p.name)
        ):
            self._recency[path.stem] = None

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(payload: dict) -> str:
        """Stable digest of a JSON-able payload (the cache address)."""
        material = json.dumps(
            {"schema": SCHEMA_VERSION, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None on a miss.

        A file that cannot be read or parsed — a torn write, a truncated
        copy, garbage bytes — is a miss, exactly as if the cell had
        never been simulated; a payload that is not a JSON object is
        rejected the same way so a corrupted entry can never leak a
        non-record into the runner.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                value = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            with self._lock:
                self.stats.misses += 1
            return None
        if not isinstance(value, dict):
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
            self._touch(key)
        return value

    def store(self, key: str, value: dict) -> None:
        """Persist ``value`` under ``key`` (atomic rename, LRU-bounded)."""
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(value, fh)
        tmp.replace(path)
        with self._lock:
            self.stats.stores += 1
            self._touch(key)
            self._evict_over_bound()

    def _touch(self, key: str) -> None:
        """Mark ``key`` most recently used (caller holds the lock)."""
        self._recency.pop(key, None)
        self._recency[key] = None

    def _evict_over_bound(self) -> None:
        """Drop least-recently-used entries beyond ``max_entries``."""
        if self.max_entries is None:
            return
        while len(self._recency) > self.max_entries:
            coldest = next(iter(self._recency))  # insertion order = LRU first
            del self._recency[coldest]
            self._path(coldest).unlink(missing_ok=True)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            n += 1
        with self._lock:
            self._recency.clear()
        return n


# ----------------------------------------------------------------------
def export_jsonl(records: Iterable, path: PathLike) -> int:
    """Write per-cell records as JSON lines; returns the line count."""
    n = 0
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record_to_dict(record), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def load_jsonl(path: PathLike) -> List:
    """Load records written by :func:`export_jsonl`."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(record_from_dict(json.loads(line)))
    return records
