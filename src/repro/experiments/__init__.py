"""Systematic experimental design and execution (Jain ch. 16; Sec 2.3)."""

from .anova import AnovaEffect, AnovaResult, replicated_anova
from .cache import CacheStats, ResultCache, export_jsonl, load_jsonl
from .campaign import CampaignReport, render as render_campaign, run_campaign
from .cases import (
    CUTOFF_EFFECTIVE,
    CUTOFF_INEFFECTIVE,
    SERVER_RANGE,
    STEPS,
    UPDATE_FULL,
    UPDATE_PARTIAL,
    ExperimentCase,
    breakdown_chart_cases,
    full_design,
    paper_factors,
    reduced_design,
)
from .factorial import (
    EffectEstimate,
    Factor,
    design_size,
    fractional_factorial,
    full_factorial,
    sign_table_effects,
)
from .measurement import MeasurementStats, repeat, summarize
from .parallel import default_workers, run_design_parallel
from .runner import (
    DEFAULT_JITTER,
    ExperimentRecord,
    ExperimentRunner,
    derive_cell_seed,
    measure_case,
)

__all__ = [
    "AnovaEffect",
    "AnovaResult",
    "CacheStats",
    "CampaignReport",
    "CUTOFF_EFFECTIVE",
    "CUTOFF_INEFFECTIVE",
    "DEFAULT_JITTER",
    "EffectEstimate",
    "ExperimentCase",
    "ExperimentRecord",
    "ExperimentRunner",
    "Factor",
    "MeasurementStats",
    "ResultCache",
    "SERVER_RANGE",
    "STEPS",
    "UPDATE_FULL",
    "UPDATE_PARTIAL",
    "breakdown_chart_cases",
    "default_workers",
    "derive_cell_seed",
    "design_size",
    "export_jsonl",
    "fractional_factorial",
    "full_design",
    "full_factorial",
    "load_jsonl",
    "measure_case",
    "paper_factors",
    "reduced_design",
    "repeat",
    "render_campaign",
    "replicated_anova",
    "run_campaign",
    "run_design_parallel",
    "sign_table_effects",
    "summarize",
]
