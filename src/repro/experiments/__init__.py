"""Systematic experimental design and execution (Jain ch. 16; Sec 2.3)."""

from .anova import AnovaEffect, AnovaResult, replicated_anova
from .campaign import CampaignReport, render as render_campaign, run_campaign
from .cases import (
    CUTOFF_EFFECTIVE,
    CUTOFF_INEFFECTIVE,
    SERVER_RANGE,
    STEPS,
    UPDATE_FULL,
    UPDATE_PARTIAL,
    ExperimentCase,
    breakdown_chart_cases,
    full_design,
    paper_factors,
    reduced_design,
)
from .factorial import (
    EffectEstimate,
    Factor,
    design_size,
    fractional_factorial,
    full_factorial,
    sign_table_effects,
)
from .measurement import MeasurementStats, repeat, summarize
from .runner import DEFAULT_JITTER, ExperimentRecord, ExperimentRunner

__all__ = [
    "AnovaEffect",
    "AnovaResult",
    "CampaignReport",
    "CUTOFF_EFFECTIVE",
    "CUTOFF_INEFFECTIVE",
    "DEFAULT_JITTER",
    "EffectEstimate",
    "ExperimentCase",
    "ExperimentRecord",
    "ExperimentRunner",
    "Factor",
    "MeasurementStats",
    "SERVER_RANGE",
    "STEPS",
    "UPDATE_FULL",
    "UPDATE_PARTIAL",
    "breakdown_chart_cases",
    "design_size",
    "fractional_factorial",
    "full_design",
    "full_factorial",
    "paper_factors",
    "reduced_design",
    "repeat",
    "render_campaign",
    "replicated_anova",
    "run_campaign",
    "sign_table_effects",
    "summarize",
]
