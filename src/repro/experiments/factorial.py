"""Factorial experimental designs (Jain, "The Art of Computer Systems
Performance Analysis", chapter 16).

The paper follows "a systematic, full factorial experimental design"
over four factors (servers, problem size, cutoff, update frequency) "to
obtain the maximum information with the minimum number of experiments",
and reports a reduced ``7 * 2^(3-1)`` fraction of it for brevity.  This
module implements:

* general full factorial enumeration over arbitrary factor levels;
* two-level fractional factorials ``2^(k-p)`` built from generator
  strings (with the alias structure that entails);
* sign-table main-effect/interaction analysis for 2^k designs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..errors import DesignError


@dataclass(frozen=True)
class Factor:
    """One experimental factor and its levels."""

    name: str
    levels: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.levels) < 1:
            raise DesignError(f"factor {self.name!r} needs at least one level")
        if len(set(map(repr, self.levels))) != len(self.levels):
            raise DesignError(f"factor {self.name!r} has duplicate levels")


def full_factorial(factors: Sequence[Factor]) -> List[Dict[str, Any]]:
    """All level combinations, ordered with the last factor fastest."""
    if not factors:
        raise DesignError("need at least one factor")
    names = [f.name for f in factors]
    if len(set(names)) != len(names):
        raise DesignError("duplicate factor names")
    rows = []
    for combo in itertools.product(*(f.levels for f in factors)):
        rows.append(dict(zip(names, combo)))
    return rows


def design_size(factors: Sequence[Factor]) -> int:
    """Number of cells of the full factorial over ``factors``."""
    size = 1
    for f in factors:
        size *= len(f.levels)
    return size


# ----------------------------------------------------------------------
def _two_level(factors: Sequence[Factor]) -> None:
    for f in factors:
        if len(f.levels) != 2:
            raise DesignError(
                f"fractional designs need 2-level factors; {f.name!r} has "
                f"{len(f.levels)}"
            )


def fractional_factorial(
    factors: Sequence[Factor],
    generators: Sequence[str],
) -> List[Dict[str, Any]]:
    """A ``2^(k-p)`` fraction of a two-level design.

    ``generators`` defines each of the last ``p`` factors as a product of
    base-factor names, e.g. with factors A, B, C and ``generators=["C=AB"]``
    the half fraction runs the 4 combinations where sign(C) = sign(A)sign(B).
    """
    _two_level(factors)
    p = len(generators)
    if p < 1 or p >= len(factors):
        raise DesignError("need 1 <= p < k generators")
    k = len(factors)
    base = factors[: k - p]
    derived = factors[k - p :]
    by_name = {f.name: f for f in factors}

    parsed: List[Tuple[str, List[str]]] = []
    for g, fac in zip(generators, derived):
        if "=" not in g:
            raise DesignError(f"generator {g!r} must look like 'C=AB'")
        lhs, rhs = (s.strip() for s in g.split("=", 1))
        if lhs != fac.name:
            raise DesignError(
                f"generator {g!r} must define factor {fac.name!r} (in order)"
            )
        terms = rhs.split("*") if "*" in rhs else list(rhs)
        for t in terms:
            if t not in by_name or t == lhs:
                raise DesignError(f"generator {g!r} references unknown factor {t!r}")
        parsed.append((lhs, terms))

    rows = []
    for combo in itertools.product(*( (-1, 1) for _ in base )):
        signs = dict(zip((f.name for f in base), combo))
        for lhs, terms in parsed:
            sign = 1
            for t in terms:
                sign *= signs[t]
            signs[lhs] = sign
        row = {
            f.name: f.levels[0] if signs[f.name] < 0 else f.levels[1]
            for f in factors
        }
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EffectEstimate:
    """Estimated effect of one factor (or interaction) on the response."""

    name: str
    effect: float
    #: fraction of total variation explained (Jain's 'portion of variation')
    variation_explained: float


def sign_table_effects(
    factors: Sequence[Factor],
    rows: Sequence[Dict[str, Any]],
    responses: Sequence[float],
    interactions: bool = True,
) -> List[EffectEstimate]:
    """Main effects (and pairwise interactions) of a full 2^k design."""
    _two_level(factors)
    if len(rows) != len(responses):
        raise DesignError("rows and responses must have equal length")
    if len(rows) != 2 ** len(factors):
        raise DesignError("sign-table analysis needs the FULL 2^k design")
    y = np.asarray(responses, dtype=float)
    cols: Dict[str, np.ndarray] = {}
    for f in factors:
        cols[f.name] = np.array(
            [-1.0 if row[f.name] == f.levels[0] else 1.0 for row in rows]
        )
    if interactions:
        for (a, b) in itertools.combinations([f.name for f in factors], 2):
            cols[f"{a}*{b}"] = cols[a] * cols[b]
    n = len(rows)
    effects = {name: float(np.dot(col, y) / n) for name, col in cols.items()}
    ss = {name: n * e * e for name, e in effects.items()}
    mean = float(np.mean(y))
    sst = float(np.sum((y - mean) ** 2))
    out = [
        EffectEstimate(
            name=name,
            effect=e,
            variation_explained=(ss[name] / sst) if sst > 0 else 0.0,
        )
        for name, e in effects.items()
    ]
    out.sort(key=lambda r: -abs(r.variation_explained))
    return out
