"""The paper's parameter space (Figure 3 and Section 2.3/2.5).

Four isolated factors:

* number of servers: 1..7 (parallelism);
* problem size: small / medium / large molecular complex;
* cutoff: effective 10 Angstrom vs large ineffective 60 Angstrom
  ("no cutoff" in the charts — 60 A exceeds every complex's extent);
* update frequency: full update (every step) vs partial (every 10).

The full factorial is the paper's 84-experiment design
(7 x 3 x 2 x 2); the published charts use the reduced ``7 * 2^(3-1)``
half fraction over {size in (medium, large)} x {cutoff} x {update}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.parameters import ApplicationParams
from ..opal.complexes import LARGE, MEDIUM, SMALL, ComplexSpec
from .factorial import Factor, fractional_factorial, full_factorial

#: The paper's effective cutoff radius [Angstrom].
CUTOFF_EFFECTIVE = 10.0
#: The paper's "large, ineffective" cutoff radius [Angstrom]; for every
#: named complex this saturates to the no-cutoff quadratic regime.
CUTOFF_INEFFECTIVE = 60.0

#: Simulation steps per experiment ("ten simulation steps suffice to
#: assure an accurate and meaningful timing", Section 2.3).
STEPS = 10

SERVER_RANGE = tuple(range(1, 8))
UPDATE_FULL = 1
UPDATE_PARTIAL = 10


@dataclass(frozen=True)
class ExperimentCase:
    """One cell of the design, resolvable to ApplicationParams."""

    molecule: ComplexSpec
    servers: int
    cutoff: Optional[float]
    update_interval: int
    steps: int = STEPS

    @property
    def label(self) -> str:
        """Human-readable cell label, e.g. 'medium/p=3/cutoff=10A/...'."""
        cut = "none" if self.cutoff is None else f"{self.cutoff:g}A"
        upd = "full" if self.update_interval == 1 else f"1/{self.update_interval}"
        return (
            f"{self.molecule.name}/p={self.servers}/cutoff={cut}/update={upd}"
        )

    def app(self) -> ApplicationParams:
        """The cell resolved to ApplicationParams."""
        return ApplicationParams(
            molecule=self.molecule,
            steps=self.steps,
            servers=self.servers,
            update_interval=self.update_interval,
            cutoff=self.cutoff,
        )

    def key_data(self) -> dict:
        """JSON-able content that fully identifies this cell.

        Used for deterministic per-cell seed derivation and as part of
        the result-cache key: two cells with the same key data are the
        same experiment, independent of their position in a design.
        """
        return {
            "molecule": {
                "name": self.molecule.name,
                "protein_atoms": self.molecule.protein_atoms,
                "waters": self.molecule.waters,
                "density": self.molecule.density,
            },
            "servers": self.servers,
            "cutoff": self.cutoff,
            "update_interval": self.update_interval,
            "steps": self.steps,
        }


def paper_factors(
    sizes: Sequence[ComplexSpec] = (SMALL, MEDIUM, LARGE),
) -> List[Factor]:
    """The four factors of Figure 3 as design factors."""
    return [
        Factor("servers", SERVER_RANGE),
        Factor("molecule", tuple(sizes)),
        Factor("cutoff", (CUTOFF_EFFECTIVE, CUTOFF_INEFFECTIVE)),
        Factor("update_interval", (UPDATE_FULL, UPDATE_PARTIAL)),
    ]


def _rows_to_cases(rows) -> List[ExperimentCase]:
    return [
        ExperimentCase(
            molecule=r["molecule"],
            servers=r["servers"],
            cutoff=None if r["cutoff"] >= CUTOFF_INEFFECTIVE else r["cutoff"],
            update_interval=r["update_interval"],
        )
        for r in rows
    ]


def full_design(
    sizes: Sequence[ComplexSpec] = (SMALL, MEDIUM, LARGE),
) -> List[ExperimentCase]:
    """The 84-experiment full factorial (7 x |sizes| x 2 x 2)."""
    return _rows_to_cases(full_factorial(paper_factors(sizes)))


def reduced_design() -> List[ExperimentCase]:
    """The published ``7 * 2^(3-1)`` fraction: for each server count, the
    half fraction of {size, cutoff, update} with generator
    update = size * cutoff."""
    two_level = [
        Factor("molecule", (MEDIUM, LARGE)),
        Factor("cutoff", (CUTOFF_EFFECTIVE, CUTOFF_INEFFECTIVE)),
        Factor("update_interval", (UPDATE_FULL, UPDATE_PARTIAL)),
    ]
    fraction = fractional_factorial(
        two_level, generators=["update_interval=molecule*cutoff"]
    )
    cases: List[ExperimentCase] = []
    for p in SERVER_RANGE:
        for row in fraction:
            cases.append(
                ExperimentCase(
                    molecule=row["molecule"],
                    servers=p,
                    cutoff=(
                        None
                        if row["cutoff"] >= CUTOFF_INEFFECTIVE
                        else row["cutoff"]
                    ),
                    update_interval=row["update_interval"],
                )
            )
    return cases


def breakdown_chart_cases(
    molecule: ComplexSpec, servers: Sequence[int] = SERVER_RANGE
) -> dict:
    """The four chart panels of Figure 1 (medium) / Figure 2 (large).

    a) no cutoff, full update;   b) no cutoff, partial update;
    c) 10 A cutoff, full update; d) 10 A cutoff, partial update.
    """
    panels = {
        "a": (None, UPDATE_FULL),
        "b": (None, UPDATE_PARTIAL),
        "c": (CUTOFF_EFFECTIVE, UPDATE_FULL),
        "d": (CUTOFF_EFFECTIVE, UPDATE_PARTIAL),
    }
    return {
        key: [
            ExperimentCase(
                molecule=molecule,
                servers=p,
                cutoff=cut,
                update_interval=upd,
            )
            for p in servers
        ]
        for key, (cut, upd) in panels.items()
    }
