"""Allocation of variation with experimental error (Jain ch. 18/21-22).

The sign-table analysis in :mod:`repro.experiments.factorial` assumes
noise-free responses.  With *replicated* measurements (the paper's
Section 2.3 repetition protocol) the full 2^k r-replicate analysis also
yields an experimental-error term and confidence intervals for every
effect — so "factor X matters" becomes a statistical statement, not an
eyeball one.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import DesignError
from .factorial import Factor

#: two-sided 95% normal quantile (replication counts are small but the
#: effect estimates average many cells; adequate for reporting)
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class AnovaEffect:
    """One effect with its uncertainty."""

    name: str
    effect: float
    variation_explained: float
    confidence_halfwidth: float

    @property
    def significant(self) -> bool:
        """Zero lies outside the ~95% confidence interval."""
        return abs(self.effect) > self.confidence_halfwidth


@dataclass(frozen=True)
class AnovaResult:
    effects: List[AnovaEffect]
    #: fraction of total variation attributed to experimental error
    error_variation: float
    replications: int

    def significant_effects(self) -> List[AnovaEffect]:
        """Effects whose confidence interval excludes zero."""
        return [e for e in self.effects if e.significant]


def replicated_anova(
    factors: Sequence[Factor],
    rows: Sequence[Dict],
    replicated_responses: Sequence[Sequence[float]],
    interactions: bool = True,
) -> AnovaResult:
    """2^k r-replicate allocation of variation.

    ``replicated_responses[i]`` holds the r measurements of design cell
    ``rows[i]``.  Requires the full 2^k design and r >= 2 everywhere.
    """
    for f in factors:
        if len(f.levels) != 2:
            raise DesignError("replicated ANOVA needs 2-level factors")
    n_cells = 2 ** len(factors)
    if len(rows) != n_cells or len(replicated_responses) != n_cells:
        raise DesignError("need the FULL 2^k design with responses per cell")
    r_counts = {len(r) for r in replicated_responses}
    if len(r_counts) != 1:
        raise DesignError("all cells need the same number of replications")
    r = r_counts.pop()
    if r < 2:
        raise DesignError("need at least two replications per cell for ANOVA")

    y = np.asarray(replicated_responses, dtype=float)  # (cells, r)
    cell_means = y.mean(axis=1)

    cols: Dict[str, np.ndarray] = {}
    for f in factors:
        cols[f.name] = np.array(
            [-1.0 if row[f.name] == f.levels[0] else 1.0 for row in rows]
        )
    if interactions:
        for a, b in itertools.combinations([f.name for f in factors], 2):
            cols[f"{a}*{b}"] = cols[a] * cols[b]

    effects = {
        name: float(np.dot(col, cell_means) / n_cells)
        for name, col in cols.items()
    }
    ss = {name: n_cells * r * e * e for name, e in effects.items()}
    sse = float(np.sum((y - cell_means[:, None]) ** 2))
    grand = float(y.mean())
    sst = float(np.sum((y - grand) ** 2))
    if sst <= 0:
        raise DesignError("zero total variation; nothing to allocate")

    # standard error of an effect: s_e / sqrt(n_cells * r)
    dof_error = n_cells * (r - 1)
    s_e = math.sqrt(sse / dof_error) if dof_error > 0 else 0.0
    half = _Z95 * s_e / math.sqrt(n_cells * r)

    out = [
        AnovaEffect(
            name=name,
            effect=e,
            variation_explained=ss[name] / sst,
            confidence_halfwidth=half,
        )
        for name, e in effects.items()
    ]
    out.sort(key=lambda a: -a.variation_explained)
    return AnovaResult(effects=out, error_variation=sse / sst, replications=r)
