"""Prediction-as-a-service: async serving of what-if model queries.

The paper's punchline is that the calibrated model answers platform
what-if questions *without* porting the application; this subpackage
turns that into a long-running service.  Concurrent point queries are
coalesced by a micro-batcher into vectorized model evaluations,
admission control sheds overload deterministically (token buckets run
on the load generator's virtual arrival stamps), and fitted calibration
parameters are cached content-addressed — in memory, and optionally on
disk via the same keying as campaign cells.

Layers: :mod:`~repro.serve.api` (wire schema) →
:mod:`~repro.serve.admission` → :mod:`~repro.serve.batcher` →
:mod:`~repro.serve.service` (the pipeline core) →
:mod:`~repro.serve.server` (asyncio TCP/HTTP transports), with
:mod:`~repro.serve.calibstore` feeding calibrated coefficients and
:mod:`~repro.serve.loadgen` driving reproducible campaigns.
See docs/SERVING.md for the architecture and ops runbook.

Above the single-process service sits the fault-tolerant fleet tier:
:mod:`~repro.serve.hashring` (consistent hashing of compute cells) →
:mod:`~repro.serve.router` (front-door admission, health-checked
failover, retries) → :mod:`~repro.serve.fleet` (worker subprocess
supervision, respawn, graceful drain).  See docs/FLEET.md.
"""

from .admission import AdmissionController, AdmissionStats, TokenBucket
from .api import (
    Query,
    Request,
    WIRE_VERSION,
    canonical,
    error_response,
    is_ok,
    ok_response,
    parse_request,
)
from .batcher import MicroBatcher
from .calibstore import CalibrationStore
from .fleet import FleetSpec, ServeFleet, WorkerProc
from .hashring import HashRing, ring_hash
from .loadgen import LoadSpec, LoadgenReport, build_schedule, run_open_loop
from .router import (
    FleetConfig,
    FleetRecorder,
    FleetRouter,
    InProcessWorker,
    TcpWorkerClient,
    WorkerStats,
)
from .server import ServeClient, ServeServer, TcpServeClient, http_get, http_post
from .service import PredictionService, ServeConfig

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CalibrationStore",
    "FleetConfig",
    "FleetRecorder",
    "FleetRouter",
    "FleetSpec",
    "HashRing",
    "InProcessWorker",
    "LoadSpec",
    "LoadgenReport",
    "MicroBatcher",
    "PredictionService",
    "Query",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeFleet",
    "ServeServer",
    "TcpServeClient",
    "TcpWorkerClient",
    "TokenBucket",
    "WIRE_VERSION",
    "WorkerProc",
    "WorkerStats",
    "build_schedule",
    "canonical",
    "error_response",
    "http_get",
    "http_post",
    "is_ok",
    "ok_response",
    "parse_request",
    "ring_hash",
    "run_open_loop",
]
