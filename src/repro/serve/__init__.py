"""Prediction-as-a-service: async serving of what-if model queries.

The paper's punchline is that the calibrated model answers platform
what-if questions *without* porting the application; this subpackage
turns that into a long-running service.  Concurrent point queries are
coalesced by a micro-batcher into vectorized model evaluations,
admission control sheds overload deterministically (token buckets run
on the load generator's virtual arrival stamps), and fitted calibration
parameters are cached content-addressed — in memory, and optionally on
disk via the same keying as campaign cells.

Layers: :mod:`~repro.serve.api` (wire schema) →
:mod:`~repro.serve.admission` → :mod:`~repro.serve.batcher` →
:mod:`~repro.serve.service` (the pipeline core) →
:mod:`~repro.serve.server` (asyncio TCP/HTTP transports), with
:mod:`~repro.serve.calibstore` feeding calibrated coefficients and
:mod:`~repro.serve.loadgen` driving reproducible campaigns.
See docs/SERVING.md for the architecture and ops runbook.
"""

from .admission import AdmissionController, AdmissionStats, TokenBucket
from .api import (
    Query,
    Request,
    WIRE_VERSION,
    canonical,
    error_response,
    is_ok,
    ok_response,
    parse_request,
)
from .batcher import MicroBatcher
from .calibstore import CalibrationStore
from .loadgen import LoadSpec, LoadgenReport, build_schedule, run_open_loop
from .server import ServeClient, ServeServer, TcpServeClient, http_get, http_post
from .service import PredictionService, ServeConfig

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CalibrationStore",
    "LoadSpec",
    "LoadgenReport",
    "MicroBatcher",
    "PredictionService",
    "Query",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "TcpServeClient",
    "TokenBucket",
    "WIRE_VERSION",
    "build_schedule",
    "canonical",
    "error_response",
    "http_get",
    "http_post",
    "is_ok",
    "ok_response",
    "parse_request",
    "run_open_loop",
]
