"""Calibration store: content-addressed caching of fitted parameters.

A ``calibrated=True`` query wants model coefficients *fitted to
measurements* (the paper's Section 3 protocol) rather than derived from
the platform's Table 1/2 key data.  Fitting means running a reduced
campaign — 28 simulated cells — which takes far too long to sit on a
request's critical path, so the store caches fitted
:class:`~repro.core.parameters.ModelPlatformParams` three ways:

* **in memory**, an LRU of the last ``max_entries`` platforms fitted;
* **on disk** (optional ``cache_dir``), reusing
  :class:`~repro.experiments.cache.ResultCache` — the same
  content-addressed keying as campaign cells, so a store survives
  restarts and two services over one directory share fits;
* **by refresh policy** when a fit is missing or stale: ``"none"``
  falls back to key-data parameters, ``"background"`` falls back *now*
  and schedules the fit off the event loop for future requests,
  ``"blocking"`` awaits the fit (off-loop, in an executor).

The content key covers the platform's key data, the design, and the
measurement protocol — change any of them and the old fit misses.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import Executor
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from ..core.calibration import calibrate
from ..core.parameters import ModelPlatformParams
from ..experiments.cache import ResultCache, platform_key_data
from ..experiments.cases import ExperimentCase, reduced_design
from ..experiments.runner import DEFAULT_JITTER, ExperimentRunner

#: Where a query's parameters came from (reported in every response).
SOURCE_KEY_DATA = "key-data"
SOURCE_CALIBRATED = "calibrated"

#: Accepted refresh policies for :meth:`CalibrationStore.resolve`.
REFRESH_MODES = ("none", "background", "blocking")


def params_to_dict(params: ModelPlatformParams) -> Dict[str, object]:
    """Fitted parameters as JSON-able wire/cache data."""
    return {
        "name": params.name,
        "a1": params.a1,
        "b1": params.b1,
        "a2": params.a2,
        "a3": params.a3,
        "a4": params.a4,
        "b5": params.b5,
    }


def params_from_dict(data: Dict[str, object]) -> ModelPlatformParams:
    """Rebuild fitted parameters from :func:`params_to_dict` output."""
    return ModelPlatformParams(
        name=str(data["name"]),
        a1=float(data["a1"]),  # type: ignore[arg-type]
        b1=float(data["b1"]),  # type: ignore[arg-type]
        a2=float(data["a2"]),  # type: ignore[arg-type]
        a3=float(data["a3"]),  # type: ignore[arg-type]
        a4=float(data["a4"]),  # type: ignore[arg-type]
        b5=float(data["b5"]),  # type: ignore[arg-type]
    )


class CalibrationStore:
    """LRU + disk cache of fitted platform parameters.

    ``design`` defaults to the paper's reduced fraction; ``seed``,
    ``jitter_sigma`` and ``repetitions`` fix the measurement protocol
    (and enter the content key).  ``stale_after`` ages in-memory fits
    out after that many seconds on the supplied monotonic ``clock`` —
    a stale entry still serves, but triggers a background refit when
    the refresh policy allows one.
    """

    def __init__(
        self,
        design: Optional[List[ExperimentCase]] = None,
        seed: int = 0,
        jitter_sigma: float = DEFAULT_JITTER,
        repetitions: int = 1,
        max_entries: int = 8,
        cache_dir=None,
        stale_after: Optional[float] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.design = list(design) if design is not None else reduced_design()
        self.seed = seed
        self.jitter_sigma = jitter_sigma
        self.repetitions = repetitions
        self.max_entries = max_entries
        self.stale_after = stale_after
        self.disk = ResultCache(cache_dir) if cache_dir is not None else None
        self._executor = executor
        #: key -> (params, fitted_at), least-recently-used first
        self._entries: "OrderedDict[str, Tuple[ModelPlatformParams, float]]" = (
            OrderedDict()
        )
        self._inflight: Dict[str, "asyncio.Task[ModelPlatformParams]"] = {}
        self.hits = 0
        self.misses = 0
        self.fits = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    def key_for_platform(self, spec) -> str:
        """Content address of one platform's fit under this protocol."""
        return ResultCache.key_for(
            {
                "kind": "calibration",
                "platform": platform_key_data(spec),
                "design": [case.key_data() for case in self.design],
                "protocol": {
                    "seed": self.seed,
                    "jitter_sigma": self.jitter_sigma,
                    "repetitions": self.repetitions,
                    "sync_mode": "accounted",
                },
            }
        )

    def fit(self, spec) -> ModelPlatformParams:
        """Run the reduced campaign and fit parameters (synchronous).

        This is the expensive path — a full simulated campaign — and is
        only ever called off the event loop (via an executor) or from
        synchronous tools like the CLI.
        """
        runner = ExperimentRunner(
            spec,
            jitter_sigma=self.jitter_sigma,
            repetitions=self.repetitions,
            seed=self.seed,
        )
        result = calibrate(
            runner.observations(self.design), name=f"{spec.name}-serve-fit"
        )
        self.fits += 1
        return result.params

    # ------------------------------------------------------------------
    def key_for_family(self, spec, family_name: str) -> str:
        """Content address of one (platform, family) fit."""
        from ..workloads import get_family
        from ..workloads.campaign import WorkloadCell

        family = get_family(family_name)
        design = [
            WorkloadCell(s, p).key_data() for s, p in family.calibration_design()
        ]
        return ResultCache.key_for(
            {
                "kind": "workload-calibration",
                "family": family_name,
                "platform": platform_key_data(spec),
                "design": design,
                "protocol": {
                    "seed": self.seed,
                    "jitter_sigma": self.jitter_sigma,
                    "repetitions": self.repetitions,
                    "sync_mode": "accounted",
                },
            }
        )

    def fit_family(self, spec, family_name: str) -> ModelPlatformParams:
        """Measure a family's calibration design and fit (synchronous)."""
        from ..core.calibration import calibrate_terms
        from ..workloads import get_family
        from ..workloads.campaign import WorkloadCell, measure_workload_cell

        family = get_family(family_name)
        observations = []
        for wl_spec, servers in family.calibration_design():
            record = measure_workload_cell(
                spec,
                WorkloadCell(wl_spec, servers),
                jitter_sigma=self.jitter_sigma,
                repetitions=self.repetitions,
                base_seed=self.seed,
            )
            observations.append(
                (family.terms(wl_spec, servers), record.breakdown)
            )
        result = calibrate_terms(
            observations, name=f"{spec.name}-{family_name}-serve-fit"
        )
        self.fits += 1
        return result.params

    # ------------------------------------------------------------------
    def _remember(self, key: str, params: ModelPlatformParams, now: float) -> None:
        """Insert into the in-memory LRU (disk persistence is separate).

        Memory-only so coroutines never touch the filesystem on-loop:
        simlint S701 flagged the old combined version because the
        ``disk.store`` inside it put ``open()`` two frames under
        ``async def resolve``.
        """
        self._entries.pop(key, None)
        self._entries[key] = (params, now)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def _lookup(
        self, key: str, now: float
    ) -> Tuple[Optional[ModelPlatformParams], bool]:
        """Memory probe: ``(params, disk_may_help)``.

        A stale in-memory entry returns ``(None, False)`` — the disk
        holds the same aged fit, so resurrecting it would defeat
        ``stale_after``; the caller should refit instead.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            params, fitted_at = entry
            if self.stale_after is not None and now - fitted_at > self.stale_after:
                return None, False  # stale: caller decides whether to refit
            return params, False
        return None, self.disk is not None

    async def _load_off_loop(
        self, key: str, now: float
    ) -> Optional[ModelPlatformParams]:
        """Disk probe in the executor; remembers and returns on a hit."""
        assert self.disk is not None
        loop = asyncio.get_running_loop()
        data = await loop.run_in_executor(self._executor, self.disk.load, key)
        if data is None:
            return None
        try:
            params = params_from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None  # corrupt disk entry = miss
        self._remember(key, params, now)
        return params

    async def _fit_off_loop(
        self, fit: Callable[[], ModelPlatformParams], key: str, now: float
    ) -> ModelPlatformParams:
        loop = asyncio.get_running_loop()
        params = await loop.run_in_executor(self._executor, fit)
        self._remember(key, params, now)
        if self.disk is not None:
            await loop.run_in_executor(
                self._executor, self.disk.store, key, params_to_dict(params)
            )
        return params

    def _spawn_refresh(
        self, fit: Callable[[], ModelPlatformParams], key: str, now: float
    ) -> None:
        """Schedule a background (re)fit, deduplicating in-flight keys."""
        if key in self._inflight:
            return
        self.refreshes += 1

        async def refresh() -> ModelPlatformParams:
            try:
                return await self._fit_off_loop(fit, key, now)
            finally:
                self._inflight.pop(key, None)

        self._inflight[key] = asyncio.get_running_loop().create_task(refresh())

    async def drain(self) -> None:
        """Await all in-flight background fits (tests and shutdown)."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight.values()))

    # ------------------------------------------------------------------
    async def _resolve_keyed(
        self,
        key: str,
        fit: Callable[[], ModelPlatformParams],
        fallback: Callable[[], ModelPlatformParams],
        now: float,
        refresh: str,
    ) -> Tuple[ModelPlatformParams, str]:
        """The shared policy flow: memory -> disk -> fit-or-fallback."""
        if refresh not in REFRESH_MODES:
            raise ValueError(
                f"refresh must be one of {REFRESH_MODES}, got {refresh!r}"
            )
        params, try_disk = self._lookup(key, now)
        if params is None and try_disk:
            params = await self._load_off_loop(key, now)
        if params is not None:
            self.hits += 1
            return params, SOURCE_CALIBRATED
        self.misses += 1
        if refresh == "blocking":
            inflight = self._inflight.get(key)
            if inflight is not None:
                return await asyncio.shield(inflight), SOURCE_CALIBRATED
            return await self._fit_off_loop(fit, key, now), SOURCE_CALIBRATED
        if refresh == "background":
            self._spawn_refresh(fit, key, now)
        return fallback(), SOURCE_KEY_DATA

    async def resolve(
        self, spec, now: float, refresh: str = "background"
    ) -> Tuple[ModelPlatformParams, str]:
        """Fitted parameters for ``spec``, or the key-data fallback.

        Returns ``(params, source)`` where source is
        :data:`SOURCE_CALIBRATED` when a (fresh enough) fit was found or
        produced, and :data:`SOURCE_KEY_DATA` when the store fell back
        to Table 1/2-derived parameters under the given policy.
        """
        return await self._resolve_keyed(
            self.key_for_platform(spec),
            partial(self.fit, spec),
            partial(ModelPlatformParams.from_spec, spec),
            now,
            refresh,
        )

    async def resolve_family(
        self, spec, family_name: str, now: float, refresh: str = "background"
    ) -> Tuple[ModelPlatformParams, str]:
        """Family-fitted parameters for ``spec``, or key-data fallback.

        Same policy flow as :meth:`resolve`, but the fit measures the
        family's own calibration design and the fallback derives the
        family's coefficients from the platform's technical key data.
        """
        from ..workloads import get_family

        family = get_family(family_name)
        return await self._resolve_keyed(
            self.key_for_family(spec, family_name),
            partial(self.fit_family, spec, family_name),
            partial(family.key_data_params, spec),
            now,
            refresh,
        )
