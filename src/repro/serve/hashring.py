"""Consistent hashing of compute cells onto fleet worker slots.

The fleet router shards queries by compute cell so that one cell's
calibration resolve, model instance and memoized workload terms warm
exactly one worker.  A consistent hash ring keeps that mapping stable
under membership change: each worker slot owns ``replicas`` virtual
points on a 64-bit ring, a key is owned by the first point at or after
its own hash (successor walk), and when a worker dies only the keys it
owned move — each to the next live successor — while every other
key keeps its owner.  Respawning the same slot id restores its exact
points, so a revived worker reclaims precisely the cells it lost.

Hashes come from SHA-256 (stable across processes and Python builds,
unlike ``hash()`` under ``PYTHONHASHSEED``), so the router, the tests
and a future multi-host deployment all agree on ownership.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable, List, Optional, Set, Tuple


def ring_hash(label: str) -> int:
    """The 64-bit ring position of a label (first 8 SHA-256 bytes)."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Virtual-node consistent hash ring over integer worker slots.

    ``replicas`` virtual points per slot smooth the key distribution;
    64 keeps the worst slot within a few percent of fair share for
    small fleets.  Lookup never mutates the ring: dead slots are
    *skipped* via the ``alive`` predicate, which is what makes the
    remap minimal — the points of a dead slot stay on the ring, so its
    revival restores the original ownership bit for bit.
    """

    def __init__(self, slots: Iterable[int] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas!r}")
        self.replicas = replicas
        self._slots: Set[int] = set()
        #: sorted (point, slot) pairs; slots are >= 0 so (h, -1) sorts
        #: strictly before every real point at position h
        self._points: List[Tuple[int, int]] = []
        for slot in slots:
            self.add(slot)

    # ------------------------------------------------------------------
    @property
    def slots(self) -> Set[int]:
        """The slot ids currently on the ring."""
        return set(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def add(self, slot: int) -> None:
        """Place one slot's virtual points on the ring (idempotent)."""
        if slot < 0:
            raise ValueError(f"slot ids must be >= 0, got {slot!r}")
        if slot in self._slots:
            return
        self._slots.add(slot)
        for replica in range(self.replicas):
            point = ring_hash(f"w{slot}#{replica}")
            bisect.insort(self._points, (point, slot))

    def remove(self, slot: int) -> None:
        """Take one slot's points off the ring (idempotent).

        Prefer skipping dead slots via ``alive`` in :meth:`owner`; a
        removed slot that re-adds later lands on identical points, so
        both routes produce the same ownership.
        """
        if slot not in self._slots:
            return
        self._slots.discard(slot)
        self._points = [(p, s) for p, s in self._points if s != slot]

    # ------------------------------------------------------------------
    def owner(
        self, key: str, alive: Optional[Callable[[int], bool]] = None
    ) -> Optional[int]:
        """The live slot owning ``key``, or None when none is alive.

        Successor walk: start at the first virtual point at or after
        the key's hash and take the first slot that passes ``alive``
        (every slot passes when no predicate is given).  Keys whose
        primary owner is alive never move; keys owned by a dead slot
        fall to their next distinct live successor.
        """
        if not self._points:
            return None
        start = bisect.bisect_left(self._points, (ring_hash(key), -1))
        n = len(self._points)
        rejected: Set[int] = set()
        for step in range(n):
            _point, slot = self._points[(start + step) % n]
            if slot in rejected:
                continue
            if alive is None or alive(slot):
                return slot
            rejected.add(slot)
        return None

    def preference(self, key: str) -> List[int]:
        """Every slot in successor-walk order for ``key`` (failover order)."""
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, (ring_hash(key), -1))
        n = len(self._points)
        order: List[int] = []
        seen: Set[int] = set()
        for step in range(n):
            _point, slot = self._points[(start + step) % n]
            if slot not in seen:
                seen.add(slot)
                order.append(slot)
        return order
