"""Multi-worker serve fleet: subprocess supervision for the router.

:class:`ServeFleet` boots N worker processes — each one the existing
single-process server (``python -m repro.serve serve``) listening on
an ephemeral localhost port — wires a pipelined
:class:`~repro.serve.router.TcpWorkerClient` to each, and fronts them
with a :class:`~repro.serve.router.FleetRouter`.  Workers run with
admission wide open: the router's fleet-wide token buckets are the
single backpressure tier, so a worker never sheds what the front door
admitted (except during its own drain, which the router retries).

Calibration replication is by construction: every worker shares the
fleet's content-addressed calibration ``cache_dir``, so a respawned
worker reloads calibrations warm from disk instead of re-fitting.
Each worker incarnation writes its own telemetry store directory
(``worker-<slot>-g<generation>``) next to the router's; ``python -m
repro.obs merge`` folds them into one store for the SLO gate.

Chaos taps: :meth:`kill_worker` (SIGKILL, abrupt death) and
:meth:`stall_worker` (SIGSTOP, wedged-but-connected) let the chaos
bench and CI kill a named worker mid-burst deterministically.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..obs.session import ObsSession
from .router import FleetConfig, FleetRouter, TcpWorkerClient

#: stdout banner of a ready worker (see ``cmd_serve``).
_PORT_RE = re.compile(rb"serving on [^:]+:(\d+)")


@dataclass(frozen=True)
class FleetSpec:
    """Shape of one fleet: worker count, shared stores, service knobs."""

    workers: int = 3
    host: str = "127.0.0.1"
    #: shared content-addressed calibration cache (None = per-worker
    #: in-memory stores; set it to get warm respawn reloads)
    cache_dir: Optional[str] = None
    #: root directory for telemetry stores (router + per-worker); None
    #: disables per-request recording
    store_root: Optional[str] = None
    max_batch: int = 64
    max_linger: float = 0.002
    #: seconds to wait for a worker's ready banner before giving up
    spawn_timeout: float = 60.0
    config: FleetConfig = field(default_factory=FleetConfig)


@dataclass
class WorkerProc:
    """One live worker incarnation under fleet supervision."""

    slot: int
    generation: int
    process: "asyncio.subprocess.Process"
    port: int
    store_dir: Optional[str]
    drain_task: Optional["asyncio.Task[None]"] = None


class ServeFleet:
    """Boot, supervise, and drain a fleet of serve worker processes.

    Use as an async context manager::

        async with ServeFleet(FleetSpec(workers=3)) as fleet:
            response = await fleet.router.submit(envelope)

    ``fleet.router`` is a drop-in ``service`` for
    :class:`~repro.serve.server.ServeServer`, so ``python -m
    repro.serve fleet`` exposes the whole fleet on one front-door port.
    """

    def __init__(
        self, spec: Optional[FleetSpec] = None, obs: Optional[ObsSession] = None
    ) -> None:
        self.spec = spec or FleetSpec()
        if self.spec.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.obs = obs
        self.procs: Dict[int, WorkerProc] = {}
        self.router: Optional[FleetRouter] = None
        self._generation: Dict[int, int] = {}
        self._started = False

    # -- spawning -------------------------------------------------------
    def _store_dir(self, slot: int, generation: int) -> Optional[str]:
        if self.spec.store_root is None:
            return None
        return str(Path(self.spec.store_root) / f"worker-{slot}-g{generation}")

    def _worker_argv(self, store_dir: Optional[str]) -> List[str]:
        argv = [
            sys.executable, "-m", "repro.serve", "serve",
            "--host", self.spec.host,
            "--port", "0",
            "--max-batch", str(self.spec.max_batch),
            "--max-linger", str(self.spec.max_linger),
            # wide open: the router is the only admission tier
            "--queue-depth", "1000000",
            "--admit-rate", "1e9",
            "--burst", "1000000",
        ]
        if self.spec.cache_dir is not None:
            argv += ["--cache-dir", self.spec.cache_dir]
        if store_dir is not None:
            argv += ["--store-out", store_dir]
        return argv

    async def _spawn(self, slot: int) -> WorkerProc:
        """Start one worker process and wait for its ready banner."""
        generation = self._generation.get(slot, 0) + 1
        self._generation[slot] = generation
        store_dir = self._store_dir(slot, generation)
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        process = await asyncio.create_subprocess_exec(
            *self._worker_argv(store_dir),
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        assert process.stdout is not None
        try:
            line = await asyncio.wait_for(
                process.stdout.readline(), self.spec.spawn_timeout
            )
        except asyncio.TimeoutError:
            process.kill()
            raise RuntimeError(
                f"worker w{slot} did not print its port within "
                f"{self.spec.spawn_timeout}s"
            ) from None
        except asyncio.CancelledError:
            # a respawn aborted by shutdown must not orphan the child
            process.kill()
            raise
        match = _PORT_RE.search(line)
        if match is None:
            process.kill()
            raise RuntimeError(
                f"worker w{slot} printed an unexpected banner: {line!r}"
            )
        proc = WorkerProc(
            slot=slot,
            generation=generation,
            process=process,
            port=int(match.group(1)),
            store_dir=store_dir,
        )
        proc.drain_task = asyncio.get_running_loop().create_task(
            self._drain_stdout(process)
        )
        return proc

    @staticmethod
    async def _drain_stdout(process: "asyncio.subprocess.Process") -> None:
        """Keep reading worker stdout so the pipe buffer never fills."""
        assert process.stdout is not None
        while True:
            # deliberately unbounded: a quiet worker prints nothing for
            # arbitrarily long; EOF (death) is the only exit condition
            line = await process.stdout.readline()  # simlint: disable=R502
            if not line:
                return

    async def _connect(self, proc: WorkerProc) -> TcpWorkerClient:
        client = TcpWorkerClient(self.spec.host, proc.port)
        await client.connect()
        return client

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker, connect links, start the router."""
        if self._started:
            return
        procs = await asyncio.gather(
            *(self._spawn(slot) for slot in range(self.spec.workers))
        )
        workers: Dict[int, Any] = {}
        for proc in procs:
            self.procs[proc.slot] = proc
            workers[proc.slot] = await self._connect(proc)
        store = None
        if self.spec.store_root is not None:
            from ..obs.store import TelemetryStore

            router_dir = str(Path(self.spec.store_root) / "router")
            # TelemetryStore.__init__ reads the manifest from disk;
            # keep that I/O off the event loop
            store = await asyncio.get_running_loop().run_in_executor(
                None, TelemetryStore, router_dir
            )
        self.router = FleetRouter(
            workers,
            config=self.spec.config,
            obs=self.obs,
            store=store,
            respawn_fn=self._respawn_client,
        )
        await self.router.start()
        self._started = True

    async def stop(self) -> None:
        """Drain the router, then gracefully stop every worker."""
        if not self._started:
            return
        self._started = False
        if self.router is not None:
            await self.router.stop()
        live = [p for p in self.procs.values() if p.process.returncode is None]
        for proc in live:
            try:
                proc.process.terminate()  # SIGTERM -> worker drains + flushes
            except ProcessLookupError:  # pragma: no cover - racing exit
                pass
        for proc in live:
            try:
                await asyncio.wait_for(proc.process.wait(), 15.0)
            except asyncio.TimeoutError:  # pragma: no cover - wedged worker
                proc.process.kill()
                await proc.process.wait()
        for proc in self.procs.values():
            if proc.drain_task is not None:
                proc.drain_task.cancel()
                try:
                    await proc.drain_task
                except asyncio.CancelledError:
                    pass
                proc.drain_task = None

    async def __aenter__(self) -> "ServeFleet":
        """Async context manager: boot the fleet on enter."""
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        """Async context manager: drain and stop on exit."""
        await self.stop()

    # -- supervision ----------------------------------------------------
    async def _respawn_client(self, slot: int) -> TcpWorkerClient:
        """Router respawn hook: fresh incarnation, connected link."""
        old = self.procs.get(slot)
        if old is not None and old.process.returncode is None:
            old.process.kill()
            await old.process.wait()
        if old is not None and old.drain_task is not None:
            old.drain_task.cancel()
            try:
                await old.drain_task
            except asyncio.CancelledError:
                pass
            old.drain_task = None
        proc = await self._spawn(slot)
        self.procs[slot] = proc
        return await self._connect(proc)

    # -- chaos taps -----------------------------------------------------
    def kill_worker(self, slot: int) -> None:
        """SIGKILL one worker (abrupt crash; links tear immediately)."""
        proc = self.procs[slot]
        if proc.process.returncode is None:
            proc.process.kill()

    def stall_worker(self, slot: int) -> None:
        """SIGSTOP one worker (wedged: connected but unresponsive)."""
        proc = self.procs[slot]
        if proc.process.returncode is None:
            proc.process.send_signal(signal.SIGSTOP)

    # -- reporting ------------------------------------------------------
    def store_dirs(self) -> List[str]:
        """Router + every worker-incarnation telemetry store directory."""
        if self.spec.store_root is None:
            return []
        root = Path(self.spec.store_root)
        dirs = [str(root / "router")]
        for slot in sorted(self._generation):
            for generation in range(1, self._generation[slot] + 1):
                store_dir = self._store_dir(slot, generation)
                if store_dir is not None and Path(store_dir).exists():
                    dirs.append(store_dir)
        return dirs

    def report(self) -> Dict[str, Any]:
        """Fleet snapshot: router report plus per-worker process state."""
        assert self.router is not None
        snapshot = self.router.report()
        snapshot["processes"] = {
            f"w{slot}": {
                "generation": proc.generation,
                "port": proc.port,
                "returncode": proc.process.returncode,
            }
            for slot, proc in sorted(self.procs.items())
        }
        return snapshot
