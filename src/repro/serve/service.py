"""The prediction service: admit → queue → batch → compute → reply.

:class:`PredictionService` is the transport-independent core.  One
request enters as a decoded JSON envelope via :meth:`submit` and leaves
as a response envelope; between the two it passes admission control
(:mod:`repro.serve.admission`), a bounded queue, the micro-batcher
(:mod:`repro.serve.batcher`) and a vectorized model evaluation that is
off-loaded to a single worker thread so the event loop keeps accepting
requests while the model computes.

Batching exploits the model's structure: all requests in a batch that
share a (platform, calibration, molecule, cutoff, update, steps) cell
reuse one calibration resolve, one
:class:`~repro.core.model.OpalPerformanceModel` and the memoized
workload terms; each point is then evaluated by exactly the same
per-point code path as an unbatched request, so responses are
bit-identical whether a query was served alone or in a batch of 64.

Every stage is observable: with ``obs=`` the service records per-stage
spans (``admit``/``queue``/``compute``/``reply`` on the ``serve``
process) and feeds the session's metrics registry; without it a private
registry collects the same counters.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.model import OpalPerformanceModel
from ..core.parameters import ApplicationParams, ModelPlatformParams
from ..core.prediction import predict_series
from ..errors import ServeError
from ..obs.metrics import MetricsRegistry
from ..obs.query import percentile
from ..obs.session import ObsSession
from ..opal.complexes import get_complex
from ..platforms import PLATFORMS, get_platform
from . import api
from .admission import AdmissionController
from .batcher import MicroBatcher
from .calibstore import SOURCE_KEY_DATA, CalibrationStore
from .flight import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_SHED_DRAIN,
    STATUS_SHED_QUEUE,
    STATUS_SHED_RATE,
    FlightRecorder,
)

#: Span process name for every serve-side span.
SERVE_PROC = "serve"


@dataclass(frozen=True)
class ServeConfig:
    """Tunable knobs of one service instance.

    ``max_batch=1`` turns the service into a sequential server through
    the identical pipeline (the throughput benchmark's baseline).
    ``refresh`` is the calibration policy passed to
    :meth:`~repro.serve.calibstore.CalibrationStore.resolve`.
    """

    max_batch: int = 64
    max_linger: float = 0.002
    max_queue_depth: int = 1024
    rate: float = 200.0
    burst: int = 50
    refresh: str = "background"
    #: run model evaluation in a worker thread (keeps the loop live)
    offload: bool = True


def _build_app(query: api.Query, servers: int) -> ApplicationParams:
    """The ApplicationParams for one concrete (query, server count)."""
    return ApplicationParams(
        molecule=get_complex(query.molecule),
        steps=query.steps,
        servers=servers,
        update_interval=query.update_interval,
        cutoff=query.cutoff,
    )


def _evaluate_point(
    params: ModelPlatformParams, query: api.Query, source: str
) -> Dict[str, Any]:
    """One point prediction — the single code path both modes share.

    Every response value is produced here with a fixed operation
    order, so a point's numbers cannot depend on which batch (if any)
    it rode in.
    """
    model = OpalPerformanceModel(params)
    servers = int(query.servers)  # point queries carry a single count
    breakdown = model.breakdown(_build_app(query, servers))
    t1 = model.breakdown(_build_app(query, 1)).total
    total = breakdown.total
    return {
        "kind": "predict",
        "platform": query.platform,
        "molecule": query.molecule,
        "servers": servers,
        "time": total,
        "speedup": t1 / total,
        "breakdown": breakdown.as_dict(),
        "calibration": source,
    }


def _evaluate_sweep(
    params: ModelPlatformParams, query: api.Query, source: str
) -> Dict[str, Any]:
    """One sweep prediction over the query's server range."""
    servers = (
        query.servers
        if isinstance(query.servers, tuple)
        else (int(query.servers),)
    )
    series = predict_series(params, _build_app(query, servers[0]), servers)
    return {
        "kind": "sweep",
        "platform": query.platform,
        "molecule": query.molecule,
        "servers": list(series.servers),
        "times": list(series.times),
        "speedups": list(series.speedups),
        "best_time": series.best_time,
        "saturation": series.saturation,
        "calibration": source,
    }


def _family_terms(query: api.Query, servers: int):
    """The closed-form regressors of one (family query, server count)."""
    from ..workloads import get_family

    family = get_family(query.family)
    spec = family.spec_from_params(dict(query.spec or ()))
    return family.terms(spec, servers)


def _evaluate_family_point(
    params: ModelPlatformParams, query: api.Query, source: str
) -> Dict[str, Any]:
    """One non-opal point prediction (pure, batch-size independent)."""
    from ..core.model import terms_breakdown

    servers = int(query.servers)
    breakdown = terms_breakdown(params, _family_terms(query, servers))
    t1 = terms_breakdown(params, _family_terms(query, 1)).total
    total = breakdown.total
    return {
        "kind": "predict",
        "platform": query.platform,
        "family": query.family,
        "spec": dict(query.spec or ()),
        "servers": servers,
        "time": total,
        "speedup": t1 / total,
        "breakdown": breakdown.as_dict(),
        "calibration": source,
    }


def _evaluate_family_sweep(
    params: ModelPlatformParams, query: api.Query, source: str
) -> Dict[str, Any]:
    """One non-opal sweep prediction over the query's server range."""
    from ..core.model import terms_breakdown
    from ..core.prediction import PredictionSeries
    from ..core.speedup import speedup_curve

    servers = (
        query.servers
        if isinstance(query.servers, tuple)
        else (int(query.servers),)
    )
    times = tuple(
        terms_breakdown(params, _family_terms(query, p)).total for p in servers
    )
    series = PredictionSeries(
        platform=query.platform,
        servers=servers,
        times=times,
        speedups=tuple(speedup_curve(list(times))),
    )
    return {
        "kind": "sweep",
        "platform": query.platform,
        "family": query.family,
        "spec": dict(query.spec or ()),
        "servers": list(series.servers),
        "times": list(series.times),
        "speedups": list(series.speedups),
        "best_time": series.best_time,
        "saturation": series.saturation,
        "calibration": source,
    }


def platform_catalog() -> Dict[str, Any]:
    """The ``kind="platforms"`` catalog (also answered router-side)."""
    return {
        "kind": "platforms",
        "platforms": [
            {
                "name": name,
                "cost_kusd": PLATFORMS[name].approx_cost_kusd,
            }
            for name in sorted(PLATFORMS)
        ],
    }


#: One compute job: (kind, query, fitted params, calibration source).
_Job = Tuple[str, api.Query, ModelPlatformParams, str]


def _evaluate_jobs(jobs: List[_Job]) -> List[Dict[str, Any]]:
    """Evaluate a batch of jobs (pure; runs on the worker thread).

    Identical point jobs are evaluated once and shared: within one
    batch, a (compute cell, server count) pair maps to exactly one
    parameter set, and :func:`_evaluate_point` is a pure function of
    it, so reuse returns the same bytes the duplicate evaluation would
    have.  This is where batched serving wins its throughput: a batch
    of coalesced single-point queries collapses to its distinct cells,
    while the sequential mode (batch size 1) pays full price per
    request — and both still emit bit-identical responses.
    """
    results = []
    cache: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for kind, query, params, source in jobs:
        cache_key = (kind, query.compute_key, source, query.servers)
        hit = cache.get(cache_key)
        if hit is None:
            if query.family != "opal":
                evaluate = (
                    _evaluate_family_sweep
                    if kind == "sweep"
                    else _evaluate_family_point
                )
            else:
                evaluate = _evaluate_sweep if kind == "sweep" else _evaluate_point
            hit = cache[cache_key] = evaluate(params, query, source)
        results.append(hit)
    return results


class _Pending:
    """One admitted request waiting in the pipeline."""

    __slots__ = (
        "request", "future", "enqueued", "expires",
        "depth", "admit_end", "t_batch", "t_compute", "t_done", "batch_size",
    )

    def __init__(
        self,
        request: api.Request,
        future: "asyncio.Future[Dict[str, Any]]",
        enqueued: float,
        expires: Optional[float],
        depth: int = 0,
        admit_end: float = 0.0,
    ) -> None:
        self.request = request
        self.future = future
        self.enqueued = enqueued
        self.expires = expires
        #: queue depth observed at admission (flight-recorder column)
        self.depth = depth
        #: per-stage timestamps, filled in as the request advances
        self.admit_end = admit_end
        self.t_batch = enqueued
        self.t_compute = enqueued
        self.t_done = enqueued
        self.batch_size = 0


class PredictionService:
    """Transport-independent prediction-as-a-service core."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        calibrations: Optional[CalibrationStore] = None,
        obs: Optional[ObsSession] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.calibrations = calibrations or CalibrationStore()
        self.obs = obs
        #: optional flight recorder; every admitted request leaves a row
        self.flight = flight
        self.metrics: MetricsRegistry = (
            obs.metrics if obs is not None else MetricsRegistry()
        )
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            rate=self.config.rate,
            burst=self.config.burst,
        )
        self.batcher = MicroBatcher(
            self._dispatch,
            max_batch=self.config.max_batch,
            max_linger=self.config.max_linger,
        )
        #: raw reply latencies in seconds (admit -> reply), for quantiles
        self.latencies: List[float] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        #: once stop() begins, new submissions shed with ``shed:drain``
        self._draining = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the batch loop (must run inside the event loop)."""
        if self._started:
            return
        if self.config.offload:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-compute"
            )
        self.batcher.start()
        self._draining = False
        self._started = True

    async def stop(self) -> None:
        """Drain the queue, stop the batch loop, release the worker.

        Requests already queued are dispatched and answered; a request
        that races the stop sentinel into the batcher is shed with a
        deterministic 429 ``shed:drain`` instead of hanging, and new
        submissions shed the same way the moment draining begins.
        """
        if not self._started:
            return
        self._draining = True
        await self.batcher.stop()
        self._shed_drained(self.batcher.drain_pending())
        await self.calibrations.drain()
        if self.flight is not None:
            # off-loop I/O (run_in_executor inside flush); the pipeline
            # is drained, so the flush races no further recording
            await self.flight.flush()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    async def __aenter__(self) -> "PredictionService":
        """Async context manager: start on enter."""
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        """Async context manager: stop on exit."""
        await self.stop()

    # ------------------------------------------------------------------
    def _span(self, category: str, start: float, end: float, detail: str = "") -> None:
        if self.obs is not None:
            self.obs.tracer.record(SERVE_PROC, category, start, end, detail=detail)

    def _reply(
        self, pending: _Pending, response: Dict[str, Any], now: float
    ) -> None:
        """Resolve one pending request and account its latency."""
        if pending.future.done():  # pragma: no cover - cancelled client
            return
        pending.future.set_result(response)
        latency = now - pending.enqueued
        self.latencies.append(latency)
        self.metrics.histogram("serve.latency_s").observe(latency)
        self._span("reply", now, now, detail=pending.request.id)
        if self.flight is not None:
            status = response.get("status")
            code = (
                STATUS_OK if status == api.OK
                else STATUS_EXPIRED if status == api.DEADLINE_EXPIRED
                else STATUS_ERROR
            )
            self.flight.record(
                t_admit=pending.enqueued,
                depth=pending.depth,
                admit_us=(pending.admit_end - pending.enqueued) * 1e6,
                queue_us=(pending.t_batch - pending.enqueued) * 1e6,
                compute_us=(pending.t_done - pending.t_compute) * 1e6,
                reply_us=(now - pending.t_done) * 1e6,
                reply_s=latency,  # bitwise the float latencies[] holds
                status=code,
                batch=pending.batch_size,
            )

    # ------------------------------------------------------------------
    async def submit(self, envelope: Any) -> Dict[str, Any]:
        """Serve one decoded request envelope; always returns a response.

        The synchronous prefix — parse, validate, admission — runs
        before the first ``await``, so requests submitted in order are
        admitted in order regardless of event-loop interleaving (this
        is what makes seeded overload runs shed deterministically).
        """
        loop = asyncio.get_running_loop()
        t_admit = loop.time()
        self.metrics.counter("serve.requests").inc()
        try:
            request = api.parse_request(envelope)
        except ServeError as exc:
            self.metrics.counter("serve.errors").inc()
            return api.error_response(
                str(envelope.get("id", "")) if isinstance(envelope, dict) else "",
                exc.status,
                exc.reason,
                exc.detail,
            )

        # admission: rate by the stamped virtual arrival when present,
        # by the wall clock otherwise; queue bound by live queue depth
        admit_clock = request.arrival if request.arrival is not None else t_admit
        depth = self.batcher.depth
        verdict = self.admission.decide(request.client, admit_clock, depth)
        t_admitted = loop.time()
        self._span("admit", t_admit, t_admitted, detail=request.id)
        if verdict is not None:
            self.metrics.counter(f"serve.shed_{verdict}").inc()
            if self.flight is not None:
                self.flight.record_shed(
                    t_admit=t_admit,
                    depth=depth,
                    admit_us=(t_admitted - t_admit) * 1e6,
                    status=(
                        STATUS_SHED_QUEUE if verdict == "queue" else STATUS_SHED_RATE
                    ),
                )
            return api.error_response(
                request.id,
                api.SHED,
                f"shed:{verdict}",
                f"request shed by admission control ({verdict})",
            )

        if self._draining:
            self.metrics.counter("serve.shed_drain").inc()
            if self.flight is not None:
                self.flight.record_shed(
                    t_admit=t_admit,
                    depth=depth,
                    admit_us=(t_admitted - t_admit) * 1e6,
                    status=STATUS_SHED_DRAIN,
                )
            return api.error_response(
                request.id,
                api.SHED,
                "shed:drain",
                "service is draining for shutdown; request not accepted",
            )

        if request.kind == "ping":
            self.metrics.counter("serve.ok").inc()
            return api.ok_response(request.id, {"kind": "pong"})
        if request.kind == "platforms":
            self.metrics.counter("serve.ok").inc()
            return api.ok_response(request.id, self._platform_catalog())

        expires = t_admit + request.deadline if request.deadline is not None else None
        pending = _Pending(
            request,
            loop.create_future(),
            enqueued=t_admit,
            expires=expires,
            depth=depth,
            admit_end=t_admitted,
        )
        self.batcher.put(pending)
        self.metrics.gauge("serve.queue_depth").set(float(self.batcher.depth))
        response = await pending.future
        if api.is_ok(response):
            self.metrics.counter("serve.ok").inc()
        return response

    def _platform_catalog(self) -> Dict[str, Any]:
        """The catalog listing served for ``kind="platforms"``."""
        return platform_catalog()

    def _shed_drained(self, leftovers: List[_Pending]) -> None:
        """Answer batcher leftovers with a deterministic drain shed."""
        if not leftovers:
            return
        for pending in leftovers:
            if pending.future.done():  # pragma: no cover - cancelled client
                continue
            self.metrics.counter("serve.shed_drain").inc()
            if self.flight is not None:
                self.flight.record_shed(
                    t_admit=pending.enqueued,
                    depth=pending.depth,
                    admit_us=(pending.admit_end - pending.enqueued) * 1e6,
                    status=STATUS_SHED_DRAIN,
                )
            pending.future.set_result(
                api.error_response(
                    pending.request.id,
                    api.SHED,
                    "shed:drain",
                    "service stopped before this request reached a batch",
                )
            )

    # ------------------------------------------------------------------
    async def _dispatch(self, batch: List[_Pending]) -> None:
        """Serve one micro-batch: expire, group, evaluate, reply."""
        loop = asyncio.get_running_loop()
        t_batch = loop.time()
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_occupancy").observe(len(batch))
        for pending in batch:
            self._span("queue", pending.enqueued, t_batch, detail=pending.request.id)
            pending.t_batch = t_batch
            pending.t_compute = t_batch
            pending.t_done = t_batch
            pending.batch_size = len(batch)

        live: List[_Pending] = []
        for pending in batch:
            if pending.expires is not None and t_batch > pending.expires:
                self.metrics.counter("serve.deadline_expired").inc()
                self._reply(
                    pending,
                    api.error_response(
                        pending.request.id,
                        api.DEADLINE_EXPIRED,
                        "deadline-expired",
                        "request outlived its deadline before compute",
                    ),
                    t_batch,
                )
            else:
                live.append(pending)
        if not live:
            return

        try:
            jobs = await self._resolve_jobs(live, t_batch)
            t_compute = loop.time()
            if self._executor is not None:
                results = await loop.run_in_executor(
                    self._executor, _evaluate_jobs, jobs
                )
            else:
                results = _evaluate_jobs(jobs)
            t_done = loop.time()
            self._span(
                "compute",
                t_compute,
                t_done,
                detail=f"points={len(jobs)} batch={len(batch)}",
            )
            self.metrics.counter("serve.compute_points").inc(len(jobs))
            for pending, result in zip(live, results):
                pending.t_compute = t_compute
                pending.t_done = t_done
                self._reply(
                    pending, api.ok_response(pending.request.id, result), t_done
                )
        except Exception as exc:  # noqa: BLE001 - must never wedge clients
            self.metrics.counter("serve.errors").inc(len(live))
            now = loop.time()
            for pending in live:
                if not pending.future.done():
                    self._reply(
                        pending,
                        api.error_response(
                            pending.request.id,
                            api.INTERNAL,
                            "internal-error",
                            f"{type(exc).__name__}: {exc}",
                        ),
                        now,
                    )

    async def _resolve_jobs(
        self, live: List[_Pending], now: float
    ) -> List[_Job]:
        """Resolve calibration once per compute group, preserving order."""
        resolved: Dict[Tuple[Any, ...], Tuple[ModelPlatformParams, str]] = {}
        jobs: List[_Job] = []
        for pending in live:
            query = pending.request.query
            assert query is not None  # predict/sweep always carry one
            group = query.compute_key
            if group not in resolved:
                spec = get_platform(query.platform)
                if query.family != "opal":
                    if query.calibrated:
                        resolved[group] = await self.calibrations.resolve_family(
                            spec, query.family, now, refresh=self.config.refresh
                        )
                    else:
                        from ..workloads import get_family

                        resolved[group] = (
                            get_family(query.family).key_data_params(spec),
                            SOURCE_KEY_DATA,
                        )
                elif query.calibrated:
                    resolved[group] = await self.calibrations.resolve(
                        spec, now, refresh=self.config.refresh
                    )
                else:
                    resolved[group] = (
                        ModelPlatformParams.from_spec(spec),
                        SOURCE_KEY_DATA,
                    )
            params, source = resolved[group]
            jobs.append((pending.request.kind, query, params, source))
        return jobs

    # ------------------------------------------------------------------
    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p95/p99 over every reply latency so far (0 when empty).

        Uses the repo's one nearest-rank rule
        (:func:`repro.obs.query.percentile`), so a store aggregate over
        flight-recorded ``reply_s`` reproduces these numbers exactly.
        """
        return {
            "p50": percentile(self.latencies, 0.50),
            "p95": percentile(self.latencies, 0.95),
            "p99": percentile(self.latencies, 0.99),
        }

    def report(self) -> Dict[str, Any]:
        """Operational snapshot: admission, batching, latency, cache."""
        quantiles = self.latency_quantiles()
        return {
            "admission": self.admission.stats.as_dict(),
            "batches": self.batcher.batches,
            "batched_items": self.batcher.items,
            "mean_occupancy": (
                self.batcher.items / self.batcher.batches
                if self.batcher.batches
                else 0.0
            ),
            "latency": quantiles,
            "calibration": {
                "hits": self.calibrations.hits,
                "misses": self.calibrations.misses,
                "fits": self.calibrations.fits,
                "refreshes": self.calibrations.refreshes,
            },
        }
