"""Typed request/response schema and the stable JSON wire format.

One prediction query answers the paper's Section 4 question — "how fast
would Opal run on platform X with p servers?" — as a service call.  The
wire format is versioned, canonical JSON: objects are encoded with
sorted keys and no whitespace, so two semantically identical responses
are byte-identical, which is what lets the benchmarks and the CI smoke
job diff batched against unbatched serving bit for bit.

Request envelope (one JSON object per request)::

    {"v": 1, "id": "c0-17", "client": "c0", "kind": "predict",
     "arrival": 1.25, "deadline": 0.5,
     "query": {"platform": "j90", "molecule": "medium", "servers": 4,
               "cutoff": 10.0, "update_interval": 1, "steps": 10,
               "calibrated": true}}

``kind`` is one of ``predict`` (single point), ``sweep`` (a server
range), ``platforms`` (catalog listing) or ``ping``.  ``arrival`` is an
optional *virtual* arrival stamp on the client's open-loop clock: when
present, admission control rates the client by it instead of by the
wall clock, which makes load shedding exactly reproducible under the
seeded load generator.  ``deadline`` is a relative latency budget in
seconds; requests that outlive it are dropped before compute with a
504-style error.

Response envelope::

    {"v": 1, "id": "c0-17", "status": 200, "result": {...}}
    {"v": 1, "id": "c0-17", "status": 429, "error": {"reason": "shed:rate"}}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import ServeError

#: Wire format version; bump on any incompatible schema change.
WIRE_VERSION = 1

#: HTTP-style status codes used on the wire.
OK = 200
BAD_REQUEST = 400
NOT_FOUND = 404
SHED = 429
INTERNAL = 500
DEADLINE_EXPIRED = 504

#: Request kinds answered by the service.
KINDS = ("predict", "sweep", "platforms", "ping")

#: Default server range for sweep queries (the paper's 1..7).
DEFAULT_SWEEP_SERVERS: Tuple[int, ...] = tuple(range(1, 8))


def canonical(obj: Any) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace.

    The single rendering used everywhere — cache keys, wire responses,
    benchmark diffs — so equal payloads are equal strings.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Query:
    """One validated what-if query against a calibrated model.

    ``servers`` is a single count for point queries and a tuple of
    counts for sweeps.  ``calibrated=True`` resolves the platform's
    coefficients through the calibration store (running or reusing a
    reduced campaign); ``False`` derives them from the platform's
    Tables 1/2 key data.
    """

    platform: str
    molecule: str
    servers: Union[int, Tuple[int, ...]]
    update_interval: int = 1
    cutoff: Optional[float] = None
    steps: int = 10
    calibrated: bool = False
    #: workload family answering this query; "opal" is the v1 wire
    #: format (family-less queries parse to it unchanged)
    family: str = "opal"
    #: canonicalized family spec params (non-opal families only)
    spec: Optional[Tuple[Tuple[str, Any], ...]] = None

    @property
    def compute_key(self) -> Tuple[Any, ...]:
        """Grouping key: queries sharing it batch into one model eval.

        Everything except the server count — the whole point of the
        micro-batcher is that a batch over one (platform, molecule,
        cutoff, update, steps) cell shares the calibration resolve, the
        model instance and the memoized workload terms.
        """
        return (
            self.platform,
            self.calibrated,
            self.molecule,
            self.cutoff,
            self.update_interval,
            self.steps,
            self.family,
            self.spec,
        )

    def as_dict(self) -> Dict[str, Any]:
        """The query as JSON-able wire data."""
        servers: Any = (
            list(self.servers) if isinstance(self.servers, tuple) else self.servers
        )
        if self.family != "opal":
            return {
                "platform": self.platform,
                "servers": servers,
                "family": self.family,
                "spec": dict(self.spec or ()),
                "calibrated": self.calibrated,
            }
        return {
            "platform": self.platform,
            "molecule": self.molecule,
            "servers": servers,
            "update_interval": self.update_interval,
            "cutoff": self.cutoff,
            "steps": self.steps,
            "calibrated": self.calibrated,
        }


@dataclass(frozen=True)
class Request:
    """One validated request envelope."""

    id: str
    client: str
    kind: str
    query: Optional[Query] = None
    #: virtual arrival stamp on the load generator's clock (seconds)
    arrival: Optional[float] = None
    #: relative latency budget (seconds); None = no deadline
    deadline: Optional[float] = None


def _require(condition: bool, status: int, reason: str, detail: str) -> None:
    if not condition:
        raise ServeError(status, reason, detail)


def _parse_int(value: Any, name: str, minimum: int = 1) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        BAD_REQUEST,
        "invalid-field",
        f"{name} must be an integer, got {value!r}",
    )
    _require(
        value >= minimum,
        BAD_REQUEST,
        "invalid-field",
        f"{name} must be >= {minimum}, got {value!r}",
    )
    return int(value)


#: memoized (kind, canonical(data)) -> Query; bounded, successes only
_QUERY_CACHE: Dict[Tuple[str, str], Query] = {}
_QUERY_CACHE_LIMIT = 1024


def parse_query(data: Any, kind: str) -> Query:
    """Validate raw query data into a :class:`Query` (or raise 400/404).

    Validated queries are memoized on their canonical JSON rendering.
    A serving campaign sends the same few dozen distinct queries tens of
    thousands of times, and element-wise validation of a sweep's
    ``servers`` list is the single most expensive step on the request
    path — far more than the lookup.  :class:`Query` is frozen, so one
    instance is safe to share across requests.  Only successful parses
    are cached; malformed queries re-validate (they are off the hot path
    and their error detail depends on the raw value).
    """
    try:
        cache_key = (kind, canonical(data))
    except (TypeError, ValueError):
        # non-JSON-able input (direct API use); validate uncached
        return _parse_query_uncached(data, kind)
    hit = _QUERY_CACHE.get(cache_key)
    if hit is None:
        hit = _parse_query_uncached(data, kind)
        if len(_QUERY_CACHE) >= _QUERY_CACHE_LIMIT:
            _QUERY_CACHE.clear()
        _QUERY_CACHE[cache_key] = hit
    return hit


def _parse_query_uncached(data: Any, kind: str) -> Query:
    _require(
        isinstance(data, dict),
        BAD_REQUEST,
        "invalid-query",
        f"query must be an object, got {type(data).__name__}",
    )
    family = data.get("family", "opal")
    _require(
        isinstance(family, str) and family != "",
        BAD_REQUEST,
        "invalid-field",
        f"family must be a non-empty string, got {family!r}",
    )
    if family != "opal":
        return _parse_family_query(data, kind, family)
    _require(
        "spec" not in data,
        BAD_REQUEST,
        "invalid-query",
        "field 'spec' applies only to non-opal workload families; set "
        "'family' to a registered family, or use the opal fields "
        "(molecule/cutoff/update_interval/steps) directly",
    )
    unknown = set(data) - {
        "platform",
        "molecule",
        "servers",
        "update_interval",
        "cutoff",
        "steps",
        "calibrated",
        "family",
    }
    _require(
        not unknown,
        BAD_REQUEST,
        "invalid-query",
        f"unknown query field(s): {sorted(unknown)}",
    )
    platform = data.get("platform", "j90")
    molecule = data.get("molecule", "medium")
    _require(
        isinstance(platform, str),
        BAD_REQUEST,
        "invalid-field",
        "platform must be a string",
    )
    _require(
        isinstance(molecule, str),
        BAD_REQUEST,
        "invalid-field",
        "molecule must be a string",
    )
    # resolve names now so a typo costs nothing downstream of admission
    from ..opal.complexes import NAMED_COMPLEXES
    from ..platforms import PLATFORMS

    _require(
        platform in PLATFORMS,
        NOT_FOUND,
        "unknown-platform",
        f"unknown platform {platform!r}; known: {sorted(PLATFORMS)}",
    )
    _require(
        molecule in NAMED_COMPLEXES,
        NOT_FOUND,
        "unknown-molecule",
        f"unknown molecule {molecule!r}; known: {sorted(NAMED_COMPLEXES)}",
    )

    raw_servers = data.get("servers", 1 if kind == "predict" else None)
    servers: Union[int, Tuple[int, ...]]
    if kind == "predict":
        servers = _parse_int(raw_servers, "servers")
    else:
        if raw_servers is None:
            servers = DEFAULT_SWEEP_SERVERS
        else:
            _require(
                isinstance(raw_servers, (list, tuple)) and len(raw_servers) > 0,
                BAD_REQUEST,
                "invalid-field",
                "sweep servers must be a non-empty list of integers",
            )
            servers = tuple(
                _parse_int(p, "servers[]") for p in raw_servers
            )

    cutoff = data.get("cutoff")
    if cutoff is not None:
        _require(
            isinstance(cutoff, (int, float)) and not isinstance(cutoff, bool),
            BAD_REQUEST,
            "invalid-field",
            f"cutoff must be a number or null, got {cutoff!r}",
        )
        _require(
            float(cutoff) > 0,
            BAD_REQUEST,
            "invalid-field",
            "cutoff must be positive (or null for no cutoff)",
        )
        cutoff = float(cutoff)
    calibrated = data.get("calibrated", False)
    _require(
        isinstance(calibrated, bool),
        BAD_REQUEST,
        "invalid-field",
        "calibrated must be a boolean",
    )
    return Query(
        platform=platform,
        molecule=molecule,
        servers=servers,
        update_interval=_parse_int(data.get("update_interval", 1), "update_interval"),
        cutoff=cutoff,
        steps=_parse_int(data.get("steps", 10), "steps"),
        calibrated=calibrated,
    )


def _parse_family_query(data: Any, kind: str, family: str) -> Query:
    """Validate a non-opal family query (the ``family``/``spec`` form).

    Spec-level failures surface as
    :class:`~repro.errors.WorkloadError` from the workload subsystem's
    validator and are mapped here to 400 envelopes with the validator's
    actionable field/value detail.
    """
    from ..errors import WorkloadError

    opal_only = sorted(
        set(data) & {"molecule", "cutoff", "update_interval", "steps"}
    )
    _require(
        not opal_only,
        BAD_REQUEST,
        "invalid-query",
        f"field(s) {opal_only} apply only to the opal family; a "
        f"{family!r} query takes its parameters in the 'spec' object",
    )
    unknown = set(data) - {"platform", "servers", "family", "spec", "calibrated"}
    _require(
        not unknown,
        BAD_REQUEST,
        "invalid-query",
        f"unknown query field(s): {sorted(unknown)}",
    )
    platform = data.get("platform", "j90")
    _require(
        isinstance(platform, str),
        BAD_REQUEST,
        "invalid-field",
        "platform must be a string",
    )
    from ..platforms import PLATFORMS

    _require(
        platform in PLATFORMS,
        NOT_FOUND,
        "unknown-platform",
        f"unknown platform {platform!r}; known: {sorted(PLATFORMS)}",
    )
    raw_spec = data.get("spec", {})
    _require(
        isinstance(raw_spec, dict),
        BAD_REQUEST,
        "invalid-field",
        f"spec must be an object of {family} parameters, "
        f"got {type(raw_spec).__name__}",
    )
    from ..workloads import get_family

    try:
        spec = get_family(family).spec_from_params(raw_spec)
    except WorkloadError as exc:
        raise ServeError(BAD_REQUEST, "invalid-workload", str(exc)) from exc

    raw_servers = data.get("servers", 1 if kind == "predict" else None)
    servers: Union[int, Tuple[int, ...]]
    if kind == "predict":
        servers = _parse_int(raw_servers, "servers")
    else:
        if raw_servers is None:
            servers = DEFAULT_SWEEP_SERVERS
        else:
            _require(
                isinstance(raw_servers, (list, tuple)) and len(raw_servers) > 0,
                BAD_REQUEST,
                "invalid-field",
                "sweep servers must be a non-empty list of integers",
            )
            servers = tuple(_parse_int(p, "servers[]") for p in raw_servers)
    calibrated = data.get("calibrated", False)
    _require(
        isinstance(calibrated, bool),
        BAD_REQUEST,
        "invalid-field",
        "calibrated must be a boolean",
    )
    return Query(
        platform=platform,
        molecule="",
        servers=servers,
        calibrated=calibrated,
        family=family,
        spec=spec.params,
    )


def parse_request(envelope: Any) -> Request:
    """Validate one decoded request envelope (or raise a ServeError)."""
    _require(
        isinstance(envelope, dict),
        BAD_REQUEST,
        "invalid-request",
        f"request must be a JSON object, got {type(envelope).__name__}",
    )
    version = envelope.get("v", WIRE_VERSION)
    _require(
        version == WIRE_VERSION,
        BAD_REQUEST,
        "unsupported-version",
        f"wire version {version!r} is not supported (want {WIRE_VERSION})",
    )
    kind = envelope.get("kind")
    _require(
        kind in KINDS,
        BAD_REQUEST,
        "unknown-kind",
        f"kind must be one of {KINDS}, got {kind!r}",
    )
    req_id = envelope.get("id", "")
    client = envelope.get("client", "anonymous")
    _require(
        isinstance(req_id, str), BAD_REQUEST, "invalid-field", "id must be a string"
    )
    _require(
        isinstance(client, str) and client != "",
        BAD_REQUEST,
        "invalid-field",
        "client must be a non-empty string",
    )
    arrival = envelope.get("arrival")
    if arrival is not None:
        _require(
            isinstance(arrival, (int, float)) and not isinstance(arrival, bool),
            BAD_REQUEST,
            "invalid-field",
            "arrival must be a number",
        )
        arrival = float(arrival)
    deadline = envelope.get("deadline")
    if deadline is not None:
        _require(
            isinstance(deadline, (int, float))
            and not isinstance(deadline, bool)
            and float(deadline) > 0,
            BAD_REQUEST,
            "invalid-field",
            "deadline must be a positive number of seconds",
        )
        deadline = float(deadline)
    query = None
    if kind in ("predict", "sweep"):
        query = parse_query(envelope.get("query", {}), kind)
    return Request(
        id=req_id,
        client=client,
        kind=kind,
        query=query,
        arrival=arrival,
        deadline=deadline,
    )


def ok_response(req_id: str, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success envelope."""
    return {"v": WIRE_VERSION, "id": req_id, "status": OK, "result": result}


def error_response(
    req_id: str, status: int, reason: str, detail: str = ""
) -> Dict[str, Any]:
    """An error envelope with a machine-readable reason."""
    error: Dict[str, Any] = {"reason": reason}
    if detail and detail != reason:
        error["detail"] = detail
    return {"v": WIRE_VERSION, "id": req_id, "status": status, "error": error}


def is_ok(response: Dict[str, Any]) -> bool:
    """Whether a response envelope reports success."""
    return response.get("status") == OK
