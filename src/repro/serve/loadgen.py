"""Deterministic load generator for the prediction service.

Open-loop arrivals: each simulated client draws exponential
inter-arrival gaps from its own seeded stream
(``default_rng([seed, client_index])``) and stamps every request
envelope with the resulting *virtual* arrival time.  The service rates
token buckets by those stamps, so whether a given request is admitted
or shed is a pure function of ``(seed, spec, admission config)`` — the
same campaign replayed on a loaded laptop sheds the exact same request
ids.

``run_open_loop(pace=False)`` submits the whole schedule as fast as the
event loop accepts it (arrival stamps still drive admission): this is
the throughput-benchmark mode, where wall-clock pacing would only add
noise.  ``pace=True`` sleeps until each virtual arrival — the latency
mode, where each request's wall latency is meaningful.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

import numpy as np

from . import api

#: An async callable serving one envelope (ServeClient.request etc.).
SubmitFn = Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible workload: who asks what, how fast.

    ``rate`` is each client's mean request rate (exponential arrivals);
    ``sweep_fraction`` of requests are server sweeps, the rest single
    points.  All randomness derives from ``seed``.
    """

    clients: int = 8
    requests_per_client: int = 20
    rate: float = 100.0
    seed: int = 0
    sweep_fraction: float = 0.0
    molecules: Tuple[str, ...] = ("small", "medium", "large")
    platforms: Tuple[str, ...] = ("j90", "t3e", "fast-cops")
    max_servers: int = 7
    calibrated: bool = False
    deadline: Optional[float] = None
    #: weighted draw over workload families, e.g. ``{"opal": 0.5,
    #: "collective": 0.5}``; ``None`` (the default) keeps the classic
    #: all-opal schedule byte-identical (no extra random draws)
    family_mix: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= self.sweep_fraction <= 1.0:
            raise ValueError("sweep_fraction must be in [0, 1]")
        if self.family_mix is not None:
            from ..workloads import family_names

            if isinstance(self.family_mix, dict):
                object.__setattr__(
                    self,
                    "family_mix",
                    tuple(sorted(self.family_mix.items())),
                )
            else:
                object.__setattr__(
                    self,
                    "family_mix",
                    tuple(sorted((str(k), float(w)) for k, w in self.family_mix)),
                )
            if not self.family_mix:
                raise ValueError("family_mix must name at least one family")
            known = set(family_names())
            for name, weight in self.family_mix:
                if name not in known:
                    raise ValueError(
                        f"family_mix names unknown family {name!r}; "
                        f"registered: {sorted(known)}"
                    )
                if not weight > 0:
                    raise ValueError(
                        f"family_mix weight for {name!r} must be positive, "
                        f"got {weight!r}"
                    )


def build_schedule(spec: LoadSpec) -> List[Dict[str, Any]]:
    """The workload as stamped request envelopes in global arrival order.

    Envelope ids are ``c<client>-<seq>``; within one client, ``seq``
    and the ``arrival`` stamp increase together, so the global sort by
    ``(arrival, client, seq)`` preserves every client's submission
    order — the property per-client token buckets need for determinism.
    """
    mix_names: List[str] = []
    mix_probs: Optional[np.ndarray] = None
    spec_pools: Dict[str, List[Dict[str, Any]]] = {}
    if spec.family_mix is not None:
        from ..workloads import get_family

        mix_names = [name for name, _ in spec.family_mix]
        weights = np.array([w for _, w in spec.family_mix], dtype=float)
        mix_probs = weights / weights.sum()
        for name in mix_names:
            if name != "opal":
                spec_pools[name] = [
                    dict(p) for p in get_family(name).example_params()
                ]

    envelopes: List[Tuple[float, int, int, Dict[str, Any]]] = []
    for ci in range(spec.clients):
        rng = np.random.default_rng([spec.seed, ci])
        clock = 0.0
        for seq in range(spec.requests_per_client):
            clock += float(rng.exponential(1.0 / spec.rate))
            is_sweep = bool(rng.random() < spec.sweep_fraction)
            family = "opal"
            if mix_probs is not None:
                family = mix_names[int(rng.choice(len(mix_names), p=mix_probs))]
            if family == "opal":
                query: Dict[str, Any] = {
                    "platform": str(rng.choice(list(spec.platforms))),
                    "molecule": str(rng.choice(list(spec.molecules))),
                    "update_interval": int(rng.choice([1, 10])),
                    "cutoff": 10.0 if bool(rng.random() < 0.5) else None,
                    "calibrated": spec.calibrated,
                }
            else:
                pool = spec_pools[family]
                query = {
                    "platform": str(rng.choice(list(spec.platforms))),
                    "family": family,
                    "spec": dict(pool[int(rng.integers(0, len(pool)))]),
                    "calibrated": spec.calibrated,
                }
            if is_sweep:
                query["servers"] = list(range(1, spec.max_servers + 1))
            else:
                query["servers"] = int(rng.integers(1, spec.max_servers + 1))
            envelope: Dict[str, Any] = {
                "v": api.WIRE_VERSION,
                "id": f"c{ci}-{seq}",
                "client": f"c{ci}",
                "kind": "sweep" if is_sweep else "predict",
                "arrival": clock,
                "query": query,
            }
            if spec.deadline is not None:
                envelope["deadline"] = spec.deadline
            envelopes.append((clock, ci, seq, envelope))
    envelopes.sort(key=lambda item: (item[0], item[1], item[2]))
    return [envelope for _, _, _, envelope in envelopes]


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run."""

    sent: int = 0
    ok: int = 0
    shed_rate: int = 0
    shed_queue: int = 0
    #: requests shed because the service/fleet was draining for shutdown
    shed_drain: int = 0
    expired: int = 0
    errors: int = 0
    #: wall-clock duration of the whole run (seconds)
    wall: float = 0.0
    #: client-side wall latency per *answered* request (submit order)
    latencies: List[float] = field(default_factory=list)
    #: response envelopes keyed by request id
    responses: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: per-worker routing tallies, filled by the fleet bench
    #: (``{"w0": {"forwarded": ..., "completed": ..., ...}}``)
    per_worker: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Served (non-shed) responses per wall-clock second."""
        return self.ok / self.wall if self.wall > 0 else 0.0

    def shed_ids(self) -> List[str]:
        """Sorted ids of every request shed by admission control."""
        return sorted(
            rid
            for rid, response in self.responses.items()
            if response.get("status") == api.SHED
        )

    def canonical_responses(self) -> str:
        """All responses in id order as one canonical JSON string.

        The bit-identity oracle: two runs served the same answers iff
        these strings are equal (ids are unique per schedule, and the
        encoding is canonical).
        """
        ordered = [self.responses[rid] for rid in sorted(self.responses)]
        return api.canonical(ordered)

    def summary(self) -> Dict[str, Any]:
        """The report as JSON-able data (without raw responses)."""
        summary: Dict[str, Any] = {
            "sent": self.sent,
            "ok": self.ok,
            "shed_rate": self.shed_rate,
            "shed_queue": self.shed_queue,
            "shed_drain": self.shed_drain,
            "expired": self.expired,
            "errors": self.errors,
            "wall_s": self.wall,
            "throughput_rps": self.throughput,
        }
        if self.per_worker:
            summary["per_worker"] = self.per_worker
        return summary

    def ingest_into(self, store: Any, meta: Optional[Dict[str, Any]] = None) -> str:
        """Append this run's client-side latencies to a telemetry store.

        One ``loadgen`` segment: per-answered-request wall latencies in
        submit order, with :meth:`summary` riding in the segment meta.
        Returns the new segment id.
        """
        from ..obs.ingest import ingest_loadgen_report

        return ingest_loadgen_report(store, self, meta=meta)

    def _account(self, envelope: Dict[str, Any], response: Dict[str, Any]) -> None:
        """Classify one response into the counters."""
        self.responses[envelope["id"]] = response
        status = response.get("status")
        if status == api.OK:
            self.ok += 1
        elif status == api.SHED:
            reason = response.get("error", {}).get("reason", "")
            if reason == "shed:queue":
                self.shed_queue += 1
            elif reason == "shed:drain":
                self.shed_drain += 1
            else:
                self.shed_rate += 1
        elif status == api.DEADLINE_EXPIRED:
            self.expired += 1
        else:
            self.errors += 1


async def run_open_loop(
    submit: SubmitFn,
    schedule: List[Dict[str, Any]],
    pace: bool = False,
    time_scale: float = 1.0,
    abort_after: Optional[int] = None,
    abort: Optional[Callable[[], Awaitable[None]]] = None,
) -> LoadgenReport:
    """Drive one schedule through ``submit``; returns the tally.

    With ``pace=False`` every request is task-spawned in schedule order
    with no awaits in between, so the service sees the admission
    sequence the schedule dictates.  With ``pace=True`` the generator
    sleeps until each request's virtual arrival (divided by
    ``time_scale`` — 2.0 replays twice as fast), making client-side
    latencies meaningful.

    ``abort_after``/``abort`` is the fault-injection tap for chaos
    campaigns: once exactly ``abort_after`` requests have been
    submitted, the ``abort`` coroutine fires (kill a worker, stall a
    link, ...) before any further submissions — the same schedule
    position every run, so the fault lands deterministically.
    """
    loop = asyncio.get_running_loop()
    report = LoadgenReport()
    t0 = loop.time()

    async def fire(envelope: Dict[str, Any]) -> None:
        started = loop.time()
        response = await submit(envelope)
        report.latencies.append(loop.time() - started)
        report._account(envelope, response)

    tasks: List["asyncio.Task[None]"] = []
    for envelope in schedule:
        if pace:
            due = t0 + envelope["arrival"] / time_scale
            delay = due - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        tasks.append(loop.create_task(fire(envelope)))
        report.sent += 1
        if abort is not None and report.sent == abort_after:
            await abort()
    if tasks:
        await asyncio.gather(*tasks)
    report.wall = loop.time() - t0
    return report
