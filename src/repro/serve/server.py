"""Transports: asyncio TCP server (NDJSON + HTTP) and clients.

The network face of :class:`~repro.serve.service.PredictionService`,
hand-rolled on :func:`asyncio.start_server` — no ``http.server``, no
threads.  One listener speaks two protocols, sniffed from the first
line of each connection:

* **NDJSON** (the native protocol): one request envelope per line, one
  response envelope per line, pipelined — a client may write many
  requests before reading; responses carry the request's ``id`` and
  may arrive out of submission order (batching reorders).
* **HTTP/1.1** (curl-friendly): ``POST /v1/query`` with a JSON
  envelope body, ``GET /healthz`` for liveness, ``GET /v1/platforms``
  for the catalog.  Connections are ``Connection: close``.

:class:`ServeClient` is the in-process client — it submits directly to
the service and is what the load generator and most tests use;
:class:`TcpServeClient` speaks NDJSON over a real socket.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from . import api
from .service import PredictionService

#: Largest accepted request line/body in bytes (anti-foot-gun bound).
MAX_REQUEST_BYTES = 1 << 20


class ServeClient:
    """In-process client: zero-copy path straight into the service."""

    def __init__(self, service: PredictionService) -> None:
        self.service = service

    async def request(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one envelope and await its response."""
        return await self.service.submit(envelope)

    async def ping(self) -> bool:
        """Liveness probe."""
        response = await self.request({"kind": "ping", "id": "ping"})
        return api.is_ok(response)


class TcpServeClient:
    """NDJSON client over a real TCP connection."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        """Open the connection (idempotent)."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            self._writer.close()
            await self._writer.wait_closed()
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "TcpServeClient":
        """Async context manager: connect on enter."""
        await self.connect()
        return self

    async def __aexit__(self, *exc: object) -> None:
        """Async context manager: close on exit."""
        await self.close()

    async def request(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one envelope and await one response line."""
        await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(api.canonical(envelope).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)


class ServeServer:
    """The asyncio TCP listener wrapping one service instance."""

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    @property
    def bound_port(self) -> int:
        """The actually bound port (resolves ``port=0`` after start)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Start the service and begin listening."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def stop(self) -> None:
        """Stop listening, drain in-flight work, stop the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def __aenter__(self) -> "ServeServer":
        """Async context manager: start on enter."""
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        """Async context manager: stop on exit."""
        await self.stop()

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's foreground mode)."""
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Sniff the protocol from the first line and dispatch."""
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith((b"POST ", b"GET ", b"HEAD ")):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_ndjson(first, reader, writer)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass

    # -- NDJSON ---------------------------------------------------------
    async def _handle_ndjson(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One envelope per line; responses written as they complete."""
        tasks: List["asyncio.Task[None]"] = []
        lock = asyncio.Lock()

        async def answer(line: bytes) -> None:
            try:
                envelope = json.loads(line)
            except json.JSONDecodeError:
                response = api.error_response(
                    "", api.BAD_REQUEST, "invalid-json", "unparseable request line"
                )
            else:
                response = await self.service.submit(envelope)
            async with lock:  # one response line at a time
                writer.write(api.canonical(response).encode("utf-8") + b"\n")
                await writer.drain()

        line = first
        while line:
            stripped = line.strip()
            if stripped:
                if len(stripped) > MAX_REQUEST_BYTES:
                    break
                tasks.append(asyncio.get_running_loop().create_task(answer(stripped)))
            line = await reader.readline()
        if tasks:
            await asyncio.gather(*tasks)

    # -- HTTP -----------------------------------------------------------
    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP/1.1: one request, one JSON response, close."""
        try:
            method, target, _version = first.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._http_reply(
                writer,
                api.BAD_REQUEST,
                api.error_response("", api.BAD_REQUEST, "bad-request-line"),
            )
            return
        headers = await self._read_headers(reader)
        if method == "GET" and target == "/healthz":
            await self._http_reply(writer, api.OK, {"status": "ok"})
            return
        if method == "GET" and target == "/v1/platforms":
            response = await self.service.submit(
                {"kind": "platforms", "id": "http"}
            )
            await self._http_reply(writer, response["status"], response)
            return
        if method == "POST" and target == "/v1/query":
            length = int(headers.get("content-length", "0"))
            if length <= 0 or length > MAX_REQUEST_BYTES:
                await self._http_reply(
                    writer,
                    api.BAD_REQUEST,
                    api.error_response(
                        "", api.BAD_REQUEST, "invalid-length",
                        "POST /v1/query needs a JSON body with Content-Length",
                    ),
                )
                return
            body = await reader.readexactly(length)
            try:
                envelope = json.loads(body)
            except json.JSONDecodeError:
                await self._http_reply(
                    writer,
                    api.BAD_REQUEST,
                    api.error_response("", api.BAD_REQUEST, "invalid-json"),
                )
                return
            response = await self.service.submit(envelope)
            await self._http_reply(writer, response["status"], response)
            return
        await self._http_reply(
            writer,
            api.NOT_FOUND,
            api.error_response(
                "", api.NOT_FOUND, "unknown-endpoint",
                f"no handler for {method} {target}",
            ),
        )

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
        """Read HTTP headers up to the blank line (names lowercased)."""
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _http_reply(
        writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        """Write one JSON response and flush."""
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   429: "Too Many Requests", 500: "Internal Server Error",
                   504: "Gateway Timeout"}
        body = api.canonical(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


async def http_get(host: str, port: int, path: str) -> Tuple[int, Dict[str, Any]]:
    """Tiny HTTP GET helper (tests and the CLI's health probe)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        body = await reader.readexactly(length) if length else b"{}"
        return status, json.loads(body)
    finally:
        writer.close()
        await writer.wait_closed()


async def http_post(
    host: str, port: int, path: str, payload: Dict[str, Any]
) -> Tuple[int, Dict[str, Any]]:
    """Tiny HTTP POST helper (tests and ``repro serve query --http``)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = api.canonical(payload).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        response = await reader.readexactly(length) if length else b"{}"
        return status, json.loads(response)
    finally:
        writer.close()
        await writer.wait_closed()
