"""Dynamic micro-batching of admitted requests.

Concurrent single-point queries are individually tiny — one model
evaluation each — but they arrive in bursts, and each dispatch pays
fixed costs (calibration lookup, model construction, executor handoff)
that dwarf the per-point arithmetic.  The micro-batcher coalesces
whatever is queued into one batch per dispatch, bounded by
``max_batch``, and when the queue runs dry mid-burst it lingers up to
``max_linger`` seconds for stragglers before dispatching a partial
batch.  ``max_batch=1`` degenerates to sequential serving through the
identical code path, which is what the throughput benchmark compares
against.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List

#: Queue sentinel that tells the batch loop to drain and exit.
_STOP = object()


class MicroBatcher:
    """Coalesces queued work items into bounded batches.

    ``dispatch`` is an async callable receiving a non-empty list of
    items; it is awaited once per batch, never concurrently with
    itself, so downstream code needs no locking.  Items are dispatched
    in arrival order within and across batches.
    """

    def __init__(
        self,
        dispatch: Callable[[List[Any]], Awaitable[None]],
        max_batch: int = 64,
        max_linger: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger!r}")
        self.dispatch = dispatch
        self.max_batch = max_batch
        self.max_linger = max_linger
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self.batches = 0
        self.items = 0
        self._task: "asyncio.Task[None] | None" = None

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Items currently queued and not yet picked into a batch."""
        return self.queue.qsize()

    def put(self, item: Any) -> None:
        """Enqueue one work item (non-blocking; the queue is unbounded
        here — admission control bounds it upstream)."""
        self.queue.put_nowait(item)

    def start(self) -> None:
        """Start the batch loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain remaining items, dispatch them, and stop the loop.

        Items that race the stop sentinel — ``put()`` after the sentinel
        was enqueued — are *not* dispatched; the caller must collect
        them with :meth:`drain_pending` and answer them itself, or their
        futures hang forever.
        """
        if self._task is None:
            return
        self.queue.put_nowait(_STOP)
        await self._task
        self._task = None

    def drain_pending(self) -> List[Any]:
        """Remove and return every item still queued after :meth:`stop`.

        The batch loop dispatches everything *ahead* of the stop
        sentinel, but an item enqueued concurrently with ``stop()`` can
        land behind it and would otherwise never be picked into a
        batch.  Call this after ``stop()`` returns and answer the
        leftovers deterministically (the service sheds them with a 429
        ``shed:drain``).
        """
        leftovers: List[Any] = []
        while True:
            try:
                item = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return leftovers
            if item is not _STOP:
                leftovers.append(item)

    # ------------------------------------------------------------------
    async def _fill(self, batch: List[Any]) -> bool:
        """Fill ``batch`` up to ``max_batch``; False once _STOP is seen."""
        item = await self.queue.get()
        if item is _STOP:
            return False
        batch.append(item)
        # drain whatever is already queued, without yielding
        while len(batch) < self.max_batch:
            try:
                item = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _STOP:
                return False
            batch.append(item)
        # linger briefly for stragglers to amortize the dispatch cost
        if len(batch) < self.max_batch and self.max_linger > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.max_linger
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self.queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    return False
                batch.append(item)
        return True

    async def _run(self) -> None:
        """The batch loop: fill, dispatch, repeat until stopped."""
        running = True
        while running:
            batch: List[Any] = []
            running = await self._fill(batch)
            if batch:
                self.batches += 1
                self.items += len(batch)
                await self.dispatch(batch)
