"""Fleet front door: consistent-hash routing with health-checked failover.

:class:`FleetRouter` exposes the exact ``start()/stop()/submit()``
surface of :class:`~repro.serve.service.PredictionService`, so the
existing transports (:class:`~repro.serve.server.ServeServer`) and the
load generator drive a fleet without changes.  Behind that surface one
request flows: fleet-wide admission (the single-process token buckets
lifted to the front door) → consistent-hash shard by compute cell
(:mod:`repro.serve.hashring`) → forward over a pipelined worker link →
retry with capped jittered exponential backoff against surviving
workers on timeout or connection loss.

Robustness semantics reuse the Sciddle middleware vocabulary
(:mod:`repro.sciddle.resilient`): :class:`RetryPolicy` bounds every
forward with a deadline and caps the retransmission budget, and
:class:`ServerHealth` ostracizes a worker after
``death_threshold`` consecutive timeouts (a torn connection is an
immediate death).  Every serve query is idempotent — responses are
pure functions of the query — so retrying against a different worker
returns byte-identical answers, which is the fleet's bit-identity
guarantee (docs/FLEET.md).

Death fires the ring rebalance implicitly: the dead slot's virtual
points stay on the ring but :meth:`HashRing.owner` skips them, so only
its keys move, each to the next live successor.  With a ``respawn_fn``
the router supervises recovery — the respawned incarnation keeps its
slot id, reclaims its exact ring points, and (with a shared
calibration ``cache_dir``) reloads calibrations warm.

Observability: per-worker ``serve.fleet.*`` counters, router spans on
the ``fleet`` process, and one per-request row in the ``fleet``
dataset of a :class:`~repro.obs.store.TelemetryStore` —
SLO-compatible columns (``t_admit``/``status``/``reply_s``/``depth``)
plus the worker slot and attempt count, so ``obs slo --dataset fleet``
gates a chaos burst end to end.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ServeError
from ..obs.metrics import MetricsRegistry
from ..obs.session import ObsSession
from ..sciddle.resilient import RetryPolicy, ServerHealth
from . import api
from .admission import AdmissionController
from .flight import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_SHED_DRAIN,
    STATUS_SHED_QUEUE,
    STATUS_SHED_RATE,
)
from .hashring import HashRing
from .service import platform_catalog

#: Span process name for every router-side span.
FLEET_PROC = "fleet"

#: Sentinel worker column value for requests never forwarded.
NO_WORKER = -1

#: Column layout of one router flight row == the ``fleet`` dataset.
#: The first four are what ``evaluate_slo(dataset="fleet")`` scans.
FLEET_FLOAT_COLUMNS = ("t_admit", "admit_us", "reply_s")
FLEET_INT_COLUMNS = ("depth", "status", "worker", "attempts")
FLEET_COLUMNS = FLEET_FLOAT_COLUMNS + FLEET_INT_COLUMNS


def _response_status_code(response: Dict[str, Any]) -> int:
    """Map a response envelope onto the flight-recorder status codes."""
    status = response.get("status")
    if status == api.OK:
        return STATUS_OK
    if status == api.DEADLINE_EXPIRED:
        return STATUS_EXPIRED
    if status == api.SHED:
        reason = response.get("error", {}).get("reason", "")
        if reason == "shed:queue":
            return STATUS_SHED_QUEUE
        if reason == "shed:drain":
            return STATUS_SHED_DRAIN
        return STATUS_SHED_RATE
    return STATUS_ERROR


class FleetRecorder:
    """Single-writer per-request router telemetry (``fleet`` dataset).

    The router records from the event-loop thread only; rows buffer in
    memory and flush as one segment at drain/stop (the same quiescent
    -point contract as :class:`~repro.serve.flight.FlightRecorder`).
    """

    def __init__(self, store: Optional[Any] = None, dataset: str = "fleet") -> None:
        self.store = store
        self.dataset = dataset
        self._rows: List[Tuple[Any, ...]] = []

    def record(
        self,
        t_admit: float,
        admit_us: float,
        reply_s: float,
        depth: int,
        status: int,
        worker: int,
        attempts: int,
    ) -> None:
        """Record one routed (or shed) request."""
        self._rows.append(
            (t_admit, admit_us, reply_s, depth, status, worker, attempts)
        )

    def __len__(self) -> int:
        return len(self._rows)

    def flush_sync(self) -> Optional[str]:
        """Append buffered rows as one segment; returns the segment id."""
        if self.store is None or not self._rows:
            return None
        rows = self._rows
        self._rows = []
        columns: Dict[str, np.ndarray] = {}
        split = len(FLEET_FLOAT_COLUMNS)
        for j, name in enumerate(FLEET_FLOAT_COLUMNS):
            columns[name] = np.array([r[j] for r in rows], dtype=np.float64)
        for j, name in enumerate(FLEET_INT_COLUMNS):
            columns[name] = np.array([r[split + j] for r in rows], dtype=np.int64)
        segment: str = self.store.append(
            self.dataset, columns, meta={"source": "fleet-router"}
        )
        return segment

    async def flush(self) -> Optional[str]:
        """Flush off the event loop (blocking store I/O stays off-loop)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.flush_sync)


@dataclass
class WorkerStats:
    """Per-worker routing tallies for the fleet report."""

    forwarded: int = 0
    completed: int = 0
    retried: int = 0
    failed: int = 0
    shed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-able tally row."""
        return {
            "forwarded": self.forwarded,
            "completed": self.completed,
            "retried": self.retried,
            "failed": self.failed,
            "shed": self.shed,
        }


@dataclass(frozen=True)
class FleetConfig:
    """Tunable knobs of the fleet front door.

    Admission mirrors :class:`~repro.serve.service.ServeConfig` but
    rates the *fleet-wide* ingress (workers behind the router run wide
    open — the front door is the single backpressure tier).  ``policy``
    reuses the Sciddle retry vocabulary: per-forward timeout, capped
    jittered exponential backoff, ostracism threshold.
    """

    replicas: int = 64
    rate: float = 200.0
    burst: int = 50
    max_queue_depth: int = 1024
    #: seconds between heartbeat ping rounds (0 disables the prober)
    heartbeat: float = 0.25
    #: seed of the backoff-jitter stream (reproducible retry schedules)
    seed: int = 0
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            timeout=5.0,
            max_retries=4,
            backoff_base=0.01,
            backoff_cap=0.25,
            death_threshold=3,
        )
    )


class InProcessWorker:
    """A fleet worker backed by an in-process service, with chaos taps.

    The unit-test and single-host bench face of the worker link
    protocol: :meth:`crash` makes every call (and any in-flight call)
    raise :class:`ConnectionError`, :meth:`stall` makes calls hang
    until the router's forward timeout fires.  Both are deterministic —
    they flip at an await point the test controls.
    """

    def __init__(self, service: Any, name: str = "worker") -> None:
        self.service = service
        self.name = name
        self._crashed = asyncio.Event()
        self._stalled = asyncio.Event()

    # -- chaos taps -----------------------------------------------------
    def crash(self) -> None:
        """Simulate a process crash: fail in-flight and future calls."""
        self._crashed.set()

    def stall(self) -> None:
        """Simulate a wedged worker: calls hang until crashed/cancelled."""
        self._stalled.set()

    @property
    def alive(self) -> bool:
        """Whether the link still accepts calls."""
        return not self._crashed.is_set()

    # -- WorkerClient surface -------------------------------------------
    async def request(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Forward one envelope (router wraps this in ``wait_for``)."""
        return await self._roundtrip(envelope)

    async def ping(self) -> bool:
        """Heartbeat probe (router wraps this in ``wait_for``)."""
        response = await self._roundtrip(
            {"kind": "ping", "id": "hb", "client": "router"}
        )
        return api.is_ok(response)

    async def close(self) -> None:
        """Nothing to release for an in-process worker."""

    async def _roundtrip(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        if self._crashed.is_set():
            raise ConnectionError(f"{self.name} crashed")
        if self._stalled.is_set():
            # hang exactly like a wedged process: until the crash tap
            # fires or the router's wait_for cancels us
            await self._crashed.wait()
            raise ConnectionError(f"{self.name} crashed")
        submit = asyncio.ensure_future(self.service.submit(dict(envelope)))
        crashed = asyncio.ensure_future(self._crashed.wait())
        try:
            done, _pending = await asyncio.wait(
                {submit, crashed}, return_when=asyncio.FIRST_COMPLETED
            )
            if submit in done:
                return dict(await submit)
            raise ConnectionError(f"{self.name} crashed mid-request")
        finally:
            crashed.cancel()
            if not submit.done():
                submit.cancel()


class TcpWorkerClient:
    """Pipelined NDJSON link from the router to one worker process.

    Unlike :class:`~repro.serve.server.TcpServeClient` (one write, one
    read — strictly sequential), this link multiplexes: requests are
    written with a link-local id (``f<seq>``), a single reader task
    resolves each reply line to its waiter, and the original envelope
    id is restored before the response returns — so concurrent
    forwards to one worker need one socket and survive the worker's
    out-of-order (batched) replies.  EOF or reset fails every pending
    waiter with :class:`ConnectionError`, which the router treats as a
    worker death.
    """

    def __init__(
        self, host: str, port: int, connect_timeout: float = 10.0
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._seq = 0
        self._closed = False

    @property
    def alive(self) -> bool:
        """Whether the link is connected and the reader loop is live."""
        return self._writer is not None and not self._closed

    async def connect(self) -> None:
        """Open the socket and start the reply reader (idempotent)."""
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.connect_timeout
        )
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies()
        )

    async def _read_replies(self) -> None:
        """Resolve reply lines to their waiters until EOF/reset."""
        assert self._reader is not None
        try:
            while True:
                # deliberately unbounded: the reader loop waits for ANY
                # reply; per-request bounds live in FleetRouter._forward
                line = await self._reader.readline()  # simlint: disable=R502
                if not line:
                    break
                try:
                    reply = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line; its waiter fails at link death
                waiter = self._pending.pop(str(reply.get("id", "")), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(reply)
        except (ConnectionError, OSError):
            pass
        finally:
            self._closed = True
            for waiter in self._pending.values():
                if not waiter.done():
                    waiter.set_exception(
                        ConnectionError(
                            f"worker link {self.host}:{self.port} lost"
                        )
                    )
            self._pending.clear()

    async def request(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Forward one envelope (router wraps this in ``wait_for``)."""
        return await self._roundtrip(envelope)

    async def ping(self) -> bool:
        """Heartbeat probe (router wraps this in ``wait_for``)."""
        response = await self._roundtrip(
            {"kind": "ping", "id": "hb", "client": "router"}
        )
        return api.is_ok(response)

    async def _roundtrip(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        if not self.alive:
            raise ConnectionError(
                f"worker link {self.host}:{self.port} is down"
            )
        assert self._writer is not None
        if self._writer.transport.is_closing():
            # the socket died but the reader loop hasn't seen EOF yet;
            # failing here keeps asyncio from logging every dead write
            raise ConnectionError(
                f"worker link {self.host}:{self.port} is closing"
            )
        self._seq += 1
        forward_id = f"f{self._seq}"
        forwarded = dict(envelope)
        forwarded["id"] = forward_id
        waiter: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[forward_id] = waiter
        try:
            self._writer.write(api.canonical(forwarded).encode("utf-8") + b"\n")
            await self._writer.drain()
            reply = await waiter
        finally:
            self._pending.pop(forward_id, None)
        response = dict(reply)
        response["id"] = str(envelope.get("id", ""))
        return response

    async def close(self) -> None:
        """Stop the reader and close the socket (idempotent)."""
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None


#: A supervisor hook: given a dead slot, spawn a fresh worker and
#: return its connected client (see ServeFleet._respawn).
RespawnFn = Callable[[int], Awaitable[Any]]


class FleetRouter:
    """Consistent-hash front door over N health-checked workers.

    ``workers`` maps slot id -> worker client (anything with the
    ``request/ping/close`` surface).  The router owns admission,
    routing, retries, health, respawn supervision and drain; it is a
    drop-in ``service`` for :class:`~repro.serve.server.ServeServer`.
    """

    def __init__(
        self,
        workers: Mapping[int, Any],
        config: Optional[FleetConfig] = None,
        obs: Optional[ObsSession] = None,
        store: Optional[Any] = None,
        respawn_fn: Optional[RespawnFn] = None,
    ) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        self.workers: Dict[int, Any] = dict(workers)
        self.config = config or FleetConfig()
        self.policy = self.config.policy
        self.obs = obs
        self.respawn_fn = respawn_fn
        self.metrics: MetricsRegistry = (
            obs.metrics if obs is not None else MetricsRegistry()
        )
        self.ring = HashRing(self.workers, replicas=self.config.replicas)
        self.health = ServerHealth(self.policy.death_threshold)
        self.health.on_death(self._on_death)
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            rate=self.config.rate,
            burst=self.config.burst,
        )
        self.records = FleetRecorder(store=store)
        self.stats: Dict[int, WorkerStats] = {
            slot: WorkerStats() for slot in self.workers
        }
        #: raw reply latencies in seconds, mirroring PredictionService
        self.latencies: List[float] = []
        self._rng = np.random.default_rng([self.config.seed, 1])
        self._inflight = 0
        self._drain_waiters: List["asyncio.Future[None]"] = []
        self._draining = False
        self._started = False
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._respawning: set = set()
        self._tasks: set = set()

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Start the heartbeat prober (idempotent)."""
        if self._started:
            return
        self._draining = False
        self._started = True
        if self.config.heartbeat > 0:
            self._heartbeat_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop()
            )

    async def stop(self) -> None:
        """Drain in-flight requests, stop probing, close every link."""
        if not self._started:
            return
        await self.drain()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        for client in self.workers.values():
            await client.close()
        await self.records.flush()
        self._started = False

    async def __aenter__(self) -> "FleetRouter":
        """Async context manager: start on enter."""
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        """Async context manager: stop on exit."""
        await self.stop()

    async def drain(self) -> None:
        """Stop accepting new work and wait for in-flight completion.

        New submissions shed with 429 ``shed:drain`` from the moment
        this is called; the returned awaitable resolves once the last
        in-flight forward has replied (or exhausted its retries).
        """
        self._draining = True
        if self._inflight > 0:
            waiter: "asyncio.Future[None]" = (
                asyncio.get_running_loop().create_future()
            )
            self._drain_waiters.append(waiter)
            await waiter

    # -- health / membership --------------------------------------------
    def alive(self, slot: int) -> bool:
        """Whether a slot is on the ring and not ostracized."""
        return slot in self.workers and not self.health.is_dead(slot)

    @property
    def live_slots(self) -> List[int]:
        """Slots currently in rotation."""
        return sorted(s for s in self.workers if self.alive(s))

    def _on_death(self, slot: int) -> None:
        """Death listener: count, trace, and supervise a respawn."""
        self.metrics.counter("serve.fleet.worker_deaths").inc()
        now = asyncio.get_running_loop().time()
        self._span("death", now, now, detail=f"w{slot}")
        if self.respawn_fn is not None and not self._draining:
            task = asyncio.get_running_loop().create_task(self._respawn(slot))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _respawn(self, slot: int) -> None:
        """Spawn a fresh incarnation for a dead slot and revive it."""
        if slot in self._respawning:
            return
        self._respawning.add(slot)
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        assert self.respawn_fn is not None
        try:
            client = await self.respawn_fn(slot)
        except Exception as exc:  # noqa: BLE001 - supervisor must survive
            self.metrics.counter("serve.fleet.respawn_failures").inc()
            self._span(
                "respawn-failed", t0, loop.time(),
                detail=f"w{slot}: {type(exc).__name__}: {exc}",
            )
            return
        finally:
            self._respawning.discard(slot)
        old = self.workers.get(slot)
        self.workers[slot] = client
        self.stats.setdefault(slot, WorkerStats())
        self.ring.add(slot)  # same id -> identical points (no-op if kept)
        self.health.revive(slot)
        self.metrics.counter("serve.fleet.respawns").inc()
        self._span("respawn", t0, loop.time(), detail=f"w{slot}")
        if old is not None and old is not client:
            await old.close()

    async def _heartbeat_loop(self) -> None:
        """Ping every in-rotation worker on a fixed cadence."""
        while True:
            await asyncio.sleep(self.config.heartbeat)
            for slot in list(self.workers):
                if not self.alive(slot):
                    continue
                client = self.workers[slot]
                self.metrics.counter("serve.fleet.heartbeats").inc()
                try:
                    ok = await asyncio.wait_for(
                        client.ping(), self.policy.timeout
                    )
                except asyncio.TimeoutError:
                    self.health.record_timeout(slot)
                except (ConnectionError, OSError):
                    self.health.mark_dead(slot)
                else:
                    if ok:
                        self.health.record_success(slot)

    # -- request path ---------------------------------------------------
    def _span(self, category: str, start: float, end: float, detail: str = "") -> None:
        if self.obs is not None:
            self.obs.tracer.record(FLEET_PROC, category, start, end, detail=detail)

    def _dec_inflight(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            for waiter in self._drain_waiters:
                if not waiter.done():
                    waiter.set_result(None)
            self._drain_waiters.clear()

    @staticmethod
    def shard_key(query: api.Query) -> str:
        """The consistent-hash key: the query's compute cell, canonical."""
        return api.canonical(list(query.compute_key))

    async def submit(self, envelope: Any) -> Dict[str, Any]:
        """Route one decoded request envelope; always returns a response.

        Mirrors ``PredictionService.submit``: the synchronous prefix
        (parse, drain check, admission) runs before the first await, so
        a seeded schedule sheds deterministically at the front door.
        """
        loop = asyncio.get_running_loop()
        t_admit = loop.time()
        self.metrics.counter("serve.fleet.requests").inc()
        try:
            request = api.parse_request(envelope)
        except ServeError as exc:
            self.metrics.counter("serve.fleet.errors").inc()
            response = api.error_response(
                str(envelope.get("id", "")) if isinstance(envelope, dict) else "",
                exc.status,
                exc.reason,
                exc.detail,
            )
            self.records.record(
                t_admit, 0.0, 0.0, self._inflight, STATUS_ERROR, NO_WORKER, 0
            )
            return response

        depth = self._inflight
        if self._draining or not self._started:
            self.metrics.counter("serve.fleet.shed_drain").inc()
            self.records.record(
                t_admit, 0.0, 0.0, depth, STATUS_SHED_DRAIN, NO_WORKER, 0
            )
            return api.error_response(
                request.id,
                api.SHED,
                "shed:drain",
                "fleet is draining for shutdown; request not accepted",
            )

        admit_clock = request.arrival if request.arrival is not None else t_admit
        verdict = self.admission.decide(request.client, admit_clock, depth)
        t_admitted = loop.time()
        self._span("admit", t_admit, t_admitted, detail=request.id)
        if verdict is not None:
            self.metrics.counter(f"serve.fleet.shed_{verdict}").inc()
            status = (
                STATUS_SHED_QUEUE if verdict == "queue" else STATUS_SHED_RATE
            )
            owner = (
                self.ring.owner(self.shard_key(request.query), alive=self.alive)
                if request.query is not None
                else None
            )
            if owner is not None:
                self.stats[owner].shed += 1
            self.records.record(
                t_admit,
                (t_admitted - t_admit) * 1e6,
                0.0,
                depth,
                status,
                owner if owner is not None else NO_WORKER,
                0,
            )
            return api.error_response(
                request.id,
                api.SHED,
                f"shed:{verdict}",
                f"request shed by fleet admission control ({verdict})",
            )

        if request.kind == "ping":
            self.metrics.counter("serve.fleet.ok").inc()
            return api.ok_response(request.id, {"kind": "pong"})
        if request.kind == "platforms":
            self.metrics.counter("serve.fleet.ok").inc()
            return api.ok_response(request.id, platform_catalog())

        self._inflight += 1
        try:
            response, worker, attempts = await self._forward(
                request, envelope, t_admit
            )
        finally:
            self._dec_inflight()
        now = loop.time()
        latency = now - t_admit
        if response.get("status") != api.SHED:
            self.latencies.append(latency)
            self.metrics.histogram("serve.fleet.latency_s").observe(latency)
        if api.is_ok(response):
            self.metrics.counter("serve.fleet.ok").inc()
        self._span("reply", now, now, detail=request.id)
        self.records.record(
            t_admit,
            (t_admitted - t_admit) * 1e6,
            latency,
            depth,
            _response_status_code(response),
            worker if worker is not None else NO_WORKER,
            attempts,
        )
        return response

    async def _forward(
        self, request: api.Request, envelope: Dict[str, Any], t_admit: float
    ) -> Tuple[Dict[str, Any], Optional[int], int]:
        """Forward with failover; returns (response, last slot, attempts).

        One *attempt* is one forward that had to be abandoned (timeout
        or connection loss); the successful forward is not counted, so
        ``attempts == 0`` is the fast path.  Retries target the key's
        current live owner, which moves to the ring successor once the
        previous owner is declared dead — the same ostracism discipline
        as the resilient Sciddle client, lifted to the fleet.
        """
        loop = asyncio.get_running_loop()
        key = self.shard_key(request.query) if request.query is not None else ""
        expires = (
            t_admit + request.deadline if request.deadline is not None else None
        )
        attempts = 0
        last_slot: Optional[int] = None
        for attempt in range(self.policy.max_retries + 1):
            remaining = None if expires is None else expires - loop.time()
            if remaining is not None and remaining <= 0:
                self.metrics.counter("serve.fleet.deadline_expired").inc()
                return (
                    api.error_response(
                        request.id,
                        api.DEADLINE_EXPIRED,
                        "deadline-expired",
                        "request outlived its deadline at the router",
                    ),
                    last_slot,
                    attempts,
                )
            slot = self.ring.owner(key, alive=self.alive)
            if slot is None:
                self.metrics.counter("serve.fleet.errors").inc()
                return (
                    api.error_response(
                        request.id,
                        api.INTERNAL,
                        "no-live-workers",
                        "every fleet worker is dead or draining",
                    ),
                    last_slot,
                    attempts,
                )
            last_slot = slot
            forwarded = dict(envelope)
            if remaining is not None:
                # propagate the *remaining* budget so the worker's
                # batcher can still expire the request pre-compute
                forwarded["deadline"] = remaining
            timeout = (
                self.policy.timeout
                if remaining is None
                else min(self.policy.timeout, remaining)
            )
            client = self.workers[slot]
            self.stats[slot].forwarded += 1
            self.metrics.counter(f"serve.fleet.w{slot}.forwarded").inc()
            t0 = loop.time()
            try:
                response = await asyncio.wait_for(
                    client.request(forwarded), timeout
                )
            except asyncio.TimeoutError:
                self.stats[slot].failed += 1
                self.metrics.counter("serve.fleet.timeouts").inc()
                self._span(
                    "timeout", t0, loop.time(), detail=f"w{slot} {request.id}"
                )
                self.health.record_timeout(slot)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                self.stats[slot].failed += 1
                self.metrics.counter("serve.fleet.conn_errors").inc()
                self._span(
                    "conn-error", t0, loop.time(), detail=f"w{slot} {request.id}"
                )
                # a torn link is a crash signal, not a slow reply
                self.health.mark_dead(slot)
            else:
                self.health.record_success(slot)
                self.stats[slot].completed += 1
                self.metrics.counter(f"serve.fleet.w{slot}.completed").inc()
                self._span(
                    "forward", t0, loop.time(), detail=f"w{slot} {request.id}"
                )
                return response, slot, attempts
            attempts += 1
            if attempt >= self.policy.max_retries:
                break
            self.stats[slot].retried += 1
            self.metrics.counter("serve.fleet.retries").inc()
            backoff = self.policy.backoff(attempt - 1, self._rng)
            if expires is not None:
                backoff = min(backoff, max(0.0, expires - loop.time()))
            if backoff > 0:
                await asyncio.sleep(backoff)
        self.metrics.counter("serve.fleet.errors").inc()
        return (
            api.error_response(
                request.id,
                api.INTERNAL,
                "retry-exhausted",
                f"no worker replied within {attempts} attempt(s)",
            ),
            last_slot,
            attempts,
        )

    # -- reporting ------------------------------------------------------
    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p95/p99 over router-side reply latencies (0 when empty)."""
        from ..obs.query import percentile

        return {
            "p50": percentile(self.latencies, 0.50),
            "p95": percentile(self.latencies, 0.95),
            "p99": percentile(self.latencies, 0.99),
        }

    def worker_report(self) -> Dict[str, Dict[str, int]]:
        """Per-worker tallies keyed ``w<slot>`` (the loadgen report rows)."""
        return {
            f"w{slot}": self.stats[slot].as_dict()
            for slot in sorted(self.stats)
        }

    def report(self) -> Dict[str, Any]:
        """Operational snapshot: admission, membership, latency, workers."""
        return {
            "admission": self.admission.stats.as_dict(),
            "workers": self.worker_report(),
            "live": [f"w{slot}" for slot in self.live_slots],
            "dead": [f"w{slot}" for slot in sorted(self.health.dead)],
            "latency": self.latency_quantiles(),
        }
