"""Lock-free flight recorder: per-request serve telemetry, live.

A preallocated ring buffer riding inside
:class:`~repro.serve.service.PredictionService`.  Every request that
reaches admission leaves one row — per-stage latencies
(admit/queue/compute/reply, microseconds), the exact reply latency the
service's own quantile report uses (``reply_s``), the queue depth seen
at admission, the batch it rode in, and a status code — without locks:
the service records from the event-loop thread only (single writer),
and a record is one tuple store into a preallocated list ring, a few
hundred nanoseconds.  Columnar numpy conversion happens at flush time,
off the hot path.

Flushing converts the unflushed rows into one ``serve`` segment of a
:class:`~repro.obs.store.TelemetryStore`.  The async :meth:`flush`
pushes the file I/O off the event loop via ``run_in_executor`` (the
S701 rule: no blocking I/O inside ``repro.serve`` coroutines);
:meth:`flush_sync` is the synchronous core for non-async callers.
Flush at quiescent points (after a drain, at service stop — the
shipped hook): a flush racing live traffic can miss rows the ring
overwrites mid-copy, which is the classic flight-recorder trade —
bounded memory and zero hot-path cost over lossless capture.

``reply_s`` is bitwise the float appended to
``PredictionService.latencies``, which is what makes
``p99(reply_s)`` over ingested rows reproduce
``latency_quantiles()["p99"]`` exactly (sheds never reply: their rows
carry ``reply_s = 0`` and a shed status, so filter ``status`` when
aggregating latencies).
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

import numpy as np

#: Status codes of the ``status`` column (mirrored by
#: :mod:`repro.obs.monitor`, which interprets them store-side).
STATUS_OK = 0
STATUS_SHED_RATE = 1
STATUS_SHED_QUEUE = 2
STATUS_EXPIRED = 3
STATUS_ERROR = 4
STATUS_SHED_DRAIN = 5

#: Column layout of one flight row == the ``serve`` dataset's schema.
FLOAT_COLUMNS = (
    "t_admit", "admit_us", "queue_us", "compute_us", "reply_us", "reply_s",
)
INT_COLUMNS = ("depth", "status", "batch")
COLUMNS = FLOAT_COLUMNS + INT_COLUMNS


class FlightRecorder:
    """Single-writer ring buffer of per-request serve records.

    ``capacity`` bounds memory; once exceeded, the oldest *unflushed*
    rows are overwritten and counted in :attr:`dropped`.  ``store``
    (optional) is where :meth:`flush` appends segments, under
    ``dataset``.
    """

    def __init__(
        self,
        capacity: int = 65536,
        store: Optional[object] = None,
        dataset: str = "serve",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.store = store
        self.dataset = dataset
        #: the ring: one COLUMNS-ordered tuple per recorded row
        self._rows: list = [None] * capacity
        #: total rows ever recorded (monotone absolute sequence)
        self._seq = 0
        #: absolute sequence already flushed to the store
        self._flushed = 0
        #: rows lost to ring wraparound before they could flush
        self.dropped = 0

    # -- recording (event-loop thread only) -----------------------------
    def record(
        self,
        t_admit: float,
        depth: int,
        admit_us: float,
        queue_us: float,
        compute_us: float,
        reply_us: float,
        reply_s: float,
        status: int,
        batch: int,
    ) -> None:
        """Record one completed (replied) request."""
        self._rows[self._seq % self.capacity] = (
            t_admit, admit_us, queue_us, compute_us, reply_us, reply_s,
            depth, status, batch,
        )
        self._seq += 1

    def record_shed(
        self, t_admit: float, depth: int, admit_us: float, status: int
    ) -> None:
        """Record one request shed at admission (it never replies)."""
        self.record(
            t_admit=t_admit,
            depth=depth,
            admit_us=admit_us,
            queue_us=0.0,
            compute_us=0.0,
            reply_us=0.0,
            reply_s=0.0,
            status=status,
            batch=0,
        )

    # -- reading / flushing ---------------------------------------------
    def __len__(self) -> int:
        return self._seq

    @property
    def pending(self) -> int:
        """Unflushed rows still held in the ring (post-wrap survivors)."""
        return min(self._seq - self._flushed, self.capacity)

    def snapshot(self) -> Dict[str, np.ndarray]:
        """The unflushed rows as numpy columns, oldest first."""
        start = max(self._flushed, self._seq - self.capacity)
        rows = [self._rows[i % self.capacity] for i in range(start, self._seq)]
        out: Dict[str, np.ndarray] = {}
        split = len(FLOAT_COLUMNS)
        for j, name in enumerate(FLOAT_COLUMNS):
            out[name] = np.array([row[j] for row in rows], dtype=np.float64)
        for j, name in enumerate(INT_COLUMNS):
            out[name] = np.array([row[split + j] for row in rows], dtype=np.int64)
        return out

    def flush_sync(self) -> Optional[str]:
        """Append unflushed rows to the store; returns the segment id.

        Synchronous (blocking I/O) — call from a worker thread or a
        non-async context.  No store or no rows: returns None.
        """
        if self.store is None:
            return None
        start = max(self._flushed, self._seq - self.capacity)
        self.dropped += start - self._flushed
        if start == self._seq:
            self._flushed = self._seq
            return None
        columns = self.snapshot()
        segment = self.store.append(
            self.dataset,
            {name: columns[name] for name in COLUMNS},
            meta={"source": "flight", "dropped": self.dropped},
        )
        self._flushed = self._seq
        return segment

    async def flush(self) -> Optional[str]:
        """Flush off the event loop (default executor); see flush_sync."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.flush_sync)
