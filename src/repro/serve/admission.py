"""Admission control: token-bucket rate limiting and queue bounds.

The service sheds load *before* it queues work, per client, with a
classic token bucket: each client earns ``rate`` tokens per second up
to a ``burst`` ceiling, and each admitted request spends one.  A
request arriving with an empty bucket is rejected with a 429-style
``shed:rate`` error; a request arriving while the service queue is at
``max_queue_depth`` is rejected with ``shed:queue``.

Determinism: buckets advance on whatever clock the caller passes to
:meth:`TokenBucket.admit`.  The load generator stamps each request with
a *virtual* arrival time from its seeded open-loop schedule, and the
service rates stamped requests by that virtual time — so the admit/shed
decision for a given (seed, rate, burst) workload is a pure function of
the schedule, independent of wall-clock jitter or event-loop
interleaving.  Unstamped (interactive) requests are rated by the event
loop's monotonic clock instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class TokenBucket:
    """One client's token bucket.

    ``rate`` tokens accrue per second of (virtual or wall) time, capped
    at ``burst``; the bucket starts full so a client's first ``burst``
    requests always pass.  Time never runs backwards: a stale timestamp
    is clamped to the last one seen, so out-of-order arrivals within
    one client cannot mint extra tokens.
    """

    rate: float
    burst: float
    tokens: float = field(init=False)
    last: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate!r}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst!r}")
        self.tokens = float(self.burst)

    def admit(self, now: float) -> bool:
        """Spend one token at time ``now``; False means shed."""
        if self.last is None:
            self.last = now
        elif now > self.last:
            self.tokens = min(
                float(self.burst), self.tokens + (now - self.last) * self.rate
            )
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionStats:
    """Counters for admission decisions."""

    admitted: int = 0
    shed_rate: int = 0
    shed_queue: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for reports and JSON)."""
        return {
            "admitted": self.admitted,
            "shed_rate": self.shed_rate,
            "shed_queue": self.shed_queue,
        }


class AdmissionController:
    """Per-client rate limiting plus a global queue bound.

    ``decide`` returns ``None`` to admit, or the shed reason
    (``"rate"`` or ``"queue"``) to reject.  Queue-bound shedding
    consults the live queue depth supplied by the caller, so it
    reflects backpressure from the compute stage; rate shedding is a
    pure function of the per-client request timeline.
    """

    def __init__(
        self,
        max_queue_depth: int = 1024,
        rate: float = 200.0,
        burst: int = 50,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth!r}"
            )
        self.max_queue_depth = max_queue_depth
        self.rate = rate
        self.burst = burst
        self.stats = AdmissionStats()
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket_for(self, client: str) -> TokenBucket:
        """The (lazily created) token bucket for one client."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(rate=self.rate, burst=self.burst)
            self._buckets[client] = bucket
        return bucket

    def decide(self, client: str, now: float, queue_depth: int) -> Optional[str]:
        """Admit (None) or shed ("rate" / "queue") one request."""
        if queue_depth >= self.max_queue_depth:
            self.stats.shed_queue += 1
            return "queue"
        if not self.bucket_for(client).admit(now):
            self.stats.shed_rate += 1
            return "rate"
        self.stats.admitted += 1
        return None
