"""``python -m repro.serve`` — serve, fleet, query and bench commands.

Commands
--------
``serve``  run the TCP/HTTP prediction server in the foreground
``fleet``  run a multi-worker fleet behind one front-door router port
``query``  answer one query (in-process by default, or against a server)
``bench``  drive a seeded load-generator campaign and report/assert

``bench`` is also the CI smoke runner: ``--fail-on-shed`` and
``--p99-budget`` turn the report into assertions, and ``--json`` emits
the machine-readable result the workflow archives.  ``bench --fleet N``
drives the same seeded campaign through a worker fleet, and the chaos
knobs (``--kill-worker``/``--abort-after``/``--oracle``) make it the
CI fleet-chaos runner: kill a worker mid-burst, then check every
completed response bit-identical against a serial single-process run.

``serve`` and ``fleet`` drain gracefully on SIGTERM/SIGINT: queued
requests are answered or shed with 429 ``shed:drain``, and telemetry
stores flush before exit.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
from typing import Any, Dict, Optional

from . import api
from .calibstore import CalibrationStore
from .loadgen import LoadgenReport, LoadSpec, build_schedule, run_open_loop
from .server import ServeClient, ServeServer, TcpServeClient
from .service import PredictionService, ServeConfig


def _add_service_opts(p: argparse.ArgumentParser) -> None:
    p.add_argument("--max-batch", type=int, default=64,
                   help="micro-batch size cap (1 = sequential serving)")
    p.add_argument("--max-linger", type=float, default=0.002,
                   help="seconds to wait for stragglers in a partial batch")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="max queued requests before shedding (429 shed:queue)")
    p.add_argument("--admit-rate", type=float, default=200.0,
                   help="per-client token-bucket refill rate (req/s)")
    p.add_argument("--burst", type=int, default=50,
                   help="per-client token-bucket burst capacity")
    p.add_argument("--cache-dir", default=None,
                   help="on-disk calibration cache directory")
    p.add_argument("--refresh", choices=("none", "background", "blocking"),
                   default="background",
                   help="calibration refresh policy on a cache miss")


def _build_service(args: argparse.Namespace) -> PredictionService:
    config = ServeConfig(
        max_batch=args.max_batch,
        max_linger=args.max_linger,
        max_queue_depth=args.queue_depth,
        rate=args.admit_rate,
        burst=args.burst,
        refresh=args.refresh,
    )
    store = CalibrationStore(cache_dir=args.cache_dir)
    obs = None
    if getattr(args, "trace_out", None) is not None:
        from ..obs import ObsSession

        obs = ObsSession(label="serve")
    flight = None
    if getattr(args, "store_out", None) is not None:
        from ..obs.store import TelemetryStore
        from .flight import FlightRecorder

        flight = FlightRecorder(store=TelemetryStore(args.store_out))
    return PredictionService(
        config=config, calibrations=store, obs=obs, flight=flight
    )


def _finish_trace(args: argparse.Namespace, service: PredictionService) -> None:
    path = getattr(args, "trace_out", None)
    if path is None or service.obs is None:
        return
    if str(path).endswith(".jsonl"):
        service.obs.export_jsonl(path)
    else:
        service.obs.export_chrome(path)
    print(f"trace written to {path}", file=sys.stderr)


# ----------------------------------------------------------------------
async def _wait_for_shutdown() -> None:
    """Block until SIGTERM/SIGINT; unhooks the handlers on the way out."""
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    hooked = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
            hooked.append(signum)
    try:
        await stop.wait()
    finally:
        for signum in hooked:
            loop.remove_signal_handler(signum)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the prediction server until SIGTERM/SIGINT, then drain."""

    async def run() -> None:
        service = _build_service(args)
        async with ServeServer(service, host=args.host, port=args.port) as server:
            print(
                f"serving on {args.host}:{server.bound_port} "
                f"(NDJSON + HTTP; POST /v1/query, GET /healthz)",
                flush=True,
            )
            # exiting the context drains: queued requests answer or
            # shed with 429 shed:drain, and the flight store flushes
            await _wait_for_shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    except BrokenPipeError:
        # stdout reader vanished (supervisor torn down mid-spawn)
        return 0
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run a worker fleet behind one front-door port until SIGTERM."""
    from .fleet import FleetSpec, ServeFleet
    from .router import FleetConfig

    spec = FleetSpec(
        workers=args.workers,
        cache_dir=args.cache_dir,
        store_root=args.store_out,
        max_batch=args.max_batch,
        max_linger=args.max_linger,
        config=FleetConfig(
            rate=args.admit_rate,
            burst=args.burst,
            max_queue_depth=args.queue_depth,
            heartbeat=args.heartbeat,
            seed=args.seed,
        ),
    )

    async def run() -> None:
        async with ServeFleet(spec) as fleet:
            assert fleet.router is not None
            server = ServeServer(fleet.router, host=args.host, port=args.port)
            # the fleet owns router lifecycle; hand the server a started
            # router so its stop() path is the idempotent second call
            async with server:
                print(
                    f"fleet of {spec.workers} serving on "
                    f"{args.host}:{server.bound_port} "
                    f"(NDJSON + HTTP; POST /v1/query, GET /healthz)",
                    flush=True,
                )
                await _wait_for_shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
def _query_envelope(args: argparse.Namespace) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "v": api.WIRE_VERSION,
        "id": "cli",
        "client": "cli",
        "kind": args.kind,
    }
    if args.kind in ("predict", "sweep"):
        if args.family != "opal":
            query: Dict[str, Any] = {
                "platform": args.platform,
                "family": args.family,
                "spec": _load_spec_arg(args.spec),
                "calibrated": args.calibrated,
            }
        else:
            query = {
                "platform": args.platform,
                "molecule": args.molecule,
                "update_interval": args.update_interval,
                "cutoff": args.cutoff,
                "steps": args.steps,
                "calibrated": args.calibrated,
            }
        if args.kind == "predict":
            query["servers"] = args.servers
        else:
            query["servers"] = list(range(1, args.servers + 1))
        envelope["query"] = query
    return envelope


def _load_spec_arg(raw: Optional[str]) -> Dict[str, Any]:
    """``--spec`` accepts inline JSON or a .json/.toml spec file path."""
    if raw is None:
        return {}
    text = raw.strip()
    if text.startswith("{"):
        data = json.loads(text)
        if not isinstance(data, dict):
            raise SystemExit(f"--spec must be a JSON object, got {text!r}")
        return data
    from ..workloads import load_spec_data

    data = load_spec_data(raw)
    data.pop("family", None)  # --family is authoritative on the CLI
    return data


def _parse_family_mix(raw: Optional[str]) -> Optional[Dict[str, float]]:
    """``--family-mix "collective=0.3,hpl=0.2,opal=0.5"`` -> weight dict."""
    if raw is None:
        return None
    mix: Dict[str, float] = {}
    for part in raw.split(","):
        name, sep, weight = part.partition("=")
        if not sep or not name.strip():
            raise SystemExit(
                f"--family-mix entries are FAMILY=WEIGHT, got {part!r}"
            )
        try:
            mix[name.strip()] = float(weight)
        except ValueError:
            raise SystemExit(
                f"--family-mix weight for {name.strip()!r} is not a number: "
                f"{weight!r}"
            ) from None
    return mix


def cmd_query(args: argparse.Namespace) -> int:
    """Answer one query and print the response envelope as JSON."""

    async def run() -> Dict[str, Any]:
        envelope = _query_envelope(args)
        if args.connect is not None:
            host, _, port = args.connect.partition(":")
            async with TcpServeClient(host, int(port)) as client:
                return await client.request(envelope)
        service = _build_service(args)
        async with service:
            return await ServeClient(service).request(envelope)

    response = asyncio.run(run())
    print(api.canonical(response) if args.compact else json.dumps(response, indent=2))
    return 0 if api.is_ok(response) else 1


# ----------------------------------------------------------------------
async def _oracle_responses(
    args: argparse.Namespace, schedule: list
) -> Dict[str, Dict[str, Any]]:
    """Serve the schedule serially in-process, admission wide open.

    The bit-identity oracle for the fleet bench: deadlines are
    stripped and nothing sheds, so every id gets its pure-function
    answer.  Fleet-completed responses must match these bit for bit.
    """
    config = ServeConfig(
        max_batch=args.max_batch,
        max_linger=args.max_linger,
        max_queue_depth=10**6,
        rate=1e9,
        burst=10**6,
    )
    service = PredictionService(
        config=config, calibrations=CalibrationStore(cache_dir=args.cache_dir)
    )
    relaxed = []
    for envelope in schedule:
        clean = dict(envelope)
        clean.pop("deadline", None)
        relaxed.append(clean)
    async with service:
        report = await run_open_loop(ServeClient(service).request, relaxed)
    return report.responses


def _bit_identity_check(
    fleet_report: LoadgenReport, oracle: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Compare every fleet-completed (200) response against the oracle."""
    compared = 0
    mismatched = []
    for rid, response in sorted(fleet_report.responses.items()):
        if response.get("status") != api.OK:
            continue
        compared += 1
        if api.canonical(response) != api.canonical(oracle.get(rid)):
            mismatched.append(rid)
    return {
        "compared": compared,
        "corrupted": len(mismatched),
        "mismatched_ids": mismatched[:10],
    }


def _bench_fleet(args: argparse.Namespace, spec: LoadSpec) -> Dict[str, Any]:
    """The ``bench --fleet N`` campaign: chaos taps + bit-identity oracle."""
    from .fleet import FleetSpec, ServeFleet
    from .router import FleetConfig

    fleet_spec = FleetSpec(
        workers=args.fleet,
        cache_dir=args.cache_dir,
        store_root=args.store_out,
        max_batch=args.max_batch,
        max_linger=args.max_linger,
        config=FleetConfig(
            rate=args.admit_rate,
            burst=args.burst,
            max_queue_depth=args.queue_depth,
            seed=args.seed,
        ),
    )
    schedule = build_schedule(spec)
    abort_after = args.abort_after
    if args.kill_worker is not None and abort_after is None:
        abort_after = len(schedule) // 2

    async def run() -> Dict[str, Any]:
        async with ServeFleet(fleet_spec) as fleet:
            router = fleet.router
            assert router is not None

            async def chaos() -> None:
                fleet.kill_worker(args.kill_worker)

            report = await run_open_loop(
                router.submit,
                schedule,
                pace=args.pace,
                abort_after=abort_after,
                abort=chaos if args.kill_worker is not None else None,
            )
            report.per_worker = router.worker_report()
            result: Dict[str, Any] = report.summary()
            result["latency"] = router.latency_quantiles()
            result["fleet"] = fleet.report()
            result["shed_ids"] = report.shed_ids()
            if args.store_out is not None:
                result["flight"] = {
                    "recorded": len(router.records),
                    "stores": fleet.store_dirs(),
                }
        if args.oracle:
            result["oracle"] = _bit_identity_check(
                report, await _oracle_responses(args, schedule)
            )
        return result

    return asyncio.run(run())


def cmd_bench(args: argparse.Namespace) -> int:
    """Run a seeded load campaign in-process; report and assert."""
    try:
        spec = LoadSpec(
            clients=args.clients,
            requests_per_client=args.requests,
            rate=args.load_rate,
            seed=args.seed,
            sweep_fraction=args.sweep_fraction,
            calibrated=args.calibrated,
            deadline=args.deadline,
            family_mix=_parse_family_mix(args.family_mix),
        )
    except ValueError as exc:
        print(f"invalid load spec: {exc}", file=sys.stderr)
        return 2

    async def run() -> Dict[str, Any]:
        service = _build_service(args)
        async with service:
            schedule = build_schedule(spec)
            report = await run_open_loop(
                ServeClient(service).request, schedule, pace=args.pace
            )
        result: Dict[str, Any] = report.summary()
        result["latency"] = service.latency_quantiles()
        result["service"] = service.report()
        result["shed_ids"] = report.shed_ids()
        if service.flight is not None:
            result["flight"] = {
                "recorded": len(service.flight),
                "dropped": service.flight.dropped,
                "store": args.store_out,
            }
        _finish_trace(args, service)
        return result

    if args.fleet:
        result = _bench_fleet(args, spec)
    else:
        result = asyncio.run(run())
    failures = []
    if args.fail_on_shed and (result["shed_rate"] or result["shed_queue"]):
        failures.append(
            f"shed {result['shed_rate']} by rate + "
            f"{result['shed_queue']} by queue at nominal load"
        )
    if args.p99_budget is not None and result["latency"]["p99"] > args.p99_budget:
        failures.append(
            f"p99 {result['latency']['p99']:.6f}s over budget {args.p99_budget}s"
        )
    if result.get("oracle", {}).get("corrupted"):
        failures.append(
            f"{result['oracle']['corrupted']} completed response(s) differ "
            f"from the serial oracle (first: "
            f"{result['oracle']['mismatched_ids'][:3]})"
        )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        lat = result["latency"]
        print(
            f"sent {result['sent']}  ok {result['ok']}  "
            f"shed {result['shed_rate']}+{result['shed_queue']}"
            f"+{result.get('shed_drain', 0)}  "
            f"expired {result['expired']}  errors {result['errors']}"
        )
        print(
            f"wall {result['wall_s']:.3f}s  throughput {result['throughput_rps']:.1f} "
            f"req/s  p50 {lat['p50'] * 1e3:.2f}ms  p95 {lat['p95'] * 1e3:.2f}ms  "
            f"p99 {lat['p99'] * 1e3:.2f}ms"
        )
        if "service" in result:
            occupancy = result["service"]["mean_occupancy"]
            print(
                f"batches {result['service']['batches']}  "
                f"mean occupancy {occupancy:.1f}"
            )
        for worker, tallies in result.get("per_worker", {}).items():
            print(
                f"{worker}: forwarded {tallies['forwarded']}  "
                f"completed {tallies['completed']}  retried {tallies['retried']}  "
                f"failed {tallies['failed']}  shed {tallies['shed']}"
            )
        if "oracle" in result:
            print(
                f"oracle: compared {result['oracle']['compared']}  "
                f"corrupted {result['oracle']['corrupted']}"
            )
    for failure in failures:
        print(f"BENCH FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
def main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="prediction-as-a-service: what-if queries over the model",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the TCP/HTTP server in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123)
    p.add_argument("--store-out", default=None, metavar="DIR",
                   help="flight-record every request into the telemetry "
                   "store at DIR (flushed on graceful shutdown)")
    _add_service_opts(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="run a multi-worker fleet behind one front-door router port",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123)
    p.add_argument("--workers", type=int, default=3,
                   help="number of serve worker processes")
    p.add_argument("--heartbeat", type=float, default=0.25,
                   help="seconds between worker health pings (0 disables)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the router's retry-backoff jitter stream")
    p.add_argument("--store-out", default=None, metavar="DIR",
                   help="telemetry store root (router + per-worker stores)")
    _add_service_opts(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("query", help="answer one query and print JSON")
    p.add_argument("--kind", choices=api.KINDS, default="predict")
    p.add_argument("--platform", default="j90")
    p.add_argument("--family", default="opal",
                   help="workload family (default opal; others take --spec)")
    p.add_argument("--spec", default=None, metavar="JSON|FILE",
                   help="family spec as inline JSON or a .json/.toml file "
                   "(non-opal families; omitted fields take defaults)")
    p.add_argument("--molecule", choices=("small", "medium", "large"),
                   default="medium")
    p.add_argument("--servers", type=int, default=4,
                   help="server count (predict) or max of the 1..N sweep")
    p.add_argument("--cutoff", type=float, default=None)
    p.add_argument("--update-interval", type=int, default=1)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--calibrated", action="store_true",
                   help="resolve coefficients through the calibration store")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="query a running server over NDJSON instead of in-process")
    p.add_argument("--compact", action="store_true",
                   help="print canonical single-line JSON")
    _add_service_opts(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("bench", help="seeded load campaign with assertions")
    p.add_argument("--clients", type=int, default=16)
    p.add_argument("--requests", type=int, default=25,
                   help="requests per client")
    p.add_argument("--load-rate", type=float, default=100.0,
                   help="per-client mean request rate (req/s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sweep-fraction", type=float, default=0.1)
    p.add_argument("--family-mix", default=None, metavar="MIX",
                   help='weighted family draw, e.g. '
                   '"collective=0.3,hpl=0.2,opal=0.5" '
                   "(default: all requests are opal)")
    p.add_argument("--calibrated", action="store_true")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request latency budget in seconds")
    p.add_argument("--pace", action="store_true",
                   help="pace submissions on the virtual arrival schedule")
    p.add_argument("--fail-on-shed", action="store_true",
                   help="exit non-zero if any request was shed")
    p.add_argument("--p99-budget", type=float, default=None,
                   help="exit non-zero if p99 latency exceeds this (seconds)")
    p.add_argument("--trace-out", default=None,
                   help="export the serve-side observability trace here")
    p.add_argument("--store-out", default=None, metavar="DIR",
                   help="flight-record every request into the telemetry "
                   "store at DIR (flushed at service stop; feed it to "
                   "'python -m repro.obs slo')")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report")
    p.add_argument("--fleet", type=int, default=0, metavar="N",
                   help="drive the campaign through an N-worker fleet "
                   "instead of one in-process service")
    p.add_argument("--kill-worker", type=int, default=None, metavar="SLOT",
                   help="chaos tap: SIGKILL this worker slot mid-burst "
                   "(fleet mode only)")
    p.add_argument("--abort-after", type=int, default=None, metavar="N",
                   help="fire the chaos tap after exactly N submissions "
                   "(default: half the schedule)")
    p.add_argument("--oracle", action="store_true",
                   help="fleet mode: replay the schedule through a serial "
                   "in-process service and require every completed "
                   "response to be bit-identical")
    _add_service_opts(p)
    p.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)
