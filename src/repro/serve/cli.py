"""``python -m repro.serve`` — serve, query and bench commands.

Commands
--------
``serve``  run the TCP/HTTP prediction server in the foreground
``query``  answer one query (in-process by default, or against a server)
``bench``  drive a seeded load-generator campaign and report/assert

``bench`` is also the CI smoke runner: ``--fail-on-shed`` and
``--p99-budget`` turn the report into assertions, and ``--json`` emits
the machine-readable result the workflow archives.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, Optional

from . import api
from .calibstore import CalibrationStore
from .loadgen import LoadSpec, build_schedule, run_open_loop
from .server import ServeClient, ServeServer, TcpServeClient
from .service import PredictionService, ServeConfig


def _add_service_opts(p: argparse.ArgumentParser) -> None:
    p.add_argument("--max-batch", type=int, default=64,
                   help="micro-batch size cap (1 = sequential serving)")
    p.add_argument("--max-linger", type=float, default=0.002,
                   help="seconds to wait for stragglers in a partial batch")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="max queued requests before shedding (429 shed:queue)")
    p.add_argument("--admit-rate", type=float, default=200.0,
                   help="per-client token-bucket refill rate (req/s)")
    p.add_argument("--burst", type=int, default=50,
                   help="per-client token-bucket burst capacity")
    p.add_argument("--cache-dir", default=None,
                   help="on-disk calibration cache directory")
    p.add_argument("--refresh", choices=("none", "background", "blocking"),
                   default="background",
                   help="calibration refresh policy on a cache miss")


def _build_service(args: argparse.Namespace) -> PredictionService:
    config = ServeConfig(
        max_batch=args.max_batch,
        max_linger=args.max_linger,
        max_queue_depth=args.queue_depth,
        rate=args.admit_rate,
        burst=args.burst,
        refresh=args.refresh,
    )
    store = CalibrationStore(cache_dir=args.cache_dir)
    obs = None
    if getattr(args, "trace_out", None) is not None:
        from ..obs import ObsSession

        obs = ObsSession(label="serve")
    flight = None
    if getattr(args, "store_out", None) is not None:
        from ..obs.store import TelemetryStore
        from .flight import FlightRecorder

        flight = FlightRecorder(store=TelemetryStore(args.store_out))
    return PredictionService(
        config=config, calibrations=store, obs=obs, flight=flight
    )


def _finish_trace(args: argparse.Namespace, service: PredictionService) -> None:
    path = getattr(args, "trace_out", None)
    if path is None or service.obs is None:
        return
    if str(path).endswith(".jsonl"):
        service.obs.export_jsonl(path)
    else:
        service.obs.export_chrome(path)
    print(f"trace written to {path}", file=sys.stderr)


# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    """Run the prediction server until interrupted."""

    async def run() -> None:
        service = _build_service(args)
        async with ServeServer(service, host=args.host, port=args.port) as server:
            print(
                f"serving on {args.host}:{server.bound_port} "
                f"(NDJSON + HTTP; POST /v1/query, GET /healthz)",
                flush=True,
            )
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
def _query_envelope(args: argparse.Namespace) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "v": api.WIRE_VERSION,
        "id": "cli",
        "client": "cli",
        "kind": args.kind,
    }
    if args.kind in ("predict", "sweep"):
        query: Dict[str, Any] = {
            "platform": args.platform,
            "molecule": args.molecule,
            "update_interval": args.update_interval,
            "cutoff": args.cutoff,
            "steps": args.steps,
            "calibrated": args.calibrated,
        }
        if args.kind == "predict":
            query["servers"] = args.servers
        else:
            query["servers"] = list(range(1, args.servers + 1))
        envelope["query"] = query
    return envelope


def cmd_query(args: argparse.Namespace) -> int:
    """Answer one query and print the response envelope as JSON."""

    async def run() -> Dict[str, Any]:
        envelope = _query_envelope(args)
        if args.connect is not None:
            host, _, port = args.connect.partition(":")
            async with TcpServeClient(host, int(port)) as client:
                return await client.request(envelope)
        service = _build_service(args)
        async with service:
            return await ServeClient(service).request(envelope)

    response = asyncio.run(run())
    print(api.canonical(response) if args.compact else json.dumps(response, indent=2))
    return 0 if api.is_ok(response) else 1


# ----------------------------------------------------------------------
def cmd_bench(args: argparse.Namespace) -> int:
    """Run a seeded load campaign in-process; report and assert."""
    spec = LoadSpec(
        clients=args.clients,
        requests_per_client=args.requests,
        rate=args.load_rate,
        seed=args.seed,
        sweep_fraction=args.sweep_fraction,
        calibrated=args.calibrated,
        deadline=args.deadline,
    )

    async def run() -> Dict[str, Any]:
        service = _build_service(args)
        async with service:
            schedule = build_schedule(spec)
            report = await run_open_loop(
                ServeClient(service).request, schedule, pace=args.pace
            )
        result: Dict[str, Any] = report.summary()
        result["latency"] = service.latency_quantiles()
        result["service"] = service.report()
        result["shed_ids"] = report.shed_ids()
        if service.flight is not None:
            result["flight"] = {
                "recorded": len(service.flight),
                "dropped": service.flight.dropped,
                "store": args.store_out,
            }
        _finish_trace(args, service)
        return result

    result = asyncio.run(run())
    failures = []
    if args.fail_on_shed and (result["shed_rate"] or result["shed_queue"]):
        failures.append(
            f"shed {result['shed_rate']} by rate + "
            f"{result['shed_queue']} by queue at nominal load"
        )
    if args.p99_budget is not None and result["latency"]["p99"] > args.p99_budget:
        failures.append(
            f"p99 {result['latency']['p99']:.6f}s over budget {args.p99_budget}s"
        )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        lat = result["latency"]
        print(
            f"sent {result['sent']}  ok {result['ok']}  "
            f"shed {result['shed_rate']}+{result['shed_queue']}  "
            f"expired {result['expired']}  errors {result['errors']}"
        )
        print(
            f"wall {result['wall_s']:.3f}s  throughput {result['throughput_rps']:.1f} "
            f"req/s  p50 {lat['p50'] * 1e3:.2f}ms  p95 {lat['p95'] * 1e3:.2f}ms  "
            f"p99 {lat['p99'] * 1e3:.2f}ms"
        )
        occupancy = result["service"]["mean_occupancy"]
        print(f"batches {result['service']['batches']}  mean occupancy {occupancy:.1f}")
    for failure in failures:
        print(f"BENCH FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
def main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="prediction-as-a-service: what-if queries over the model",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the TCP/HTTP server in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123)
    _add_service_opts(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query", help="answer one query and print JSON")
    p.add_argument("--kind", choices=api.KINDS, default="predict")
    p.add_argument("--platform", default="j90")
    p.add_argument("--molecule", choices=("small", "medium", "large"),
                   default="medium")
    p.add_argument("--servers", type=int, default=4,
                   help="server count (predict) or max of the 1..N sweep")
    p.add_argument("--cutoff", type=float, default=None)
    p.add_argument("--update-interval", type=int, default=1)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--calibrated", action="store_true",
                   help="resolve coefficients through the calibration store")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="query a running server over NDJSON instead of in-process")
    p.add_argument("--compact", action="store_true",
                   help="print canonical single-line JSON")
    _add_service_opts(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("bench", help="seeded load campaign with assertions")
    p.add_argument("--clients", type=int, default=16)
    p.add_argument("--requests", type=int, default=25,
                   help="requests per client")
    p.add_argument("--load-rate", type=float, default=100.0,
                   help="per-client mean request rate (req/s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sweep-fraction", type=float, default=0.1)
    p.add_argument("--calibrated", action="store_true")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request latency budget in seconds")
    p.add_argument("--pace", action="store_true",
                   help="pace submissions on the virtual arrival schedule")
    p.add_argument("--fail-on-shed", action="store_true",
                   help="exit non-zero if any request was shed")
    p.add_argument("--p99-budget", type=float, default=None,
                   help="exit non-zero if p99 latency exceeds this (seconds)")
    p.add_argument("--trace-out", default=None,
                   help="export the serve-side observability trace here")
    p.add_argument("--store-out", default=None, metavar="DIR",
                   help="flight-record every request into the telemetry "
                   "store at DIR (flushed at service stop; feed it to "
                   "'python -m repro.obs slo')")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report")
    _add_service_opts(p)
    p.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)
