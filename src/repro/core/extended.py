"""Extended performance model with a load-imbalance term.

The paper's model assumes perfectly balanced servers; its own
instrumentation then *discovers* the even-server-count imbalance as
unexplained idle time (Section 2.4).  The natural next step — left open
by the paper — is to feed the discovery back into the model.  The wall
clock of a barrier-synchronized parallel phase is set by the *slowest*
server:

    t_phase_wall = (max_s work_s) / rate = imbalance(p) * t_phase_mean

so the extended model multiplies the parallel-computation terms by the
dealer's expected max/mean ratio (1 + defect for even p, 1 for odd p)
and books the difference as predicted idle time.  On runs of the
defective application this removes most of the even-p residuals of the
basic model; on a repaired application (defect=0) it degrades to the
paper's model exactly.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..errors import ModelError
from ..opal.distribution import PairDistribution
from .breakdown import TimeBreakdown
from .model import OpalPerformanceModel
from .parameters import ApplicationParams, ModelPlatformParams


class ImbalanceAwareModel(OpalPerformanceModel):
    """The paper's model plus the even-p imbalance idle term."""

    def __init__(self, platform: ModelPlatformParams, defect: float = 0.1) -> None:
        super().__init__(platform)
        if not 0.0 <= defect <= 1.0:
            raise ModelError("defect fraction must be in [0, 1]")
        self.defect = defect

    # ------------------------------------------------------------------
    def imbalance(self, app: ApplicationParams) -> float:
        """Expected max/mean server-work ratio for this configuration."""
        return PairDistribution(
            servers=app.p, defect=self.defect
        ).expected_imbalance()

    def t_idle(self, app: ApplicationParams) -> float:
        """Predicted idle (wait-for-slowest) time at the phase barriers."""
        return (self.imbalance(app) - 1.0) * self.t_par_comp(app)

    # ------------------------------------------------------------------
    def breakdown(self, app: ApplicationParams) -> TimeBreakdown:
        """Predicted breakdown including the imbalance idle term."""
        base = super().breakdown(app)
        return TimeBreakdown(
            update=base.update,
            nbint=base.nbint,
            seq_comp=base.seq_comp,
            comm=base.comm,
            sync=base.sync,
            idle=self.t_idle(app),
        )


def residual_improvement(
    basic: OpalPerformanceModel,
    extended: ImbalanceAwareModel,
    observations: Sequence[Tuple[ApplicationParams, TimeBreakdown]],
) -> Dict[str, float]:
    """Mean |relative error| of both models, split by server parity.

    ``observations`` are (ApplicationParams, TimeBreakdown) pairs from
    measured (simulated) runs.  Returns a dict with keys
    ``basic_even``, ``basic_odd``, ``extended_even``, ``extended_odd``.
    """
    sums = {"basic_even": [], "basic_odd": [], "extended_even": [], "extended_odd": []}
    for app, measured in observations:
        parity = "even" if app.p % 2 == 0 else "odd"
        for label, model in (("basic", basic), ("extended", extended)):
            predicted = model.predict_total(app)
            err = abs(measured.total - predicted) / measured.total
            sums[f"{label}_{parity}"].append(err)
    return {
        k: (sum(v) / len(v) if v else float("nan")) for k, v in sums.items()
    }
