"""Crossover and saturation analysis.

Three structural questions the paper asks of the model:

1. *Where in problem size n does the update time overtake the energy
   evaluation time?*  (Section 2.2: "crossover happens for unrealistic
   numbers of water molecules or protein atoms".)
2. *At which server count does communication overtake computation?*
   (cutoff runs "gradually become communication bound as the parallelism
   increases").
3. *What is the optimal number of servers* — the analytic minimum of
   ``t(p) = C/p + D p + E``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import ModelError
from .model import OpalPerformanceModel
from .parameters import ApplicationParams, energy_pair_work, update_pair_work


def update_nbint_crossover_n(
    model: OpalPerformanceModel,
    app: ApplicationParams,
    n_max: int = 10_000_000,
) -> Optional[int]:
    """Smallest n at which t_update >= t_nbint (None if none below n_max).

    Scales the molecular complex keeping gamma and density fixed.  With
    an effective cutoff the energy evaluation is linear in n while the
    update stays quadratic, so a crossover always exists — the paper's
    point is that it lies beyond all practical problem sizes.
    """
    base = app.molecule
    pl = model.platform
    u = app.update_rate

    def diff(n: int) -> float:
        n_tilde = base.n_tilde(app.cutoff)
        t_up = pl.a2 * u * update_pair_work(n, base.gamma)
        t_nb = pl.a3 * energy_pair_work(n, n_tilde)
        return t_up - t_nb

    if diff(n_max) < 0:
        return None
    lo, hi = 2, n_max
    if diff(lo) >= 0:
        return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if diff(mid) >= 0:
            hi = mid
        else:
            lo = mid
    return hi


def optimal_servers(
    model: OpalPerformanceModel, app: ApplicationParams, p_max: int = 1024
) -> int:
    """Server count minimizing predicted t_OPAL.

    t(p) decomposes as C/p (parallel compute) + D*p (client-serialized
    communication) + E (sequential + sync), so the continuous optimum is
    sqrt(C/D); we return the best integer in [1, p_max].
    """
    pl = model.platform
    u = app.update_rate
    # C: per-run parallel work not divided yet by p
    c_work = app.s * (
        pl.a2 * u * update_pair_work(app.n, app.gamma)
        + pl.a3 * energy_pair_work(app.n, app.n_tilde)
    )
    # D: per-run communication cost proportional to p
    d_comm = app.s * (
        (app.alpha / pl.a1) * (u + 2.0) * app.n + 2.0 * pl.b1 * (u + 1.0)
    )
    if d_comm <= 0:
        return p_max
    p_star = math.sqrt(c_work / d_comm)
    candidates = {
        max(1, min(p_max, int(math.floor(p_star)))),
        max(1, min(p_max, int(math.ceil(p_star)))),
        1,
    }
    return min(
        candidates, key=lambda p: model.predict_total(app.with_(servers=p))
    )


def communication_fraction(
    model: OpalPerformanceModel, app: ApplicationParams
) -> float:
    """Share of predicted execution time spent communicating."""
    b = model.breakdown(app)
    if b.total <= 0:
        raise ModelError("zero predicted execution time")
    return b.comm / b.total
