"""Working-set-dependent compute rate (Section 2.6 of the paper).

The paper measured the dominant Opal loop (``comp_nbint``) on a Pentium
200 at three working-set sizes:

=============  ============  ==================  ========
regime         working set   rate [MFlop/s]      relative
=============  ============  ==================  ========
in cache       50 KByte      35                  1.09
in core        8 MByte       32                  1.00
out of core    120 MByte     8                   0.25
=============  ============  ==================  ========

and concluded the inner loop is CPU- (not memory-) limited in core, but
collapses drastically when the problem spills to swap.  This module
captures that three-tier model; it is attached to simulated nodes as
their rate model and used by the space-complexity analysis to warn about
out-of-core problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import PlatformError

#: Relative rates measured by the paper on the Pentium 200.
PENTIUM_IN_CACHE_FACTOR = 35.0 / 32.0  # 1.09
PENTIUM_OUT_OF_CORE_FACTOR = 8.0 / 32.0  # 0.25


@dataclass(frozen=True)
class MemoryHierarchy:
    """Three-tier working-set model.

    ``base_rate`` is the *in core* algorithmic rate in flop/s; the cache
    tier runs ``cache_factor`` faster and the out-of-core tier
    ``out_of_core_factor`` slower.  A vector machine without a cache
    (Cray J90) uses ``cache_bytes=0`` and ``cache_factor=1.0``.
    """

    base_rate: float
    cache_bytes: float = 256e3
    core_bytes: float = 64e6
    cache_factor: float = PENTIUM_IN_CACHE_FACTOR
    out_of_core_factor: float = PENTIUM_OUT_OF_CORE_FACTOR

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise PlatformError("base_rate must be positive")
        if self.cache_bytes < 0 or self.core_bytes <= 0:
            raise PlatformError("tier sizes must be non-negative / positive")
        if self.cache_bytes > self.core_bytes:
            raise PlatformError("cache cannot be larger than core memory")
        if self.cache_factor < 1.0:
            raise PlatformError("cache_factor must be >= 1 (cache is not slower)")
        if not 0 < self.out_of_core_factor <= 1.0:
            raise PlatformError("out_of_core_factor must be in (0, 1]")

    # ------------------------------------------------------------------
    def regime(self, working_set: Optional[float]) -> str:
        """Classify a working-set size: 'cache' | 'core' | 'out-of-core'.

        ``None`` (unknown working set) is treated as in core, the paper's
        reference regime.
        """
        if working_set is None:
            return "core"
        if working_set < 0:
            raise PlatformError("working set must be >= 0")
        if working_set <= self.cache_bytes:
            return "cache"
        if working_set <= self.core_bytes:
            return "core"
        return "out-of-core"

    def factor(self, working_set: Optional[float]) -> float:
        """Relative rate for a working set (1.0 = in core)."""
        regime = self.regime(working_set)
        if regime == "cache":
            return self.cache_factor
        if regime == "core":
            return 1.0
        return self.out_of_core_factor

    def rate(self, working_set: Optional[float] = None) -> float:
        """Sustained algorithmic rate in flop/s at this working set."""
        return self.base_rate * self.factor(working_set)

    def as_rate_model(self) -> Callable[[Optional[float]], float]:
        """Adapter usable as a :data:`repro.netsim.node.RateModel`."""
        return self.rate
