"""The wall-clock time breakdown the paper measures and predicts.

``t_OPAL = t_tot_par_comp + t_tot_seq_comp + t_tot_comm + t_tot_sync``
plus the *idle* time that measured runs additionally expose (load
imbalance at the accounting barriers).  A model prediction has zero idle
by construction; a simulated/measured run generally does not.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-category wall-clock seconds for one run (client perspective)."""

    #: parallel computation: pair-list updates (server side)
    update: float = 0.0
    #: parallel computation: non-bonded energy evaluation (server side)
    nbint: float = 0.0
    #: sequential computation on the client
    seq_comp: float = 0.0
    #: communication (all four RPC components together)
    comm: float = 0.0
    #: synchronization (barrier operations)
    sync: float = 0.0
    #: idle / load-imbalance wait
    idle: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if v < -1e-12:
                raise ValueError(f"negative time component {f.name}={v}")

    # ------------------------------------------------------------------
    @property
    def par_comp(self) -> float:
        """t_tot_par_comp = t_update + t_nbint."""
        return self.update + self.nbint

    @property
    def total(self) -> float:
        """Predicted/accounted wall-clock execution time."""
        return self.par_comp + self.seq_comp + self.comm + self.sync + self.idle

    # ------------------------------------------------------------------
    def as_dict(self, merge_par: bool = False) -> Dict[str, float]:
        """Category -> seconds; ``merge_par`` folds update+nbint together."""
        if merge_par:
            return {
                "par_comp": self.par_comp,
                "seq_comp": self.seq_comp,
                "comm": self.comm,
                "sync": self.sync,
                "idle": self.idle,
            }
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def fractions(self) -> Dict[str, float]:
        """Relative share of each merged category (sums to 1 if total>0)."""
        t = self.total
        if t <= 0:
            return {k: 0.0 for k in self.as_dict(merge_par=True)}
        return {k: v / t for k, v in self.as_dict(merge_par=True).items()}

    # ------------------------------------------------------------------
    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A copy with every component multiplied by ``factor``."""
        return TimeBreakdown(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    @staticmethod
    def mean(items: Iterable["TimeBreakdown"]) -> "TimeBreakdown":
        items = list(items)
        if not items:
            raise ValueError("mean of empty breakdown sequence")
        acc = items[0]
        for b in items[1:]:
            acc = acc + b
        return acc.scaled(1.0 / len(items))

    @staticmethod
    def category_names(merge_par: bool = False) -> tuple:
        if merge_par:
            return ("par_comp", "seq_comp", "comm", "sync", "idle")
        return tuple(f.name for f in fields(TimeBreakdown))
