"""Performance prediction for alternative platforms (Section 4).

"A performance assessment based on our model is much easier than
porting and parallelizing the application for a new target machine."
Given the application parameters calibrated on the reference platform
and each candidate machine's key data (Tables 1 and 2, or measured
microbenchmarks), predict execution times and speedups — the data behind
Figures 5 and 6 — plus the cost-effectiveness view behind the paper's
"most cost effective platform" question.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import ModelError
from .model import OpalPerformanceModel
from .parameters import ApplicationParams, ModelPlatformParams
from .speedup import saturation_point, speedup_curve


@dataclass(frozen=True)
class PredictionSeries:
    """One platform's predicted curves over a range of server counts."""

    platform: str
    servers: tuple
    times: tuple
    speedups: tuple

    @property
    def best_time(self) -> float:
        """Minimum predicted execution time over the server range."""
        return min(self.times)

    @property
    def saturation(self) -> int:
        """Server count with the minimum predicted time."""
        return saturation_point(list(self.times), list(self.servers))

    def slowdown_beyond_saturation(self) -> bool:
        """True if adding servers past the optimum costs time."""
        return self.times[-1] > self.best_time * (1.0 + 1e-9)


def predict_series(
    model_params: ModelPlatformParams,
    app: ApplicationParams,
    servers: Sequence[int] = tuple(range(1, 8)),
) -> PredictionSeries:
    """Predicted execution-time and speedup curves for one platform."""
    servers = tuple(servers)
    if not servers:
        raise ModelError("need at least one server count")
    model = OpalPerformanceModel(model_params)
    times = tuple(model.execution_times(app, servers))
    return PredictionSeries(
        platform=model_params.name,
        servers=servers,
        times=times,
        speedups=tuple(speedup_curve(list(times))),
    )


def predict_platforms(
    platforms: Sequence,
    app: ApplicationParams,
    servers: Sequence[int] = tuple(range(1, 8)),
) -> Dict[str, PredictionSeries]:
    """Curves for many platforms.

    Each entry of ``platforms`` is either a :class:`ModelPlatformParams`
    or a :class:`~repro.platforms.spec.PlatformSpec` (converted via
    ``ModelPlatformParams.from_spec`` — the Tables 1/2 route).
    """
    out: Dict[str, PredictionSeries] = {}
    for plat in platforms:
        if isinstance(plat, ModelPlatformParams):
            mp = plat
        else:
            mp = ModelPlatformParams.from_spec(plat)
        out[mp.name] = predict_series(mp, app, servers)
    return out


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostEffectivenessRow:
    """Absolute performance weighed against platform cost."""

    platform: str
    best_time: float
    cost_kusd: float
    #: seconds x k$ — lower is more cost effective
    time_cost_product: float


def cost_effectiveness(
    series: Dict[str, PredictionSeries],
    costs_kusd: Dict[str, float],
) -> List[CostEffectivenessRow]:
    """Rank platforms by (best predicted time) x (acquisition cost).

    Supports the paper's conclusion that "a well designed cluster of PCs
    achieves similar if not better performance than the J90" at a
    fraction of the cost.  Platforms with unknown cost are skipped.
    """
    rows = []
    for name, s in series.items():
        cost = costs_kusd.get(name)
        if cost is None:
            continue
        rows.append(
            CostEffectivenessRow(
                platform=name,
                best_time=s.best_time,
                cost_kusd=cost,
                time_cost_product=s.best_time * cost,
            )
        )
    rows.sort(key=lambda r: r.time_cost_product)
    return rows


# ----------------------------------------------------------------------
@dataclass
class WhatIfStudy:
    """Sensitivity of a platform's curve to one scaled parameter.

    E.g. "what if the J90's middleware achieved the 7 MByte/s the
    Sciddle developers measured for a synthetic RPC?" — the paper's
    Section 3.1 speculation, quantified.
    """

    base: ModelPlatformParams
    app: ApplicationParams
    servers: Sequence[int] = field(default_factory=lambda: tuple(range(1, 8)))

    def vary(self, field_name: str, factors: Sequence[float]) -> Dict[float, PredictionSeries]:
        """Series for each scale factor applied to one parameter."""
        if field_name not in ("a1", "b1", "a2", "a3", "a4", "b5"):
            raise ModelError(f"unknown platform parameter {field_name!r}")
        out = {}
        for f in factors:
            if f <= 0:
                raise ModelError("scale factors must be positive")
            params = self.base.with_(
                **{field_name: getattr(self.base, field_name) * f},
                name=f"{self.base.name}[{field_name}x{f:g}]",
            )
            out[f] = predict_series(params, self.app, self.servers)
        return out
