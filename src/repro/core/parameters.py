"""Model parameters (Section 2.2 "Model parameters").

The paper splits the parameters of the analytical model into
*application parameters* (:class:`ApplicationParams`) — properties of an
Opal run, invariant across machines — and *platform parameters*
(:class:`ModelPlatformParams`) — the technical key data of the machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import TYPE_CHECKING, Optional

from ..errors import ModelError
from ..opal import costs
from ..opal.complexes import ComplexSpec
from ..units import to_mflop_per_s

if TYPE_CHECKING:  # annotation-only; a runtime import would be circular
    from ..platforms.spec import PlatformSpec


@dataclass(frozen=True)
class ApplicationParams:
    """One Opal run configuration.

    ``update_interval`` is the user-facing Opal ``update`` parameter:
    the number of simulation steps between two pair-list updates (1 =
    full update, 10 = the paper's partial update).  The model equations
    use its reciprocal, the per-step update *rate* ``u`` — see
    DESIGN.md, "Model notation fix".
    """

    molecule: ComplexSpec
    steps: int = 10
    servers: int = 1
    update_interval: int = 1
    #: cutoff radius in Angstrom; None = fully accurate (no cutoff)
    cutoff: Optional[float] = None
    #: bytes per mass-center coordinate record (paper's alpha)
    alpha: int = costs.ALPHA_BYTES

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ModelError("steps must be >= 1")
        if self.servers < 1:
            raise ModelError("servers must be >= 1")
        if self.update_interval < 1:
            raise ModelError("update_interval must be >= 1 step")
        if self.cutoff is not None and self.cutoff <= 0:
            raise ModelError("cutoff must be positive or None")
        if self.alpha <= 0:
            raise ModelError("alpha must be positive")

    # -- paper symbols ---------------------------------------------------
    @property
    def s(self) -> int:
        """The paper's s: number of simulation steps."""
        return self.steps

    @property
    def p(self) -> int:
        """The paper's p: number of servers."""
        return self.servers

    @property
    def n(self) -> int:
        """The paper's n: mass centers of the complex."""
        return self.molecule.n

    @property
    def gamma(self) -> float:
        """The paper's gamma: water fraction of the mass centers."""
        return self.molecule.gamma

    @property
    def update_rate(self) -> float:
        """u of the model equations: pair-list updates per step (<= 1)."""
        return 1.0 / self.update_interval

    @property
    def n_tilde(self) -> float:
        """The paper's n~: neighbours within the cutoff sphere."""
        return self.workload_terms().n_tilde

    def workload_terms(self) -> "WorkloadTerms":
        """The memoized per-(molecule, cutoff) invariants of the model.

        Server count, step count and update interval do not enter, so a
        whole server sweep — or a whole micro-batch of what-if queries
        against the same complex — shares one computation of the pair
        workloads (see :func:`workload_terms`).
        """
        return workload_terms(self.molecule, self.cutoff)

    @property
    def cutoff_effective(self) -> bool:
        """Whether the cutoff actually reduces the pair count."""
        return self.molecule.cutoff_effective(self.cutoff)

    def with_(self, **changes: object) -> "ApplicationParams":
        """A modified copy, e.g. ``app.with_(servers=4)``."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ModelPlatformParams:
    """The analytical model's per-machine coefficients.

    =====  ==========================================================
    a1     communication rate including middleware overhead [byte/s]
    b1     per-message communication overhead [s]
    a2     time to generate one pair and test its distance [s]
    a3     time for one non-bonded pair energy contribution [s]
    a4     per-mass-center time of the client's sequential work [s]
    b5     time of one process synchronization [s]
    =====  ==========================================================
    """

    name: str
    a1: float
    b1: float
    a2: float
    a3: float
    a4: float
    b5: float

    def __post_init__(self) -> None:
        if self.a1 <= 0:
            raise ModelError(f"{self.name}: a1 (comm rate) must be positive")
        for field_name in ("b1", "a2", "a3", "a4", "b5"):
            if getattr(self, field_name) < 0:
                raise ModelError(f"{self.name}: {field_name} must be >= 0")

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: "PlatformSpec") -> "ModelPlatformParams":
        """Derive model coefficients from a :class:`PlatformSpec`.

        This is the paper's Section 4.1 route: communication figures come
        straight from Table 2 observations; compute coefficients divide
        the kernel flop costs by the platform's (adjusted, i.e.
        algorithmic) compute rate.  For exact measured coefficients use
        the microbenchmarks (:mod:`repro.platforms.microbench`) or a full
        calibration (:mod:`repro.core.calibration`).
        """
        rate = spec.cpu_rate
        return cls(
            name=spec.name,
            a1=spec.net_bw,
            b1=spec.net_latency,
            a2=costs.UPDATE_PAIR_FLOPS / rate,
            a3=costs.NB_PAIR_FLOPS / rate,
            a4=costs.SEQ_ATOM_FLOPS / rate,
            b5=spec.sync_cost,
        )

    def compute_rate_mflops(self) -> float:
        """Equivalent algorithmic compute rate implied by a3 [MFlop/s]."""
        return to_mflop_per_s(costs.NB_PAIR_FLOPS / self.a3)

    def with_(self, **changes: object) -> "ModelPlatformParams":
        """A modified copy, e.g. ``params.with_(a1=7e6)``."""
        return replace(self, **changes)

    def scaled_compute(self, factor: float) -> "ModelPlatformParams":
        """Copy with all compute coefficients scaled by ``factor``
        (>1 = slower CPU).  Used in what-if/ablation studies."""
        if factor <= 0:
            raise ModelError("scale factor must be positive")
        return replace(
            self,
            a2=self.a2 * factor,
            a3=self.a3 * factor,
            a4=self.a4 * factor,
        )


@dataclass(frozen=True)
class WorkloadTerms:
    """Per-(molecule, cutoff) invariants of the model equations.

    Everything here is independent of the server count, the step count
    and the update interval, so one instance serves a whole execution
    time sweep (eqs. 3 and 4 evaluate these workloads once per cell, not
    once per server count).
    """

    #: the paper's n: mass centers of the complex
    n: int
    #: the paper's gamma: water fraction of the mass centers
    gamma: float
    #: the paper's n~: neighbours within the cutoff sphere
    n_tilde: float
    #: pairs processed by one pair-list update (eq. 3)
    update_pairs: float
    #: pairs evaluated by one energy evaluation (eq. 4)
    energy_pairs: float


@dataclass(frozen=True)
class FamilyWorkloadTerms:
    """Closed-form regressors of one lowered workload cell.

    The family-generic analogue of :class:`WorkloadTerms`: a workload
    family's compiler (:mod:`repro.workloads`) reduces one
    (spec, servers) cell to these six counts, and the model evaluates
    them against the same closed coefficient vocabulary as equations
    (2)-(10) of the paper.  Compute work is counted in *flops* (not
    pairs), so the key-data coefficients for a family are simply
    ``1 / cpu_rate``:

    ==========  ====================================================
    update_ops  flops of "update"-class parallel work   (x a2)
    pair_ops    flops of "pair"-class parallel work     (x a3)
    seq_ops     flops of sequential client work         (x a4)
    comm_bytes  payload bytes on the wire               (x 1/a1)
    comm_msgs   messages on the wire                    (x b1)
    sync_ops    process synchronizations                (x b5)
    ==========  ====================================================
    """

    update_ops: float = 0.0
    pair_ops: float = 0.0
    seq_ops: float = 0.0
    comm_bytes: float = 0.0
    comm_msgs: float = 0.0
    sync_ops: float = 0.0

    def __post_init__(self) -> None:
        for field_name in (
            "update_ops", "pair_ops", "seq_ops",
            "comm_bytes", "comm_msgs", "sync_ops",
        ):
            if getattr(self, field_name) < 0:
                raise ModelError(f"{field_name} must be >= 0")

    def __add__(self, other: "FamilyWorkloadTerms") -> "FamilyWorkloadTerms":
        return FamilyWorkloadTerms(
            update_ops=self.update_ops + other.update_ops,
            pair_ops=self.pair_ops + other.pair_ops,
            seq_ops=self.seq_ops + other.seq_ops,
            comm_bytes=self.comm_bytes + other.comm_bytes,
            comm_msgs=self.comm_msgs + other.comm_msgs,
            sync_ops=self.sync_ops + other.sync_ops,
        )


@lru_cache(maxsize=4096)
def workload_terms(molecule: "ComplexSpec", cutoff: Optional[float]) -> WorkloadTerms:
    """Memoized workload invariants for one (molecule, cutoff) cell.

    ``predict_series`` / ``predict_platforms`` evaluate the model over
    many server counts and platforms with identical application
    parameters; the cutoff-sphere neighbour count and the pair workloads
    are invariant across that sweep, so they are computed exactly once
    per distinct (molecule, cutoff) pair and shared (the serve layer's
    micro-batches rely on the same memoization).
    """
    n_tilde = molecule.n_tilde(cutoff)
    return WorkloadTerms(
        n=molecule.n,
        gamma=molecule.gamma,
        n_tilde=n_tilde,
        update_pairs=update_pair_work(molecule.n, molecule.gamma),
        energy_pairs=energy_pair_work(molecule.n, n_tilde),
    )


def update_pair_work(n: int, gamma: float) -> float:
    """Pairs processed by one pair-list update (the paper's eq. (3) form).

    ``((1-2 gamma)^2 n^2 - (1-2 gamma) n) / 2`` — the empirical
    complexity the paper fitted for the update routine, never below a
    linear scan of the mass centers.
    """
    g = 1.0 - 2.0 * gamma
    pairs = (g * g * n * n - g * n) / 2.0
    return max(pairs, float(n))


def energy_pair_work(n: int, n_tilde: float) -> float:
    """Pairs evaluated by one energy evaluation (the paper's eq. (4))."""
    all_pairs = n * (n - 1) / 2.0
    if math.isinf(n_tilde) or n_tilde >= (n - 1) / 2.0:
        return all_pairs
    return n_tilde * n
