"""Uncertainty quantification for the calibrated model.

The paper claims to "predict with good certainty how the application
would run" on unseen platforms.  This module makes the certainty part
quantitative for the calibration half of the pipeline: a case-resampling
bootstrap over the measured design yields confidence intervals for every
fitted platform parameter and prediction bands for any configuration's
predicted execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import CalibrationError
from .calibration import Observation, calibrate
from .model import OpalPerformanceModel
from .parameters import ApplicationParams, ModelPlatformParams

PARAMETER_NAMES = ("a1", "b1", "a2", "a3", "a4", "b5")


@dataclass(frozen=True)
class ParameterInterval:
    """Bootstrap percentile interval for one fitted parameter."""

    name: str
    estimate: float
    lower: float
    upper: float

    @property
    def relative_halfwidth(self) -> float:
        """Interval half-width relative to the point estimate."""
        if self.estimate == 0:
            return float("inf")
        return (self.upper - self.lower) / 2.0 / abs(self.estimate)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


@dataclass
class BootstrapResult:
    """Fitted parameters with bootstrap uncertainty."""

    params: ModelPlatformParams
    intervals: Dict[str, ParameterInterval]
    samples: List[ModelPlatformParams]

    def predict_band(
        self, app: ApplicationParams, coverage: float = 0.95
    ) -> Tuple[float, float, float]:
        """(point estimate, lower, upper) of predicted t_OPAL."""
        if not 0.0 < coverage < 1.0:
            raise CalibrationError("coverage must be in (0, 1)")
        point = OpalPerformanceModel(self.params).predict_total(app)
        totals = np.array(
            [OpalPerformanceModel(s).predict_total(app) for s in self.samples]
        )
        alpha = (1.0 - coverage) / 2.0
        lower, upper = np.quantile(totals, [alpha, 1.0 - alpha])
        return point, float(lower), float(upper)


def bootstrap_calibration(
    observations: Sequence[Observation],
    n_bootstrap: int = 200,
    coverage: float = 0.95,
    seed: int = 0,
    name: str = "bootstrap",
) -> BootstrapResult:
    """Case-resampling bootstrap around :func:`calibrate`.

    Each replicate resamples the design cells with replacement and
    refits; intervals are percentile intervals of the replicate
    parameters.  Degenerate resamples (e.g. all-one-size designs that
    make a component unidentifiable) are skipped and replaced.
    """
    if len(observations) < 6:
        raise CalibrationError("bootstrap needs at least 6 observations")
    if not 0.0 < coverage < 1.0:
        raise CalibrationError("coverage must be in (0, 1)")
    if n_bootstrap < 20:
        raise CalibrationError("need at least 20 bootstrap replicates")
    point = calibrate(observations, name=name)
    rng = np.random.default_rng(seed)
    samples: List[ModelPlatformParams] = []
    attempts = 0
    while len(samples) < n_bootstrap and attempts < 5 * n_bootstrap:
        attempts += 1
        idx = rng.integers(0, len(observations), size=len(observations))
        resampled = [observations[i] for i in idx]
        try:
            samples.append(calibrate(resampled, name=f"{name}-bs").params)
        except CalibrationError:
            continue
    if len(samples) < n_bootstrap:
        raise CalibrationError(
            f"only {len(samples)} of {n_bootstrap} bootstrap refits "
            "succeeded; the design is too degenerate"
        )
    alpha = (1.0 - coverage) / 2.0
    intervals = {}
    for pname in PARAMETER_NAMES:
        values = np.array([getattr(s, pname) for s in samples])
        lo, hi = np.quantile(values, [alpha, 1.0 - alpha])
        intervals[pname] = ParameterInterval(
            name=pname,
            estimate=getattr(point.params, pname),
            lower=float(lo),
            upper=float(hi),
        )
    return BootstrapResult(
        params=point.params, intervals=intervals, samples=samples
    )
