"""Least-squares calibration of the analytical model (Section 2.5).

The paper "adjusted the parameters for a least square fit to the
corresponding measurements" over a full factorial design of 84
experiments.  The model is *linear* in its platform parameters once the
application parameters are fixed:

=========  ==========================================================
component  regressor (coefficient)
=========  ==========================================================
update     a2      x  s u / p * update_pair_work(n, gamma)
nbint      a3      x  s / p * energy_pair_work(n, n~)
seq_comp   a4      x  s n
comm       1/a1    x  s p alpha (u+2) n     and   b1  x  2 s p (u+1)
sync       b5      x  2 s (u+1)
=========  ==========================================================

so the calibration is a set of small non-negative linear least squares
problems, one per measured component — exactly the structure that makes
the paper's "response variables measured separately" methodology work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np
import scipy.optimize

from ..errors import CalibrationError
from .breakdown import TimeBreakdown
from .model import OpalPerformanceModel, terms_breakdown
from .parameters import (
    ApplicationParams,
    FamilyWorkloadTerms,
    ModelPlatformParams,
    energy_pair_work,
    update_pair_work,
)

#: One calibration observation: configuration + measured breakdown.
Observation = Tuple[ApplicationParams, TimeBreakdown]

#: One family calibration observation: lowered regressors + measurement.
TermsObservation = Tuple[FamilyWorkloadTerms, TimeBreakdown]


def _r2(y: np.ndarray, yhat: np.ndarray) -> float:
    ss_res = float(np.sum((y - yhat) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot <= 0:
        return 1.0 if ss_res <= 1e-30 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass
class CalibrationResult:
    """Fitted platform parameters plus fit diagnostics."""

    params: ModelPlatformParams
    #: coefficient of determination per fitted component
    r2: Dict[str, float] = field(default_factory=dict)
    #: per-case (measured total, predicted total)
    totals: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def model(self) -> OpalPerformanceModel:
        """An OpalPerformanceModel over the fitted parameters."""
        return OpalPerformanceModel(self.params)

    def mean_absolute_error(self) -> float:
        """Mean |measured - predicted| in seconds over the design."""
        if not self.totals:
            return float("nan")
        return float(np.mean([abs(m - p) for m, p in self.totals]))

    def mean_relative_error(self) -> float:
        """Mean |measured - predicted| / measured over the design."""
        if not self.totals:
            return float("nan")
        return float(np.mean([abs(m - p) / m for m, p in self.totals if m > 0]))


def calibrate(
    observations: Sequence[Observation], name: str = "calibrated"
) -> CalibrationResult:
    """Fit all six platform parameters to measured breakdowns.

    Component fits are non-negative (a negative rate or overhead is
    unphysical); the communication fit is a two-parameter NNLS.
    """
    if len(observations) < 3:
        raise CalibrationError(
            f"need at least 3 observations to calibrate, got {len(observations)}"
        )
    apps = [a for a, _ in observations]
    meas = [b for _, b in observations]

    def fit_single(xs: np.ndarray, ys: np.ndarray, label: str) -> Tuple[float, float]:
        if np.all(xs <= 0):
            raise CalibrationError(f"degenerate design for {label}: all-zero regressor")
        coef = max(float(np.dot(xs, ys) / np.dot(xs, xs)), 0.0)
        return coef, _r2(ys, coef * xs)

    r2: Dict[str, float] = {}

    x_upd = np.array(
        [a.s * a.update_rate / a.p * update_pair_work(a.n, a.gamma) for a in apps]
    )
    y_upd = np.array([b.update for b in meas])
    a2, r2["update"] = fit_single(x_upd, y_upd, "update")

    x_nbi = np.array([a.s / a.p * energy_pair_work(a.n, a.n_tilde) for a in apps])
    y_nbi = np.array([b.nbint for b in meas])
    a3, r2["nbint"] = fit_single(x_nbi, y_nbi, "nbint")

    x_seq = np.array([float(a.s * a.n) for a in apps])
    y_seq = np.array([b.seq_comp for b in meas])
    a4, r2["seq_comp"] = fit_single(x_seq, y_seq, "seq_comp")

    x_comm = np.column_stack(
        [
            [a.s * a.p * a.alpha * (a.update_rate + 2.0) * a.n for a in apps],
            [2.0 * a.s * a.p * (a.update_rate + 1.0) for a in apps],
        ]
    )
    y_comm = np.array([b.comm for b in meas])
    (inv_a1, b1), _ = scipy.optimize.nnls(x_comm, y_comm)
    r2["comm"] = _r2(y_comm, x_comm @ np.array([inv_a1, b1]))
    if inv_a1 <= 0:
        raise CalibrationError(
            "communication fit produced a non-positive 1/a1; the design "
            "probably does not vary message volume"
        )

    x_sync = np.array([2.0 * a.s * (a.update_rate + 1.0) for a in apps])
    y_sync = np.array([b.sync for b in meas])
    b5, r2["sync"] = fit_single(x_sync, y_sync, "sync")

    params = ModelPlatformParams(
        name=name, a1=1.0 / inv_a1, b1=float(b1), a2=a2, a3=a3, a4=a4, b5=b5
    )
    model = OpalPerformanceModel(params)
    totals = [
        (b.total, model.predict_total(a)) for a, b in observations
    ]
    return CalibrationResult(params=params, r2=r2, totals=totals)


def calibrate_terms(
    observations: Sequence[TermsObservation], name: str = "calibrated"
) -> CalibrationResult:
    """Fit platform parameters to measured family-cell breakdowns.

    The family-generic sibling of :func:`calibrate`: regressors come
    pre-lowered as :class:`FamilyWorkloadTerms` instead of being derived
    from :class:`ApplicationParams`.  A family may legitimately never
    exercise a component (a barrier moves no payload, a collective has
    no sequential tail) — an all-zero regressor therefore yields a 0.0
    coefficient instead of an error, except for communication volume,
    which every measurable family must vary.
    """
    if len(observations) < 3:
        raise CalibrationError(
            f"need at least 3 observations to calibrate, got {len(observations)}"
        )
    terms = [t for t, _ in observations]
    meas = [b for _, b in observations]

    def fit_component(
        xs: np.ndarray, ys: np.ndarray
    ) -> Tuple[float, float]:
        if np.all(xs <= 0):
            return 0.0, _r2(ys, np.zeros_like(ys))
        coef = max(float(np.dot(xs, ys) / np.dot(xs, xs)), 0.0)
        return coef, _r2(ys, coef * xs)

    r2: Dict[str, float] = {}
    a2, r2["update"] = fit_component(
        np.array([t.update_ops for t in terms]),
        np.array([b.update for b in meas]),
    )
    a3, r2["nbint"] = fit_component(
        np.array([t.pair_ops for t in terms]),
        np.array([b.nbint for b in meas]),
    )
    a4, r2["seq_comp"] = fit_component(
        np.array([t.seq_ops for t in terms]),
        np.array([b.seq_comp for b in meas]),
    )

    x_comm = np.column_stack(
        [
            [t.comm_bytes for t in terms],
            [t.comm_msgs for t in terms],
        ]
    )
    y_comm = np.array([b.comm for b in meas])
    if np.all(x_comm[:, 0] <= 0):
        raise CalibrationError(
            "degenerate design for comm: no cell moves any payload bytes"
        )
    (inv_a1, b1), _ = scipy.optimize.nnls(x_comm, y_comm)
    r2["comm"] = _r2(y_comm, x_comm @ np.array([inv_a1, b1]))
    if inv_a1 <= 0:
        raise CalibrationError(
            "communication fit produced a non-positive 1/a1; the design "
            "probably does not vary message volume"
        )

    b5, r2["sync"] = fit_component(
        np.array([t.sync_ops for t in terms]),
        np.array([b.sync for b in meas]),
    )

    params = ModelPlatformParams(
        name=name, a1=1.0 / inv_a1, b1=float(b1), a2=a2, a3=a3, a4=a4, b5=b5
    )
    totals = [
        (b.total, terms_breakdown(params, t).total) for t, b in observations
    ]
    return CalibrationResult(params=params, r2=r2, totals=totals)


def residual_table(
    result: CalibrationResult, observations: Sequence[Observation]
) -> List[Dict[str, float]]:
    """Per-case measured vs predicted rows (the data behind Figure 4)."""
    model = result.model
    rows = []
    for app, b in observations:
        pred = model.predict_total(app)
        rows.append(
            {
                "n": app.n,
                "p": app.p,
                "cutoff": 0.0 if app.cutoff is None else app.cutoff,
                "update_interval": app.update_interval,
                "measured": b.total,
                "predicted": pred,
                "difference": b.total - pred,
                "relative_error": (b.total - pred) / b.total if b.total > 0 else 0.0,
            }
        )
    return rows
