"""The analytical time-complexity model of Opal (Section 2.2).

Implements equations (2) through (10) of the paper:

.. math::

    t_{OPAL} = t_{tot\\_par\\_comp} + t_{tot\\_seq\\_comp}
             + t_{tot\\_comm} + t_{tot\\_sync}

with

* ``t_update``   — eq. (3), quadratic in problem size, proportional to the
  per-step update rate u, divided by the number of servers p;
* ``t_nbint``    — eq. (4), piecewise: quadratic ``n(n-1)/2`` until the
  cutoff becomes effective, then linear ``n~ * n``;
* ``t_seq``      — eq. (5), ``a4 * s * n``;
* ``t_comm``     — eq. (6)-(9) summed:
  ``s * (p * (alpha/a1) * (u+2) * n + 2 p b1 (u+1))``;
* ``t_sync``     — eq. (10), ``2 s (u+1) b5``.

All times are client-perspective wall-clock seconds for the whole run of
``s`` simulation steps.
"""

from __future__ import annotations

from typing import Iterable, List

from ..errors import ModelError
from .breakdown import TimeBreakdown
from .parameters import (
    ApplicationParams,
    FamilyWorkloadTerms,
    ModelPlatformParams,
    workload_terms,
)

#: The closed vocabulary of platform coefficients appearing in equations
#: (2)-(10): a1 (communication rate), b1 (per-message overhead), a2
#: (pair-generation time), a3 (pair-energy time), a4 (sequential
#: per-mass-center time), b5 (synchronization cost).  simlint rule M301
#: rejects any other coefficient-shaped identifier in core/platforms so
#: the code cannot silently drift from the validated model.
EQUATION_PLATFORM_PARAMETERS = ("a1", "a2", "a3", "a4", "b1", "b5")


def terms_breakdown(
    params: ModelPlatformParams, terms: FamilyWorkloadTerms
) -> TimeBreakdown:
    """Evaluate the model for one family cell's closed-form regressors.

    The family-generic analogue of
    :meth:`OpalPerformanceModel.breakdown`: each
    :class:`~repro.core.parameters.FamilyWorkloadTerms` count pairs with
    one coefficient of the closed vocabulary.  A pure function of its
    arguments, so batched serve evaluation is bit-identical at any batch
    size.
    """
    return TimeBreakdown(
        update=params.a2 * terms.update_ops,
        nbint=params.a3 * terms.pair_ops,
        seq_comp=params.a4 * terms.seq_ops,
        comm=terms.comm_bytes / params.a1 + terms.comm_msgs * params.b1,
        sync=terms.sync_ops * params.b5,
        idle=0.0,
    )


class OpalPerformanceModel:
    """Evaluate the analytical model for one platform."""

    def __init__(self, platform: ModelPlatformParams) -> None:
        self.platform = platform

    # -- individual components (paper equation numbers in parentheses) ----
    def t_update(self, app: ApplicationParams) -> float:
        """Total pair-list update time over the run (eq. 3)."""
        pl = self.platform
        terms = workload_terms(app.molecule, app.cutoff)
        return pl.a2 * (app.s * app.update_rate / app.p) * terms.update_pairs

    def t_nbint(self, app: ApplicationParams) -> float:
        """Total non-bonded energy evaluation time (eq. 4)."""
        pl = self.platform
        terms = workload_terms(app.molecule, app.cutoff)
        return pl.a3 * (app.s / app.p) * terms.energy_pairs

    def t_par_comp(self, app: ApplicationParams) -> float:
        """Total parallel computation time (eq. 2)."""
        return self.t_update(app) + self.t_nbint(app)

    def t_seq_comp(self, app: ApplicationParams) -> float:
        """Total sequential (client) computation time (eq. 5)."""
        return self.platform.a4 * app.s * app.n

    def t_call(self, app: ApplicationParams) -> float:
        """One RPC call's coordinate-send time to ONE server (eq. 7)."""
        pl = self.platform
        return (app.alpha / pl.a1) * app.n + pl.b1

    def t_return_upd(self, app: ApplicationParams) -> float:
        """Update RPC return (ack only) from ONE server (eq. 8)."""
        return self.platform.b1

    def t_return_nbi(self, app: ApplicationParams) -> float:
        """Energy RPC return (energies + gradients) from ONE server (eq. 9)."""
        pl = self.platform
        return (app.alpha / pl.a1) * app.n + pl.b1

    def t_comm(self, app: ApplicationParams) -> float:
        """Total communication time over the run (eq. 6, closed form)."""
        pl = self.platform
        u = app.update_rate
        per_step = app.p * (app.alpha / pl.a1) * (u + 2.0) * app.n + (
            2.0 * app.p * pl.b1 * (u + 1.0)
        )
        return app.s * per_step

    def t_sync(self, app: ApplicationParams) -> float:
        """Total synchronization time over the run (eq. 10)."""
        u = app.update_rate
        return 2.0 * app.s * (u + 1.0) * self.platform.b5

    # ------------------------------------------------------------------
    def breakdown(self, app: ApplicationParams) -> TimeBreakdown:
        """Full predicted breakdown (idle is zero by model assumption)."""
        return TimeBreakdown(
            update=self.t_update(app),
            nbint=self.t_nbint(app),
            seq_comp=self.t_seq_comp(app),
            comm=self.t_comm(app),
            sync=self.t_sync(app),
            idle=0.0,
        )

    def predict_total(self, app: ApplicationParams) -> float:
        """t_OPAL for one configuration."""
        return self.breakdown(app).total

    # ------------------------------------------------------------------
    def execution_times(
        self, app: ApplicationParams, servers: Iterable[int]
    ) -> List[float]:
        """Predicted t_OPAL over a range of server counts."""
        out = []
        for p in servers:
            if p < 1:
                raise ModelError("server counts must be >= 1")
            out.append(self.predict_total(app.with_(servers=p)))
        return out

    def communication_bound_at(
        self, app: ApplicationParams, max_servers: int = 64
    ) -> int:
        """Smallest p at which communication exceeds parallel computation.

        Returns ``max_servers + 1`` if the run stays compute bound
        throughout — the regime the paper calls "entirely compute bound
        ... parallelizes well regardless of the system".
        """
        for p in range(1, max_servers + 1):
            a = app.with_(servers=p)
            if self.t_comm(a) > self.t_par_comp(a):
                return p
        return max_servers + 1
