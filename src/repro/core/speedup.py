"""Speedup, efficiency and scalability metrics.

The paper's Figures 5b/5d/6b/6d plot *relative speedup*: execution time
with one server divided by execution time with p servers **on the same
platform**.  The paper warns that "speed-up can not be interpreted
without looking at the absolute execution times simultaneously" (the T3E
has the best speedup yet loses to the PC clusters in absolute time) —
hence the helpers here always work from absolute times.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ModelError


def speedup_curve(times: Sequence[float]) -> List[float]:
    """Relative speedups from a time curve ``times[i] = t(p_i)``.

    The first entry is the baseline (p = p_0, normally 1 server).
    """
    if not times:
        raise ModelError("empty time curve")
    t1 = times[0]
    if t1 <= 0:
        raise ModelError("baseline time must be positive")
    for t in times:
        if t <= 0:
            raise ModelError("times must be positive")
    return [t1 / t for t in times]


def efficiency_curve(times: Sequence[float], servers: Sequence[int]) -> List[float]:
    """Parallel efficiency speedup(p)/p for each server count."""
    if len(times) != len(servers):
        raise ModelError("times and servers must have equal length")
    sp = speedup_curve(times)
    base = servers[0]
    return [s / (p / base) for s, p in zip(sp, servers)]


def saturation_point(times: Sequence[float], servers: Sequence[int]) -> int:
    """Server count with the minimum execution time.

    Beyond this point "adding processors stops to increase performance";
    for the J90 and slow CoPs with cutoff the paper finds it near 3.
    """
    if len(times) != len(servers) or not times:
        raise ModelError("times and servers must be equal-length, non-empty")
    best = min(range(len(times)), key=lambda i: times[i])
    return servers[best]


def slows_down(times: Sequence[float]) -> bool:
    """True if the curve ever turns upward (a speed-up turning into a
    slow-down, Chart 5d) — i.e. some larger configuration is slower than
    a smaller one."""
    return any(b > a * (1.0 + 1e-12) for a, b in zip(times, times[1:]))


def compare_platforms(
    curves: Dict[str, Sequence[float]], servers: Sequence[int]
) -> List[Tuple[str, float, float, int]]:
    """Summary rows (name, best time, speedup at max p, saturation p).

    Sorted by best absolute time — the ranking the paper's conclusion is
    based on.
    """
    rows = []
    for name, times in curves.items():
        if len(times) != len(servers):
            raise ModelError(f"curve {name!r} length mismatch")
        sp = speedup_curve(times)
        rows.append((name, min(times), sp[-1], saturation_point(times, servers)))
    rows.sort(key=lambda r: r[1])
    return rows


def amdahl_bound(serial_fraction: float, p: int) -> float:
    """Classical Amdahl speedup bound for reference lines in reports."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ModelError("serial fraction must be in [0, 1]")
    if p < 1:
        raise ModelError("p must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)
