"""Space complexity model (Section 2.6).

"A space complexity model for memory issues is largely orthogonal to
the execution time model."  The paper tabulates how Opal's data
structures grow with problem size; the only time-space interaction it
finds worth modelling is the working set falling out of cache or core
(see :mod:`repro.core.memhier`).

Paper-table notes (documented deviations, see EXPERIMENTS.md):

* the *pair list* row — ``c (1-2 gamma) n^2`` with c = 2*4 bytes — matches
  the printed 160 MB example only with ``|1-2 gamma|``, which is what we
  implement;
* the *coordinates*/*gradients*/*interactions* rows print "Order n^2" but
  their example values are linear in n; we implement the linear forms
  (3 doubles per mass center, etc.) and treat the order column as a typo;
* the *atom interactions* row (replicated global non-bonded parameter
  tables) is modelled as per-solute-atom x atom-type parameter pairs,
  sized to reproduce the printed megabyte-order example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ModelError
from ..opal import costs
from ..opal.complexes import ComplexSpec
from .memhier import MemoryHierarchy

#: Distinct force-field atom types assumed for the replicated
#: interaction-parameter tables.
ATOM_TYPES = 64

#: Bytes of one interaction-parameter record (two doubles: C12, C6).
INTERACTION_ENTRY_BYTES = 16

#: Bytes of the per-run scalar results (two doubles: energies).
ENERGY_VALUES_BYTES = 16


@dataclass(frozen=True)
class SpaceModel:
    """Data-structure sizes for one molecular complex."""

    molecule: ComplexSpec

    # ------------------------------------------------------------------
    def pair_list_total(self) -> float:
        """Bytes of the full pair list (all servers together).

        ``c |1-2 gamma| n^2`` with 8-byte entries; the united-water model
        keeps solvent-solvent pairs out of the stored list, which is why
        the list is far smaller than 8 * n(n-1)/2.
        """
        n = self.molecule.n
        g = abs(1.0 - 2.0 * self.molecule.gamma)
        return costs.PAIR_ENTRY_BYTES * g * n * n

    def pair_list_per_server(self, servers: int) -> float:
        """Per-server share: "scales down linearly with the number of
        processors" (Section 2.6)."""
        if servers < 1:
            raise ModelError("servers must be >= 1")
        return self.pair_list_total() / servers

    def coordinates(self) -> float:
        """Bytes of the coordinate array (3 doubles per mass center)."""
        return 3 * 8 * self.molecule.n

    def gradients(self) -> float:
        """Bytes of the gradient array (3 doubles per mass center)."""
        return 3 * 8 * self.molecule.n

    def interaction_tables(self) -> float:
        """Bytes of the replicated global interaction-parameter data.

        Solute-solute, solute-solvent and solvent-solvent non-bonded
        parameters, replicated on every server and NOT scaling with the
        number of processors.
        """
        solute = self.molecule.protein_atoms
        per_atom = ATOM_TYPES * INTERACTION_ENTRY_BYTES
        water_tables = ATOM_TYPES * INTERACTION_ENTRY_BYTES
        return solute * per_atom + water_tables

    def energy_values(self) -> float:
        """Bytes of the scalar energy results (two doubles)."""
        return float(ENERGY_VALUES_BYTES)

    # ------------------------------------------------------------------
    def server_working_set(self, servers: int) -> float:
        """Bytes touched by one server during an energy evaluation."""
        return (
            self.pair_list_per_server(servers)
            + self.coordinates()
            + self.gradients()
            + self.interaction_tables()
        )

    def client_working_set(self) -> float:
        """Bytes touched by the client's sequential phase."""
        return self.coordinates() + self.gradients() + self.energy_values()

    def regime(self, memory: MemoryHierarchy, servers: int) -> str:
        """Memory regime ('cache'|'core'|'out-of-core') of one server."""
        return memory.regime(self.server_working_set(servers))

    def fits_in_core(self, memory: MemoryHierarchy, servers: int) -> bool:
        """Out-of-core sizes "push the execution time beyond the limit
        for acceptable turnaround" — this is the go/no-go test."""
        return self.regime(memory, servers) != "out-of-core"

    def min_servers_in_core(self, memory: MemoryHierarchy, p_max: int = 4096) -> Optional[int]:
        """Smallest server count whose working set fits in core."""
        for p in range(1, p_max + 1):
            if self.fits_in_core(memory, p):
                return p
        return None

    # ------------------------------------------------------------------
    def table(self, servers: int = 1) -> Dict[str, float]:
        """The Section 2.6 table for this complex, in bytes."""
        return {
            "pair list": self.pair_list_total(),
            "atom coordinates": self.coordinates(),
            "atom gradients": self.gradients(),
            "atom interactions": self.interaction_tables(),
            "energy values": self.energy_values(),
            "per-server pair list": self.pair_list_per_server(servers),
        }
