"""The paper's primary contribution: the analytical performance model,
its calibration against measurements, and cross-platform prediction."""

from .breakdown import TimeBreakdown
from .calibration import CalibrationResult, Observation, calibrate, residual_table
from .extended import ImbalanceAwareModel, residual_improvement
from .uncertainty import (
    BootstrapResult,
    ParameterInterval,
    bootstrap_calibration,
)
from .isoefficiency import (
    IsoefficiencyPoint,
    efficiency,
    isoefficiency_curve,
    isoefficiency_size,
    scaled_complex,
)
from .crossover import (
    communication_fraction,
    optimal_servers,
    update_nbint_crossover_n,
)
from .memhier import MemoryHierarchy
from .model import OpalPerformanceModel
from .parameters import (
    ApplicationParams,
    ModelPlatformParams,
    WorkloadTerms,
    energy_pair_work,
    update_pair_work,
    workload_terms,
)
from .prediction import (
    CostEffectivenessRow,
    PredictionSeries,
    WhatIfStudy,
    cost_effectiveness,
    predict_platforms,
    predict_series,
)
from .space import SpaceModel
from .speedup import (
    amdahl_bound,
    compare_platforms,
    efficiency_curve,
    saturation_point,
    slows_down,
    speedup_curve,
)

__all__ = [
    "ApplicationParams",
    "BootstrapResult",
    "CalibrationResult",
    "ImbalanceAwareModel",
    "IsoefficiencyPoint",
    "CostEffectivenessRow",
    "MemoryHierarchy",
    "ModelPlatformParams",
    "Observation",
    "OpalPerformanceModel",
    "PredictionSeries",
    "SpaceModel",
    "TimeBreakdown",
    "WhatIfStudy",
    "WorkloadTerms",
    "amdahl_bound",
    "ParameterInterval",
    "bootstrap_calibration",
    "calibrate",
    "efficiency",
    "communication_fraction",
    "compare_platforms",
    "cost_effectiveness",
    "efficiency_curve",
    "energy_pair_work",
    "isoefficiency_curve",
    "isoefficiency_size",
    "optimal_servers",
    "predict_platforms",
    "predict_series",
    "residual_improvement",
    "scaled_complex",
    "residual_table",
    "saturation_point",
    "slows_down",
    "speedup_curve",
    "update_nbint_crossover_n",
    "update_pair_work",
    "workload_terms",
]
