"""Scalability analysis: efficiency and isoefficiency.

The paper closes its prediction discussion with "with a larger number of
processors we would probably encounter the same saturation point at
which adding processors would stop to increase performance", and notes
that larger problems push the break-down outwards.  Isoefficiency makes
that quantitative: for a target parallel efficiency ``E``, how large
must the problem grow as processors are added?  A platform whose
required problem size explodes (or that cannot reach ``E`` at all) does
not scale for this application — the classic Grama/Gupta/Kumar metric,
applied to the paper's model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ModelError
from ..opal.complexes import ComplexSpec
from .model import OpalPerformanceModel
from .parameters import ApplicationParams


def scaled_complex(base: ComplexSpec, factor: float) -> ComplexSpec:
    """A complex scaled in size, preserving gamma and density."""
    if factor <= 0:
        raise ModelError("scale factor must be positive")
    protein = max(int(round(base.protein_atoms * factor)), 2)
    waters = int(round(base.waters * factor))
    return ComplexSpec(
        name=f"{base.name}x{factor:g}",
        protein_atoms=protein,
        waters=waters,
        density=base.density,
        description=f"{base.description} (scaled x{factor:g})",
    )


def efficiency(model: OpalPerformanceModel, app: ApplicationParams) -> float:
    """Parallel efficiency t(1) / (p * t(p)) for one configuration."""
    t1 = model.predict_total(app.with_(servers=1))
    tp = model.predict_total(app)
    return t1 / (app.p * tp)


@dataclass(frozen=True)
class IsoefficiencyPoint:
    """Problem size required to hold the target efficiency at one p."""

    servers: int
    n_required: Optional[int]  # None = unreachable below the cap
    scale_factor: Optional[float]


def isoefficiency_size(
    model: OpalPerformanceModel,
    base_app: ApplicationParams,
    servers: int,
    target: float = 0.5,
    max_scale: float = 256.0,
) -> IsoefficiencyPoint:
    """Smallest problem scale at which efficiency(p) >= target.

    Efficiency increases with problem size for this model (compute grows
    quadratically, communication linearly in n), so a bisection on the
    scale factor suffices.  Returns ``n_required=None`` when even
    ``max_scale`` times the base problem cannot reach the target — the
    platform does not scale to ``servers`` for this application.
    """
    if not 0.0 < target < 1.0:
        raise ModelError("target efficiency must be in (0, 1)")
    if servers < 1:
        raise ModelError("servers must be >= 1")

    def eff(scale: float) -> float:
        mol = scaled_complex(base_app.molecule, scale)
        return efficiency(model, base_app.with_(molecule=mol, servers=servers))

    if eff(max_scale) < target:
        return IsoefficiencyPoint(servers, None, None)
    lo, hi = 1e-3, max_scale
    for _ in range(60):
        mid = math.sqrt(lo * hi)
        if eff(mid) >= target:
            hi = mid
        else:
            lo = mid
    mol = scaled_complex(base_app.molecule, hi)
    return IsoefficiencyPoint(servers, mol.n, hi)


def isoefficiency_curve(
    model: OpalPerformanceModel,
    base_app: ApplicationParams,
    servers: Sequence[int],
    target: float = 0.5,
    max_scale: float = 256.0,
) -> List[IsoefficiencyPoint]:
    """The isoefficiency function over a range of server counts."""
    return [
        isoefficiency_size(model, base_app, p, target, max_scale)
        for p in servers
    ]
