"""Legacy setup shim (the offline environment lacks the `wheel` package,
so editable installs must go through `setup.py develop`)."""

from setuptools import setup

setup()
